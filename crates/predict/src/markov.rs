//! Smoothed first-order Markov chain over qualitative states.

use crate::trajectory::Trajectory;
use clinical_types::{Error, Result};
use std::collections::HashMap;

/// A fitted Markov time-course model.
#[derive(Debug, Clone)]
pub struct MarkovModel {
    /// Interned state labels.
    states: Vec<String>,
    by_label: HashMap<String, usize>,
    /// `transitions[from][to]` = Laplace-smoothed P(to | from).
    transitions: Vec<Vec<f64>>,
    /// Marginal state distribution (start-state prior).
    marginal: Vec<f64>,
}

impl MarkovModel {
    /// Fit from trajectories (transitions are consecutive visit pairs).
    pub fn fit(trajectories: &[Trajectory]) -> Result<MarkovModel> {
        let mut by_label: HashMap<String, usize> = HashMap::new();
        let mut states: Vec<String> = Vec::new();
        let intern =
            |label: &str, states: &mut Vec<String>, by: &mut HashMap<String, usize>| match by
                .get(label)
            {
                Some(&i) => i,
                None => {
                    states.push(label.to_string());
                    by.insert(label.to_string(), states.len() - 1);
                    states.len() - 1
                }
            };
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        let mut occurrences: Vec<usize> = Vec::new();
        for t in trajectories {
            let ids: Vec<usize> = t
                .states
                .iter()
                .map(|s| intern(s, &mut states, &mut by_label))
                .collect();
            for &id in &ids {
                if occurrences.len() <= id {
                    occurrences.resize(id + 1, 0);
                }
                occurrences[id] += 1;
            }
            for w in ids.windows(2) {
                pairs.push((w[0], w[1]));
            }
        }
        if states.is_empty() {
            return Err(Error::invalid("no states observed in any trajectory"));
        }
        let k = states.len();
        occurrences.resize(k, 0);
        let mut counts = vec![vec![0usize; k]; k];
        for (from, to) in pairs {
            counts[from][to] += 1;
        }
        let transitions = counts
            .iter()
            .map(|row| {
                let total: usize = row.iter().sum();
                row.iter()
                    .map(|&c| (c as f64 + 1.0) / (total as f64 + k as f64))
                    .collect()
            })
            .collect();
        let total_occ: usize = occurrences.iter().sum();
        let marginal = occurrences
            .iter()
            .map(|&c| c as f64 / total_occ as f64)
            .collect();
        Ok(MarkovModel {
            states,
            by_label,
            transitions,
            marginal,
        })
    }

    /// Known state labels.
    pub fn states(&self) -> &[String] {
        &self.states
    }

    /// Index of a state label.
    pub fn state_index(&self, label: &str) -> Option<usize> {
        self.by_label.get(label).copied()
    }

    /// P(next = to | current = from).
    pub fn transition_probability(&self, from: &str, to: &str) -> Result<f64> {
        let f = self
            .state_index(from)
            .ok_or_else(|| Error::invalid(format!("unknown state `{from}`")))?;
        let t = self
            .state_index(to)
            .ok_or_else(|| Error::invalid(format!("unknown state `{to}`")))?;
        Ok(self.transitions[f][t])
    }

    /// Most likely next state after `current`. Unknown states fall
    /// back to the marginal distribution.
    pub fn predict_next(&self, current: &str) -> String {
        let dist = match self.state_index(current) {
            Some(f) => &self.transitions[f],
            None => &self.marginal,
        };
        let best = dist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("probabilities are finite"))
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.states[best].clone()
    }

    /// Distribution after `steps` transitions from `start`.
    pub fn predict_distribution(&self, start: &str, steps: usize) -> Result<Vec<(String, f64)>> {
        let s = self
            .state_index(start)
            .ok_or_else(|| Error::invalid(format!("unknown state `{start}`")))?;
        let k = self.states.len();
        let mut dist = vec![0.0; k];
        dist[s] = 1.0;
        for _ in 0..steps {
            let mut next = vec![0.0; k];
            for (from, p) in dist.iter().enumerate() {
                if *p == 0.0 {
                    continue;
                }
                for (to, q) in self.transitions[from].iter().enumerate() {
                    next[to] += p * q;
                }
            }
            dist = next;
        }
        Ok(self.states.iter().cloned().zip(dist).collect())
    }

    /// The state most visited overall — the majority baseline.
    pub fn majority_state(&self) -> &str {
        let best = self
            .marginal
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .unwrap_or(0);
        &self.states[best]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(id: i64, states: &[&str]) -> Trajectory {
        Trajectory {
            patient_id: id,
            states: states.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn progressive() -> Vec<Trajectory> {
        // Strongly monotone progression N → P → D.
        let mut out = Vec::new();
        for i in 0..20 {
            out.push(traj(i, &["N", "P", "D"]));
            out.push(traj(100 + i, &["N", "N", "P"]));
        }
        out
    }

    #[test]
    fn transition_rows_are_distributions() {
        let m = MarkovModel::fit(&progressive()).unwrap();
        for from in m.states() {
            let total: f64 = m
                .states()
                .iter()
                .map(|to| m.transition_probability(from, to).unwrap())
                .sum();
            assert!((total - 1.0).abs() < 1e-9, "row {from} sums to {total}");
        }
    }

    #[test]
    fn predicts_the_planted_progression() {
        let m = MarkovModel::fit(&progressive()).unwrap();
        assert_eq!(m.predict_next("P"), "D");
        // From N, both N→P (40) and N→N (20): P wins.
        assert_eq!(m.predict_next("N"), "P");
    }

    #[test]
    fn multi_step_distribution_flows_forward() {
        let m = MarkovModel::fit(&progressive()).unwrap();
        let d2 = m.predict_distribution("N", 2).unwrap();
        let p_d: f64 = d2.iter().filter(|(s, _)| s == "D").map(|(_, p)| *p).sum();
        let d0 = m.predict_distribution("N", 0).unwrap();
        let p_d0: f64 = d0.iter().filter(|(s, _)| s == "D").map(|(_, p)| *p).sum();
        assert!(p_d > p_d0, "mass must flow toward D over time");
        let total: f64 = d2.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_state_falls_back_to_marginal() {
        let m = MarkovModel::fit(&progressive()).unwrap();
        let p = m.predict_next("NeverSeen");
        assert_eq!(p, m.majority_state());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(MarkovModel::fit(&[]).is_err());
        assert!(MarkovModel::fit(&[traj(1, &[])]).is_err());
    }

    #[test]
    fn single_visit_trajectories_contribute_no_transitions() {
        let m = MarkovModel::fit(&[traj(1, &["A"]), traj(2, &["B"])]).unwrap();
        // Transitions are uniform (pure smoothing).
        let p = m.transition_probability("A", "B").unwrap();
        assert!((p - 0.5).abs() < 1e-9);
    }
}
