//! Per-patient state trajectories.

use clinical_types::{Error, Result, Table};
use std::collections::HashMap;

/// One patient's chronologically ordered qualitative states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trajectory {
    /// Patient identifier.
    pub patient_id: i64,
    /// States in visit order; missing measurements appear as `"?"`.
    pub states: Vec<String>,
}

impl Trajectory {
    /// Number of visits.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when the patient has no visits (never produced by
    /// [`extract_trajectories`]).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

/// Extract per-patient trajectories of `state_column` (a qualitative
/// band/trend column) ordered by `date_column`.
pub fn extract_trajectories(
    table: &Table,
    patient_column: &str,
    date_column: &str,
    state_column: &str,
) -> Result<Vec<Trajectory>> {
    let schema = table.schema();
    let pid = schema.index_of(patient_column)?;
    let date = schema.index_of(date_column)?;
    let state = schema.index_of(state_column)?;

    let mut per_patient: HashMap<i64, Vec<usize>> = HashMap::new();
    for (i, row) in table.rows().iter().enumerate() {
        let id = row[pid]
            .as_i64()
            .ok_or_else(|| Error::invalid(format!("non-integer {patient_column} in row {i}")))?;
        per_patient.entry(id).or_default().push(i);
    }

    let mut out: Vec<Trajectory> = per_patient
        .into_iter()
        .map(|(patient_id, mut rows)| {
            rows.sort_by_key(|&i| table.rows()[i][date].as_date());
            let states = rows
                .iter()
                .map(|&i| {
                    let v = &table.rows()[i][state];
                    if v.is_null() {
                        "?".to_string()
                    } else {
                        v.to_string()
                    }
                })
                .collect();
            Trajectory { patient_id, states }
        })
        .collect();
    out.sort_by_key(|t| t.patient_id);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clinical_types::{DataType, Date, FieldDef, Record, Schema, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![
            FieldDef::required("PatientId", DataType::Int),
            FieldDef::required("TestDate", DataType::Date),
            FieldDef::nullable("FBG_Band", DataType::Text),
        ])
        .unwrap();
        let mk = |p: i64, y: i32, s: Option<&str>| {
            Record::new(vec![
                Value::Int(p),
                Value::Date(Date::new(y, 6, 1).unwrap()),
                s.map(Value::from).unwrap_or(Value::Null),
            ])
        };
        Table::from_rows(
            schema,
            vec![
                mk(2, 2007, Some("high")),
                mk(1, 2006, Some("preDiabetic")),
                mk(1, 2005, Some("very good")),
                mk(1, 2007, None),
                mk(2, 2006, Some("very good")),
            ],
        )
        .unwrap()
    }

    #[test]
    fn trajectories_are_date_ordered_per_patient() {
        let ts = extract_trajectories(&table(), "PatientId", "TestDate", "FBG_Band").unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].patient_id, 1);
        assert_eq!(ts[0].states, vec!["very good", "preDiabetic", "?"]);
        assert_eq!(ts[1].states, vec!["very good", "high"]);
    }

    #[test]
    fn unknown_columns_error() {
        assert!(extract_trajectories(&table(), "Nope", "TestDate", "FBG_Band").is_err());
        assert!(extract_trajectories(&table(), "PatientId", "TestDate", "Nope").is_err());
    }

    #[test]
    fn works_on_discri_pipeline_output() {
        let cohort = discri::generate(&discri::CohortConfig::small(51));
        let (t, _) = etl::TransformPipeline::discri_default()
            .run(&cohort.attendances)
            .unwrap();
        let ts = extract_trajectories(&t, "PatientId", "TestDate", "FBG_Band").unwrap();
        assert!(!ts.is_empty());
        let visits: usize = ts.iter().map(Trajectory::len).sum();
        assert_eq!(visits, t.len());
    }
}
