//! Text bar charts.

use clinical_types::{Error, Result};
use olap::PivotTable;

/// A grouped horizontal bar chart over a pivot table: one group per
/// pivot row, one bar per pivot column — the shape of the paper's
/// Figs. 5 and 6.
#[derive(Debug, Clone)]
pub struct GroupedBarChart {
    /// Chart title.
    pub title: String,
    /// Maximum bar width in characters.
    pub width: usize,
    /// Glyph per series (cycled when there are more series).
    pub glyphs: Vec<char>,
}

impl Default for GroupedBarChart {
    fn default() -> Self {
        GroupedBarChart {
            title: String::new(),
            width: 40,
            glyphs: vec!['█', '░', '▒', '▓'],
        }
    }
}

impl GroupedBarChart {
    /// Chart with a title.
    pub fn titled(title: impl Into<String>) -> Self {
        GroupedBarChart {
            title: title.into(),
            ..GroupedBarChart::default()
        }
    }

    /// Render the pivot as text. Bars scale to the global maximum.
    pub fn render(&self, pivot: &PivotTable) -> Result<String> {
        if self.width == 0 {
            return Err(Error::invalid("chart width must be positive"));
        }
        let max = pivot
            .cells
            .iter()
            .flatten()
            .flatten()
            .fold(0.0f64, |a, &b| a.max(b));
        let label_width = pivot
            .row_headers
            .iter()
            .map(|h| h.to_string().len())
            .max()
            .unwrap_or(4)
            .max(4);
        let series_width = pivot
            .col_headers
            .iter()
            .map(|h| h.to_string().len())
            .max()
            .unwrap_or(1);

        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
        }
        // Legend.
        for (ci, header) in pivot.col_headers.iter().enumerate() {
            let glyph = self.glyphs[ci % self.glyphs.len()];
            out.push_str(&format!("  {glyph} {header}"));
        }
        if !pivot.col_headers.is_empty() {
            out.push('\n');
        }
        for (ri, row_header) in pivot.row_headers.iter().enumerate() {
            for (ci, col_header) in pivot.col_headers.iter().enumerate() {
                let glyph = self.glyphs[ci % self.glyphs.len()];
                let label = if ci == 0 {
                    row_header.to_string()
                } else {
                    String::new()
                };
                let value = pivot.cells[ri][ci];
                let bar_len = match (value, max > 0.0) {
                    (Some(v), true) => ((v / max) * self.width as f64).round() as usize,
                    _ => 0,
                };
                let bar: String = std::iter::repeat_n(glyph, bar_len).collect();
                let value_text = value.map_or("-".to_string(), |v| format!("{v:.1}"));
                out.push_str(&format!(
                    "{label:>label_width$} {:>series_width$} |{bar} {value_text}\n",
                    col_header.to_string(),
                ));
            }
        }
        Ok(out)
    }
}

/// Render a plain histogram from `(label, value)` pairs.
pub fn histogram(title: &str, data: &[(String, f64)], width: usize) -> Result<String> {
    if width == 0 {
        return Err(Error::invalid("histogram width must be positive"));
    }
    if data.iter().any(|(_, v)| !v.is_finite() || *v < 0.0) {
        return Err(Error::invalid(
            "histogram values must be finite and non-negative",
        ));
    }
    let max = data.iter().fold(0.0f64, |a, (_, v)| a.max(*v));
    let label_width = data.iter().map(|(l, _)| l.len()).max().unwrap_or(4).max(4);
    let mut out = String::new();
    if !title.is_empty() {
        out.push_str(title);
        out.push('\n');
    }
    for (label, value) in data {
        let bar_len = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        let bar: String = std::iter::repeat_n('█', bar_len).collect();
        out.push_str(&format!("{label:>label_width$} |{bar} {value:.1}\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clinical_types::Value;

    fn pivot() -> PivotTable {
        PivotTable {
            row_axis: "Age_SubGroup".into(),
            col_axis: "Gender".into(),
            row_headers: vec![Value::from("70-75"), Value::from("75-80")],
            col_headers: vec![Value::from("F"), Value::from("M")],
            cells: vec![vec![Some(10.0), Some(25.0)], vec![Some(30.0), None]],
        }
    }

    #[test]
    fn bars_scale_to_global_maximum() {
        let text = GroupedBarChart::titled("Fig 5").render(&pivot()).unwrap();
        assert!(text.starts_with("Fig 5\n"));
        // The largest value (30) gets the full width of █ glyphs.
        let full_bar: String = std::iter::repeat_n('█', 40).collect();
        assert!(text.contains(&full_bar), "no full-width bar:\n{text}");
        // 10/30 of the width ≈ 13 glyphs on the F series of row 1.
        assert!(text.contains(&std::iter::repeat_n('█', 13).collect::<String>()));
    }

    #[test]
    fn missing_cells_render_a_dash() {
        let text = GroupedBarChart::default().render(&pivot()).unwrap();
        assert!(text.contains("| -"), "missing cell marker absent:\n{text}");
    }

    #[test]
    fn legend_lists_every_series() {
        let text = GroupedBarChart::default().render(&pivot()).unwrap();
        let legend = text.lines().next().unwrap();
        assert!(legend.contains('F') && legend.contains('M'));
    }

    #[test]
    fn zero_width_rejected() {
        let chart = GroupedBarChart {
            width: 0,
            ..Default::default()
        };
        assert!(chart.render(&pivot()).is_err());
    }

    #[test]
    fn histogram_renders_and_validates() {
        let data = vec![("a".to_string(), 1.0), ("bb".to_string(), 4.0)];
        let text = histogram("H", &data, 20).unwrap();
        assert!(text.contains("bb |████████████████████ 4.0"));
        assert!(histogram("H", &[("x".into(), -1.0)], 20).is_err());
        assert!(histogram("H", &data, 0).is_err());
    }

    #[test]
    fn all_zero_values_render_empty_bars() {
        let data = vec![("a".to_string(), 0.0)];
        let text = histogram("", &data, 10).unwrap();
        assert!(text.contains("a | 0.0"));
    }
}
