//! CSV export of OLAP outcomes.

use clinical_types::Result;
use olap::PivotTable;
use std::io::Write;
use std::path::Path;

/// Quote a CSV field per RFC 4180 when needed.
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Render a pivot as CSV: header row of column members, then one line
/// per row member. Missing cells are empty fields.
pub fn pivot_to_csv(pivot: &PivotTable) -> String {
    let mut out = String::new();
    out.push_str(&csv_field(&pivot.row_axis));
    for h in &pivot.col_headers {
        out.push(',');
        out.push_str(&csv_field(&h.to_string()));
    }
    out.push('\n');
    for (ri, row) in pivot.row_headers.iter().enumerate() {
        out.push_str(&csv_field(&row.to_string()));
        for ci in 0..pivot.col_headers.len() {
            out.push(',');
            if let Some(v) = pivot.cells[ri][ci] {
                out.push_str(&format!("{v}"));
            }
        }
        out.push('\n');
    }
    out
}

/// Write a pivot's CSV to a file.
pub fn write_csv(pivot: &PivotTable, path: &Path) -> Result<()> {
    let csv = pivot_to_csv(pivot);
    let mut file = std::fs::File::create(path)
        .map_err(|e| clinical_types::Error::invalid(format!("cannot create {path:?}: {e}")))?;
    file.write_all(csv.as_bytes())
        .map_err(|e| clinical_types::Error::invalid(format!("cannot write {path:?}: {e}")))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use clinical_types::Value;

    fn pivot() -> PivotTable {
        PivotTable {
            row_axis: "Age, Group".into(),
            col_axis: "Gender".into(),
            row_headers: vec![Value::from("70-75"), Value::from("75-80")],
            col_headers: vec![Value::from("F"), Value::from("M")],
            cells: vec![vec![Some(10.0), Some(25.5)], vec![Some(30.0), None]],
        }
    }

    #[test]
    fn csv_layout_and_missing_cells() {
        let csv = pivot_to_csv(&pivot());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "\"Age, Group\",F,M");
        assert_eq!(lines[1], "70-75,10,25.5");
        assert_eq!(lines[2], "75-80,30,");
    }

    #[test]
    fn quoting_escapes_embedded_quotes() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn write_csv_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("dd_dgms_viz_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig5.csv");
        write_csv(&pivot(), &path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, pivot_to_csv(&pivot()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_to_bad_path_errors() {
        let path = Path::new("/nonexistent-dir-zzz/x.csv");
        assert!(write_csv(&pivot(), path).is_err());
    }
}
