#![warn(missing_docs)]

//! Visualisation — §IV of the paper:
//!
//! *"While OLTP and OLAP are successful at aggregation and analysis,
//! the large number of dimensions in clinical settings can require
//! visualisation features for improved understanding."*
//!
//! The paper's Figs. 5 and 6 are grouped bar charts of OLAP outcomes;
//! [`chart::GroupedBarChart`] renders exactly that from a
//! [`olap::PivotTable`], in plain text so examples and benches can
//! print it. [`export`] writes the same data as CSV for external
//! plotting tools.

pub mod chart;
pub mod export;
pub mod timeseries;

pub use chart::{histogram, GroupedBarChart};
pub use export::{pivot_to_csv, write_csv};
pub use timeseries::{sparkline, state_timeline};
