//! Text time-series views: sparklines and patient state timelines.
//!
//! The prediction component works over per-patient trajectories; a
//! clinician reviewing a prediction wants to *see* the trajectory.
//! [`sparkline`] compresses a numeric series into one glyph row;
//! [`state_timeline`] renders a qualitative state sequence (e.g. the
//! FBG band per visit) as a labelled strip.

use clinical_types::{Error, Result};

const SPARK_GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render a numeric series as a one-line sparkline. Missing samples
/// render as `·`. Errors on non-finite values.
pub fn sparkline(values: &[Option<f64>]) -> Result<String> {
    let present: Vec<f64> = values.iter().flatten().copied().collect();
    if present.iter().any(|v| !v.is_finite()) {
        return Err(Error::invalid("sparkline values must be finite"));
    }
    if present.is_empty() {
        return Ok("·".repeat(values.len()));
    }
    let lo = present.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = present.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    Ok(values
        .iter()
        .map(|v| match v {
            None => '·',
            Some(x) => {
                let t = ((x - lo) / span * 7.0).round() as usize;
                SPARK_GLYPHS[t.min(7)]
            }
        })
        .collect())
}

/// Render a qualitative state sequence as a labelled strip:
/// `very good → very good → preDiabetic → Diabetic`, with repeated
/// states compressed to `state ×n` when `compress` is set.
pub fn state_timeline(states: &[String], compress: bool) -> String {
    if states.is_empty() {
        return String::from("(no visits)");
    }
    if !compress {
        return states.join(" → ");
    }
    let mut parts: Vec<String> = Vec::new();
    let mut i = 0;
    while i < states.len() {
        let mut j = i;
        while j + 1 < states.len() && states[j + 1] == states[i] {
            j += 1;
        }
        let run = j - i + 1;
        if run > 1 {
            parts.push(format!("{} ×{run}", states[i]));
        } else {
            parts.push(states[i].clone());
        }
        i = j + 1;
    }
    parts.join(" → ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_to_range() {
        let s = sparkline(&[Some(0.0), Some(0.5), Some(1.0)]).unwrap();
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[2], '█');
        assert!(chars[1] != '▁' && chars[1] != '█');
    }

    #[test]
    fn sparkline_marks_missing_samples() {
        let s = sparkline(&[Some(1.0), None, Some(2.0)]).unwrap();
        assert_eq!(s.chars().nth(1), Some('·'));
    }

    #[test]
    fn sparkline_handles_constant_and_empty() {
        let s = sparkline(&[Some(5.0), Some(5.0)]).unwrap();
        assert_eq!(s.chars().count(), 2);
        let all_missing = sparkline(&[None, None]).unwrap();
        assert_eq!(all_missing, "··");
        assert!(sparkline(&[Some(f64::NAN)]).is_err());
    }

    #[test]
    fn timeline_compresses_runs() {
        let states: Vec<String> = ["a", "a", "a", "b", "a"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(state_timeline(&states, true), "a ×3 → b → a");
        assert_eq!(state_timeline(&states, false), "a → a → a → b → a");
        assert_eq!(state_timeline(&[], true), "(no visits)");
    }
}
