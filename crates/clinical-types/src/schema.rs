//! Field and schema definitions.

use crate::error::{Error, Result};
use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One named, typed field of a record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldDef {
    /// Attribute name (e.g. `"FBG"`, `"LyingDBPAverage"`).
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// Whether `Null` (a missing measurement) is accepted.
    pub nullable: bool,
}

impl FieldDef {
    /// A nullable field — the common case for clinical measurements,
    /// which are frequently missing.
    pub fn nullable(name: impl Into<String>, dtype: DataType) -> Self {
        FieldDef {
            name: name.into(),
            dtype,
            nullable: true,
        }
    }

    /// A required (non-nullable) field — identifiers, dates.
    pub fn required(name: impl Into<String>, dtype: DataType) -> Self {
        FieldDef {
            name: name.into(),
            dtype,
            nullable: false,
        }
    }

    /// Validate a single value against this field.
    pub fn check(&self, value: &Value) -> Result<()> {
        if value.is_null() {
            if self.nullable {
                return Ok(());
            }
            return Err(Error::UnexpectedNull(self.name.clone()));
        }
        if value.conforms_to(self.dtype) {
            Ok(())
        } else {
            Err(Error::TypeMismatch {
                field: self.name.clone(),
                expected: self.dtype.to_string(),
                got: format!("{value:?}"),
            })
        }
    }
}

/// An ordered collection of fields with O(1) name lookup.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<FieldDef>,
    #[serde(skip)]
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// Build a schema. Duplicate field names are rejected.
    pub fn new(fields: Vec<FieldDef>) -> Result<Self> {
        let mut by_name = HashMap::with_capacity(fields.len());
        for (i, f) in fields.iter().enumerate() {
            if by_name.insert(f.name.clone(), i).is_some() {
                return Err(Error::invalid(format!("duplicate field `{}`", f.name)));
            }
        }
        Ok(Schema { fields, by_name })
    }

    /// Empty schema (useful as a builder seed).
    pub fn empty() -> Self {
        Schema {
            fields: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Append a field, rejecting duplicates.
    pub fn push(&mut self, field: FieldDef) -> Result<()> {
        if self.by_name.contains_key(&field.name) {
            return Err(Error::invalid(format!("duplicate field `{}`", field.name)));
        }
        self.by_name.insert(field.name.clone(), self.fields.len());
        self.fields.push(field);
        Ok(())
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if there are no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Fields in declaration order.
    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    /// Index of a field by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| Error::UnknownField(name.to_string()))
    }

    /// Field definition by name.
    pub fn field(&self, name: &str) -> Result<&FieldDef> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Field definition by position.
    pub fn field_at(&self, idx: usize) -> Option<&FieldDef> {
        self.fields.get(idx)
    }

    /// Whether a field with `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Validate a full row of values against this schema.
    pub fn check_row(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.fields.len() {
            return Err(Error::ArityMismatch {
                expected: self.fields.len(),
                got: values.len(),
            });
        }
        for (f, v) in self.fields.iter().zip(values) {
            f.check(v)?;
        }
        Ok(())
    }

    /// Projection of this schema onto the named fields, in the given
    /// order.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(names.len());
        for n in names {
            fields.push(self.field(n)?.clone());
        }
        Schema::new(fields)
    }

    /// Rebuild the name index (needed after serde deserialisation,
    /// which skips the derived map).
    pub fn reindex(&mut self) {
        self.by_name = self
            .fields
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::Date;

    fn demo_schema() -> Schema {
        Schema::new(vec![
            FieldDef::required("PatientId", DataType::Int),
            FieldDef::required("TestDate", DataType::Date),
            FieldDef::nullable("FBG", DataType::Float),
            FieldDef::nullable("Gender", DataType::Text),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_duplicate_fields() {
        let r = Schema::new(vec![
            FieldDef::nullable("FBG", DataType::Float),
            FieldDef::nullable("FBG", DataType::Float),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn index_and_lookup() {
        let s = demo_schema();
        assert_eq!(s.index_of("FBG").unwrap(), 2);
        assert!(s.contains("Gender"));
        assert!(matches!(s.index_of("Nope"), Err(Error::UnknownField(_))));
    }

    #[test]
    fn check_row_validates_types_and_nulls() {
        let s = demo_schema();
        let ok = vec![
            Value::Int(1),
            Value::Date(Date::new(2013, 1, 5).unwrap()),
            Value::Null,
            Value::Text("F".into()),
        ];
        assert!(s.check_row(&ok).is_ok());

        let null_in_required = vec![
            Value::Null,
            Value::Date(Date::new(2013, 1, 5).unwrap()),
            Value::Null,
            Value::Null,
        ];
        assert!(matches!(
            s.check_row(&null_in_required),
            Err(Error::UnexpectedNull(f)) if f == "PatientId"
        ));

        let wrong_type = vec![
            Value::Int(1),
            Value::Text("2013-01-05".into()),
            Value::Null,
            Value::Null,
        ];
        assert!(matches!(
            s.check_row(&wrong_type),
            Err(Error::TypeMismatch { .. })
        ));

        assert!(matches!(
            s.check_row(&[Value::Int(1)]),
            Err(Error::ArityMismatch {
                expected: 4,
                got: 1
            })
        ));
    }

    #[test]
    fn int_accepted_where_float_declared() {
        let s = demo_schema();
        let row = vec![
            Value::Int(1),
            Value::Date(Date::new(2013, 1, 5).unwrap()),
            Value::Int(6), // FBG declared Float
            Value::Null,
        ];
        assert!(s.check_row(&row).is_ok());
    }

    #[test]
    fn projection_preserves_order() {
        let s = demo_schema();
        let p = s.project(&["Gender", "PatientId"]).unwrap();
        assert_eq!(p.fields()[0].name, "Gender");
        assert_eq!(p.fields()[1].name, "PatientId");
        assert!(s.project(&["Missing"]).is_err());
    }

    #[test]
    fn push_extends_and_indexes() {
        let mut s = Schema::empty();
        s.push(FieldDef::nullable("A", DataType::Int)).unwrap();
        s.push(FieldDef::nullable("B", DataType::Int)).unwrap();
        assert_eq!(s.index_of("B").unwrap(), 1);
        assert!(s.push(FieldDef::nullable("A", DataType::Int)).is_err());
    }
}
