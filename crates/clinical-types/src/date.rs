//! A minimal proleptic-Gregorian calendar date.
//!
//! Clinical records are time-stamped (screening attendances, diagnosis
//! dates). The workspace only needs day-resolution dates with total
//! ordering and day arithmetic, so we implement the civil-calendar
//! conversion directly (Howard Hinnant's `days_from_civil` algorithm)
//! instead of depending on a calendar crate.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A calendar date (proleptic Gregorian), valid for any year in
/// `i32` range. Ordered chronologically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    /// Days since the civil epoch 1970-01-01 (may be negative).
    days: i64,
}

const DAYS_IN_MONTH: [u32; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u32) -> u32 {
    if month == 2 && is_leap(year) {
        29
    } else {
        DAYS_IN_MONTH[(month - 1) as usize]
    }
}

/// Days from 1970-01-01 to `year-month-day` (Hinnant's algorithm).
fn days_from_civil(year: i32, month: u32, day: u32) -> i64 {
    let y = i64::from(year) - i64::from(month <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(month);
    let d = i64::from(day);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m as u32, d as u32)
}

impl Date {
    /// Construct a date, validating the calendar components.
    pub fn new(year: i32, month: u32, day: u32) -> Result<Self> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return Err(Error::InvalidDate { year, month, day });
        }
        Ok(Date {
            days: days_from_civil(year, month, day),
        })
    }

    /// Construct directly from a day count since 1970-01-01.
    pub fn from_days_since_epoch(days: i64) -> Self {
        Date { days }
    }

    /// Days since 1970-01-01 (negative before the epoch).
    pub fn days_since_epoch(&self) -> i64 {
        self.days
    }

    /// Calendar year.
    pub fn year(&self) -> i32 {
        civil_from_days(self.days).0
    }

    /// Calendar month, 1–12.
    pub fn month(&self) -> u32 {
        civil_from_days(self.days).1
    }

    /// Day of month, 1–31.
    pub fn day(&self) -> u32 {
        civil_from_days(self.days).2
    }

    /// The date `n` days after (`n` may be negative).
    pub fn plus_days(&self, n: i64) -> Self {
        Date {
            days: self.days + n,
        }
    }

    /// Whole days from `earlier` to `self` (negative if `self` is earlier).
    pub fn days_since(&self, earlier: Date) -> i64 {
        self.days - earlier.days
    }

    /// Whole years elapsed from `birth` to `self` — clinical "age on
    /// test date" semantics (birthday not yet reached ⇒ previous year).
    pub fn years_since(&self, birth: Date) -> i32 {
        let (by, bm, bd) = civil_from_days(birth.days);
        let (y, m, d) = civil_from_days(self.days);
        let mut years = y - by;
        if (m, d) < (bm, bd) {
            years -= 1;
        }
        years
    }

    /// Parse `"YYYY-MM-DD"`.
    pub fn parse_iso(s: &str) -> Result<Self> {
        let mut parts = s.splitn(3, '-');
        let bad = || Error::invalid(format!("malformed ISO date `{s}`"));
        let year: i32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let month: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let day: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        Date::new(year, month, day)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = civil_from_days(self.days);
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_is_day_zero() {
        let d = Date::new(1970, 1, 1).unwrap();
        assert_eq!(d.days_since_epoch(), 0);
        assert_eq!(d.to_string(), "1970-01-01");
    }

    #[test]
    fn known_day_counts() {
        assert_eq!(Date::new(1970, 1, 2).unwrap().days_since_epoch(), 1);
        assert_eq!(Date::new(1969, 12, 31).unwrap().days_since_epoch(), -1);
        // 2000-03-01 is 11017 days after the epoch.
        assert_eq!(Date::new(2000, 3, 1).unwrap().days_since_epoch(), 11017);
    }

    #[test]
    fn leap_year_rules() {
        assert!(Date::new(2000, 2, 29).is_ok()); // divisible by 400
        assert!(Date::new(1900, 2, 29).is_err()); // divisible by 100 only
        assert!(Date::new(2012, 2, 29).is_ok()); // divisible by 4
        assert!(Date::new(2013, 2, 29).is_err());
    }

    #[test]
    fn rejects_out_of_range_components() {
        assert!(Date::new(2013, 0, 1).is_err());
        assert!(Date::new(2013, 13, 1).is_err());
        assert!(Date::new(2013, 4, 31).is_err());
        assert!(Date::new(2013, 4, 0).is_err());
    }

    #[test]
    fn ordering_is_chronological() {
        let a = Date::new(2005, 6, 1).unwrap();
        let b = Date::new(2005, 6, 2).unwrap();
        let c = Date::new(2006, 1, 1).unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn age_semantics_respect_birthday() {
        let birth = Date::new(1950, 6, 15).unwrap();
        let before = Date::new(2013, 6, 14).unwrap();
        let on = Date::new(2013, 6, 15).unwrap();
        assert_eq!(before.years_since(birth), 62);
        assert_eq!(on.years_since(birth), 63);
    }

    #[test]
    fn parse_iso_round_trip() {
        let d = Date::parse_iso("2013-04-09").unwrap();
        assert_eq!((d.year(), d.month(), d.day()), (2013, 4, 9));
        assert_eq!(d.to_string(), "2013-04-09");
        assert!(Date::parse_iso("2013/04/09").is_err());
        assert!(Date::parse_iso("not-a-date").is_err());
    }

    proptest! {
        #[test]
        fn civil_round_trips_through_days(days in -1_000_000i64..1_000_000) {
            let d = Date::from_days_since_epoch(days);
            let rebuilt = Date::new(d.year(), d.month(), d.day()).unwrap();
            prop_assert_eq!(rebuilt.days_since_epoch(), days);
        }

        #[test]
        fn plus_days_is_additive(days in -100_000i64..100_000, a in -5_000i64..5_000, b in -5_000i64..5_000) {
            let d = Date::from_days_since_epoch(days);
            prop_assert_eq!(d.plus_days(a).plus_days(b), d.plus_days(a + b));
        }

        #[test]
        fn days_since_is_antisymmetric(x in -100_000i64..100_000, y in -100_000i64..100_000) {
            let a = Date::from_days_since_epoch(x);
            let b = Date::from_days_since_epoch(y);
            prop_assert_eq!(a.days_since(b), -b.days_since(a));
        }
    }
}
