#![deny(missing_docs)]

//! Shared value model for the DD-DGMS reproduction.
//!
//! Every subsystem in the workspace — ETL, OLTP store, warehouse, OLAP
//! engine, miners and predictors — exchanges data through the types in
//! this crate: dynamically typed [`Value`]s, [`Schema`]-described
//! [`Record`]s, and in-memory [`Table`]s.
//!
//! The model is deliberately small. Clinical screening data (the
//! paper's DiScRi cohort) is tabular: one row per patient attendance,
//! a few hundred typed attributes per row. A dynamic `Value` enum with
//! a checked [`Schema`] captures that without pulling a full SQL type
//! system into every crate.

pub mod csv;
pub mod date;
pub mod error;
pub mod record;
pub mod schema;
pub mod span;
pub mod value;

pub use csv::{table_from_csv, table_to_csv};
pub use date::Date;
pub use error::{Error, Result};
pub use record::{Record, Table};
pub use schema::{FieldDef, Schema};
pub use span::{render_snippet, Span};
pub use value::{DataType, Value};
