//! Dynamically typed cell values and their declared types.

use crate::date::Date;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Declared type of a schema field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float (clinical measures: FBG, BMI, blood pressure…).
    Float,
    /// UTF-8 text (categorical attributes, discretised band labels).
    Text,
    /// Boolean flag (e.g. "family history of diabetes").
    Bool,
    /// Calendar date (attendance date, diagnosis date).
    Date,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "Int",
            DataType::Float => "Float",
            DataType::Text => "Text",
            DataType::Bool => "Bool",
            DataType::Date => "Date",
        };
        f.write_str(s)
    }
}

/// A single cell value.
///
/// `Null` models a missing clinical measurement — pervasive in
/// screening data — and is accepted by any nullable field regardless
/// of its declared type.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Missing measurement.
    Null,
    /// Integer value.
    Int(i64),
    /// Floating point value.
    Float(f64),
    /// Text value.
    Text(String),
    /// Boolean value.
    Bool(bool),
    /// Date value.
    Date(Date),
}

impl Value {
    /// Declared type this value conforms to, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// True if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: `Int` and `Float` yield `f64`, `Bool` yields 0/1.
    /// Used by aggregation and discretisation, which treat any numeric
    /// clinical measure uniformly.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view (exact only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Text view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Date view.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// Whether this value conforms to `dtype` (numeric widening from
    /// `Int` to `Float` is permitted; `Null` conforms to nothing —
    /// nullability is checked separately at the schema level).
    pub fn conforms_to(&self, dtype: DataType) -> bool {
        matches!(
            (self, dtype),
            (Value::Int(_), DataType::Int)
                | (Value::Int(_), DataType::Float)
                | (Value::Float(_), DataType::Float)
                | (Value::Text(_), DataType::Text)
                | (Value::Bool(_), DataType::Bool)
                | (Value::Date(_), DataType::Date)
        )
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b || (a.is_nan() && b.is_nan()),
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Date(a), Value::Date(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

/// Largest magnitude below which every integer is exactly
/// representable as an `f64` (2⁵³) — the boundary for the canonical
/// numeric hash below.
const EXACT_F64_INT_BOUND: i64 = 1 << 53;

impl std::hash::Hash for Value {
    /// Consistent with the cross-type numeric `Eq`: `Int(5)` and
    /// `Float(5.0)` are equal, so they must hash alike. Both hash
    /// under one numeric tag through a canonical form — an `i64` when
    /// the value is integral and within the exactly-representable
    /// range, the `f64` bit pattern otherwise (NaNs all hash alike).
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Int(i) => {
                1u8.hash(state);
                if (-EXACT_F64_INT_BOUND..EXACT_F64_INT_BOUND).contains(i) {
                    i.hash(state);
                } else {
                    // Equality against floats goes through `as f64`,
                    // so huge integers hash through it too.
                    (*i as f64).to_bits().hash(state);
                }
            }
            Value::Float(f) => {
                1u8.hash(state);
                if f.is_nan() {
                    f64::NAN.to_bits().hash(state);
                } else if f.fract() == 0.0 && f.abs() < EXACT_F64_INT_BOUND as f64 {
                    (*f as i64).hash(state);
                } else {
                    f.to_bits().hash(state);
                }
            }
            Value::Text(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Bool(b) => {
                3u8.hash(state);
                b.hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Total order used for sorting and group-by keys: `Null` sorts first,
/// then by type tag, then by value. Cross-numeric (`Int` vs `Float`)
/// comparisons compare numerically.
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        fn tag(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Float(_) => 1,
                Value::Text(_) => 2,
                Value::Bool(_) => 3,
                Value::Date(_) => 4,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => total_f64(*a, *b),
            (Value::Int(a), Value::Float(b)) => total_f64(*a as f64, *b),
            (Value::Float(a), Value::Int(b)) => total_f64(*a, *b as f64),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Date(a), Value::Date(b)) => a.cmp(b),
            (a, b) => tag(a).cmp(&tag(b)),
        }
    }
}

fn total_f64(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or_else(|| {
        // NaNs sort last among floats.
        match (a.is_nan(), b.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => unreachable!("partial_cmp failed on non-NaN floats"),
        }
    })
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Date(d) => write!(f, "{d}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(7), Value::Float(7.0));
        assert_ne!(Value::Int(7), Value::Float(7.5));
    }

    #[test]
    fn null_is_only_equal_to_null() {
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::Int(0));
        assert_ne!(Value::Null, Value::Text(String::new()));
    }

    #[test]
    fn nan_equals_nan_and_hashes_alike() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn cross_type_equal_numerics_hash_alike() {
        // Int(n) == Float(n as f64) must imply equal hashes, or
        // group-by keys could split across buckets.
        for n in [-923i64, 0, 7, 1 << 30, (1 << 53) - 1, 1 << 53, i64::MAX] {
            let a = Value::Int(n);
            let b = Value::Float(n as f64);
            if a == b {
                assert_eq!(hash_of(&a), hash_of(&b), "hash split for {n}");
            }
        }
        // Negative zero equals positive zero and Int(0).
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Float(0.0)));
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Int(0)));
        // Infinities are hashable and unequal to everything finite.
        assert_ne!(
            hash_of(&Value::Float(f64::INFINITY)),
            hash_of(&Value::Float(f64::NEG_INFINITY))
        );
    }

    #[test]
    fn ordering_null_first_then_numeric() {
        let mut vals = vec![
            Value::Text("b".into()),
            Value::Int(3),
            Value::Null,
            Value::Float(2.5),
            Value::Text("a".into()),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Float(2.5),
                Value::Int(3),
                Value::Text("a".into()),
                Value::Text("b".into()),
            ]
        );
    }

    #[test]
    fn conforms_allows_int_widening() {
        assert!(Value::Int(1).conforms_to(DataType::Float));
        assert!(!Value::Float(1.0).conforms_to(DataType::Int));
        assert!(!Value::Null.conforms_to(DataType::Int));
    }

    #[test]
    fn as_f64_views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Text("x".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn from_option_maps_none_to_null() {
        let v: Value = Option::<i64>::None.into();
        assert!(v.is_null());
        let v: Value = Some(4i64).into();
        assert_eq!(v, Value::Int(4));
    }

    #[test]
    fn display_renders_clinical_values() {
        assert_eq!(Value::Float(5.5).to_string(), "5.5");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Text("preDiabetic".into()).to_string(), "preDiabetic");
    }

    proptest! {
        #[test]
        fn eq_implies_hash_eq(a in -1000i64..1000, b in -1000i64..1000) {
            let (va, vb) = (Value::Int(a), Value::Float(b as f64));
            if va == vb {
                prop_assert_eq!(hash_of(&va), hash_of(&vb));
            }
        }

        #[test]
        fn ord_is_total_and_antisymmetric(a in any::<f64>(), b in any::<f64>()) {
            let (va, vb) = (Value::Float(a), Value::Float(b));
            let fwd = va.cmp(&vb);
            let rev = vb.cmp(&va);
            prop_assert_eq!(fwd, rev.reverse());
        }
    }
}
