//! CSV interchange for tables.
//!
//! A real deployment of the DD-DGMS loads its attendance data from the
//! clinic's exports; this module provides schema-driven CSV parsing
//! (types come from the [`Schema`], empty fields become `Null`) and
//! the matching writer. RFC 4180 quoting is honoured in both
//! directions.
//!
//! ```
//! use clinical_types::{table_from_csv, DataType, FieldDef, Schema};
//!
//! let schema = Schema::new(vec![
//!     FieldDef::required("PatientId", DataType::Int),
//!     FieldDef::nullable("FBG", DataType::Float),
//! ])?;
//! let table = table_from_csv("PatientId,FBG\n1,5.5\n2,\n", &schema)?;
//! assert_eq!(table.len(), 2);
//! assert!(table.value(1, "FBG")?.is_null());
//! # Ok::<(), clinical_types::Error>(())
//! ```

use crate::error::{Error, Result};
use crate::record::{Record, Table};
use crate::schema::Schema;
use crate::value::{DataType, Value};
use crate::Date;

fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serialise a table to CSV: header row of field names, one line per
/// record, `Null` as an empty field.
pub fn table_to_csv(table: &Table) -> String {
    let mut out = String::new();
    let names: Vec<String> = table
        .schema()
        .fields()
        .iter()
        .map(|f| quote(&f.name))
        .collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for row in table.rows() {
        let cells: Vec<String> = row
            .values()
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                other => quote(&other.to_string()),
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Parse a whole CSV document into records, honouring quoted fields
/// (including embedded commas, quotes and newlines) and CRLF endings.
fn parse_records(text: &str) -> Result<Vec<Vec<String>>> {
    let mut records: Vec<Vec<String>> = Vec::new();
    let mut fields: Vec<String> = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        current.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    current.push('\n');
                }
                other => current.push(other),
            }
            continue;
        }
        match c {
            '"' => {
                if !current.is_empty() {
                    return Err(Error::invalid(format!(
                        "stray quote mid-field on line {line}"
                    )));
                }
                in_quotes = true;
            }
            ',' => fields.push(std::mem::take(&mut current)),
            '\r' if chars.peek() == Some(&'\n') => {} // CRLF: defer to '\n'
            '\n' => {
                line += 1;
                fields.push(std::mem::take(&mut current));
                // Skip blank lines (a lone empty field).
                if !(fields.len() == 1 && fields[0].is_empty()) {
                    records.push(std::mem::take(&mut fields));
                } else {
                    fields.clear();
                }
            }
            other => current.push(other),
        }
    }
    if in_quotes {
        return Err(Error::invalid(format!("unterminated quote on line {line}")));
    }
    if !current.is_empty() || !fields.is_empty() {
        fields.push(current);
        records.push(fields);
    }
    Ok(records)
}

fn parse_cell(text: &str, dtype: DataType, field: &str, line_no: usize) -> Result<Value> {
    if text.is_empty() {
        return Ok(Value::Null);
    }
    let bad = |what: &str| {
        Error::invalid(format!(
            "line {line_no}, field `{field}`: `{text}` is not a valid {what}"
        ))
    };
    Ok(match dtype {
        DataType::Int => Value::Int(text.parse().map_err(|_| bad("integer"))?),
        DataType::Float => Value::Float(text.parse().map_err(|_| bad("float"))?),
        DataType::Text => Value::Text(text.to_string()),
        DataType::Bool => match text {
            "true" | "TRUE" | "1" | "yes" => Value::Bool(true),
            "false" | "FALSE" | "0" | "no" => Value::Bool(false),
            _ => return Err(bad("boolean")),
        },
        DataType::Date => Value::Date(Date::parse_iso(text).map_err(|_| bad("ISO date"))?),
    })
}

/// Parse CSV text against a schema. The header must list exactly the
/// schema's fields (any order); rows are validated as they are read.
pub fn table_from_csv(text: &str, schema: &Schema) -> Result<Table> {
    let mut records = parse_records(text)?.into_iter();
    let names = records
        .next()
        .ok_or_else(|| Error::invalid("empty CSV input"))?;
    if names.len() != schema.len() {
        return Err(Error::invalid(format!(
            "CSV header has {} fields, schema expects {}",
            names.len(),
            schema.len()
        )));
    }
    // Map CSV column position → schema position.
    let positions: Vec<usize> = names
        .iter()
        .map(|n| schema.index_of(n))
        .collect::<Result<_>>()?;

    let mut table = Table::new(schema.clone());
    for (i, fields) in records.enumerate() {
        let record_no = i + 2; // 1-based, after the header
        if fields.len() != schema.len() {
            return Err(Error::invalid(format!(
                "record {record_no}: {} fields, expected {}",
                fields.len(),
                schema.len()
            )));
        }
        let mut values = vec![Value::Null; schema.len()];
        for (csv_pos, &schema_pos) in positions.iter().enumerate() {
            let field = schema.field_at(schema_pos).expect("position valid");
            values[schema_pos] = parse_cell(&fields[csv_pos], field.dtype, &field.name, record_no)?;
        }
        table.push(Record::new(values))?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FieldDef;
    use proptest::prelude::*;

    fn schema() -> Schema {
        Schema::new(vec![
            FieldDef::required("Id", DataType::Int),
            FieldDef::nullable("FBG", DataType::Float),
            FieldDef::nullable("Gender", DataType::Text),
            FieldDef::nullable("Smoker", DataType::Bool),
            FieldDef::nullable("TestDate", DataType::Date),
        ])
        .unwrap()
    }

    fn demo() -> Table {
        let mut t = Table::new(schema());
        t.push(Record::new(vec![
            Value::Int(1),
            Value::Float(5.5),
            Value::Text("F".into()),
            Value::Bool(true),
            Value::Date(Date::new(2013, 4, 9).unwrap()),
        ]))
        .unwrap();
        t.push(Record::new(vec![
            Value::Int(2),
            Value::Null,
            Value::Text("has,comma".into()),
            Value::Null,
            Value::Null,
        ]))
        .unwrap();
        t
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = demo();
        let csv = table_to_csv(&t);
        let back = table_from_csv(&csv, t.schema()).unwrap();
        assert_eq!(back.len(), t.len());
        for (a, b) in back.rows().iter().zip(t.rows()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn quoted_fields_survive() {
        let csv = table_to_csv(&demo());
        assert!(csv.contains("\"has,comma\""));
        let back = table_from_csv(&csv, &schema()).unwrap();
        assert_eq!(back.value(1, "Gender").unwrap().as_str(), Some("has,comma"));
    }

    #[test]
    fn header_order_may_differ() {
        let csv = "Gender,Id,FBG,Smoker,TestDate\nM,7,6.1,no,2010-01-02\n";
        let t = table_from_csv(csv, &schema()).unwrap();
        assert_eq!(t.value(0, "Id").unwrap().as_i64(), Some(7));
        assert_eq!(t.value(0, "Gender").unwrap().as_str(), Some("M"));
        assert_eq!(t.value(0, "Smoker").unwrap().as_bool(), Some(false));
        assert_eq!(
            t.value(0, "TestDate").unwrap().as_date(),
            Some(Date::new(2010, 1, 2).unwrap())
        );
    }

    #[test]
    fn bad_cells_are_rejected_with_location() {
        let csv = "Id,FBG,Gender,Smoker,TestDate\n1,not_a_number,F,true,2010-01-02\n";
        let err = table_from_csv(csv, &schema()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2") && msg.contains("FBG"), "{msg}");
    }

    #[test]
    fn structural_errors_are_rejected() {
        assert!(table_from_csv("", &schema()).is_err());
        assert!(table_from_csv("A,B\n1,2\n", &schema()).is_err()); // wrong header
        let short = "Id,FBG,Gender,Smoker,TestDate\n1,2\n";
        assert!(table_from_csv(short, &schema()).is_err());
        let unterminated = "Id,FBG,Gender,Smoker,TestDate\n1,2,\"open,true,2010-01-02\n";
        assert!(table_from_csv(unterminated, &schema()).is_err());
    }

    #[test]
    fn null_required_field_fails_validation() {
        let csv = "Id,FBG,Gender,Smoker,TestDate\n,5.0,F,true,2010-01-02\n";
        assert!(table_from_csv(csv, &schema()).is_err());
    }

    proptest! {
        #[test]
        fn arbitrary_text_round_trips(texts in proptest::collection::vec("[^\r]*", 1..20)) {
            let schema = Schema::new(vec![FieldDef::nullable("T", DataType::Text)]).unwrap();
            let mut t = Table::new(schema.clone());
            for s in &texts {
                // Empty text is indistinguishable from NULL in CSV;
                // skip that known aliasing.
                if s.is_empty() {
                    continue;
                }
                t.push(Record::new(vec![Value::Text(s.clone())])).unwrap();
            }
            let back = table_from_csv(&table_to_csv(&t), &schema).unwrap();
            prop_assert_eq!(back.len(), t.len());
            for (a, b) in back.rows().iter().zip(t.rows()) {
                prop_assert_eq!(a, b);
            }
        }
    }
}
