//! Byte-offset source spans and caret-snippet rendering.
//!
//! The MDX front end and the semantic analyzer both need to point at
//! the exact fragment of a query that caused a problem. A [`Span`] is
//! a half-open byte range `[start, end)` into the original query text;
//! [`render_snippet`] turns a span plus the source into the familiar
//! two-line `query / ^^^^ here` caret display.

use std::fmt;

/// A half-open byte range `[start, end)` into some source text.
///
/// Offsets are *byte* offsets (`str` indices), not character counts,
/// so spans can be sliced out of the source directly. An empty span
/// (`start == end`) points *between* two bytes — used for
/// "unexpected end of input" style errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first byte covered by the span.
    pub start: usize,
    /// Byte offset one past the last covered byte.
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`. Callers must keep `start <= end`;
    /// the constructor normalises a reversed pair rather than panicking.
    pub fn new(start: usize, end: usize) -> Self {
        if start <= end {
            Span { start, end }
        } else {
            Span {
                start: end,
                end: start,
            }
        }
    }

    /// An empty span sitting at `at` (an insertion point).
    pub fn point(at: usize) -> Self {
        Span { start: at, end: at }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the span covers zero bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Smallest span covering both `self` and `other`.
    pub fn merge(&self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// The text the span covers, if it lies on `char` boundaries of
    /// `source` and within bounds.
    pub fn slice<'s>(&self, source: &'s str) -> Option<&'s str> {
        source.get(self.start..self.end)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Render a two-line caret snippet pointing `span` out inside
/// `source`.
///
/// The first line is the source line containing the span's start; the
/// second line carries `^` marks under the covered characters (at
/// least one, so even an empty span is visible). Multi-byte characters
/// are counted once each, so the carets line up for any monospace
/// rendering that gives every scalar one cell.
pub fn render_snippet(source: &str, span: Span) -> String {
    // Clamp to the source and snap to char boundaries so arbitrary
    // (possibly wrong) spans never panic.
    let mut start = span.start.min(source.len());
    while start > 0 && !source.is_char_boundary(start) {
        start -= 1;
    }
    let mut end = span.end.clamp(start, source.len());
    while end < source.len() && !source.is_char_boundary(end) {
        end += 1;
    }

    // The line containing `start`.
    let line_start = source[..start].rfind('\n').map_or(0, |p| p + 1);
    let line_end = source[start..]
        .find('\n')
        .map_or(source.len(), |p| start + p);
    let line = &source[line_start..line_end];

    let prefix_chars = source[line_start..start].chars().count();
    let covered = end.min(line_end).saturating_sub(start);
    let caret_chars = source[start..start + covered].chars().count().max(1);

    let mut out = String::with_capacity(line.len() * 2 + 8);
    out.push_str(line);
    out.push('\n');
    for _ in 0..prefix_chars {
        out.push(' ');
    }
    for _ in 0..caret_chars {
        out.push('^');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_len() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.merge(b), Span::new(2, 9));
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Span::point(4).is_empty());
        // Reversed input is normalised, not a panic.
        assert_eq!(Span::new(5, 2), Span::new(2, 5));
    }

    #[test]
    fn slice_returns_the_covered_text() {
        let src = "SELECT x FROM y";
        assert_eq!(Span::new(7, 8).slice(src), Some("x"));
        assert_eq!(Span::new(0, 100).slice(src), None);
    }

    #[test]
    fn snippet_points_at_the_fragment() {
        let src = "SELECT [Gendr].MEMBERS ON ROWS";
        let snippet = render_snippet(src, Span::new(7, 14));
        assert_eq!(snippet, format!("{src}\n       ^^^^^^^"));
    }

    #[test]
    fn snippet_handles_multibyte_and_out_of_range() {
        let src = "µmol = «x»";
        // Span over the « char: carets count chars, not bytes.
        let start = src.find('«').unwrap();
        let snippet = render_snippet(src, Span::new(start, start + "«".len()));
        assert!(snippet.ends_with("^"));
        assert!(!snippet.ends_with("^^"));
        // Wildly out-of-range spans are clamped.
        let clamped = render_snippet(src, Span::new(500, 900));
        assert!(clamped.starts_with(src));
        // Span not on a char boundary is snapped, not a panic.
        let inside = src.find('«').unwrap() + 1;
        let _ = render_snippet(src, Span::new(inside, inside));
    }

    #[test]
    fn snippet_uses_only_the_spanned_line() {
        let src = "line one\nline two here";
        let start = src.find("two").unwrap();
        let snippet = render_snippet(src, Span::new(start, start + 3));
        assert_eq!(snippet, "line two here\n     ^^^");
    }
}
