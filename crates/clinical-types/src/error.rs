//! Error type shared by the data-model crates.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the shared data model and by the engines built on it.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A value did not match the declared [`crate::DataType`] of its field.
    TypeMismatch {
        /// Field whose declared type was violated.
        field: String,
        /// The declared type, rendered for the message.
        expected: String,
        /// The value that was supplied, rendered for the message.
        got: String,
    },
    /// A field name was not present in the schema.
    UnknownField(String),
    /// A record had a different arity than its schema.
    ArityMismatch {
        /// Number of fields in the schema.
        expected: usize,
        /// Number of values in the record.
        got: usize,
    },
    /// A `NULL` was supplied for a non-nullable field.
    UnexpectedNull(String),
    /// A calendar date was out of range or malformed.
    InvalidDate {
        /// Year component as supplied.
        year: i32,
        /// Month component as supplied.
        month: u32,
        /// Day component as supplied.
        day: u32,
    },
    /// Catch-all for engine-level failures (parse errors, missing
    /// dimensions, …) raised by downstream crates that reuse this type.
    Invalid(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::TypeMismatch {
                field,
                expected,
                got,
            } => write!(
                f,
                "type mismatch for field `{field}`: expected {expected}, got {got}"
            ),
            Error::UnknownField(name) => write!(f, "unknown field `{name}`"),
            Error::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "record arity mismatch: schema has {expected} fields, record has {got}"
                )
            }
            Error::UnexpectedNull(field) => {
                write!(f, "NULL supplied for non-nullable field `{field}`")
            }
            Error::InvalidDate { year, month, day } => {
                write!(f, "invalid calendar date {year:04}-{month:02}-{day:02}")
            }
            Error::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Build an [`Error::Invalid`] from anything displayable.
    pub fn invalid(msg: impl fmt::Display) -> Self {
        Error::Invalid(msg.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_type_mismatch() {
        let e = Error::TypeMismatch {
            field: "FBG".into(),
            expected: "Float".into(),
            got: "Text(\"high\")".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("FBG"));
        assert!(msg.contains("Float"));
    }

    #[test]
    fn display_invalid_date_pads_components() {
        let e = Error::InvalidDate {
            year: 2013,
            month: 2,
            day: 30,
        };
        assert_eq!(e.to_string(), "invalid calendar date 2013-02-30");
    }

    #[test]
    fn invalid_helper_wraps_message() {
        let e = Error::invalid("cube has no axes");
        assert_eq!(e, Error::Invalid("cube has no axes".into()));
    }
}
