//! Records (rows) and in-memory tables.

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// One row of values, positionally aligned with a [`Schema`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    values: Vec<Value>,
}

impl Record {
    /// Wrap a vector of values (unchecked; validation happens when the
    /// record enters a [`Table`]).
    pub fn new(values: Vec<Value>) -> Self {
        Record { values }
    }

    /// Values in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Mutable values (used by ETL in-place transforms).
    pub fn values_mut(&mut self) -> &mut [Value] {
        &mut self.values
    }

    /// Value at a position.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for the empty record.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Consume into the value vector.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl From<Vec<Value>> for Record {
    fn from(values: Vec<Value>) -> Self {
        Record::new(values)
    }
}

impl std::ops::Index<usize> for Record {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.values[idx]
    }
}

/// A schema-validated, in-memory table of records.
///
/// This is the interchange format between pipeline stages: the DiScRi
/// generator emits a `Table`, ETL transforms it, the warehouse loader
/// consumes it. The schema is shared via `Arc` so projections and
/// derived tables stay cheap.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Arc<Schema>,
    rows: Vec<Record>,
}

impl Table {
    /// New empty table over `schema`.
    pub fn new(schema: Schema) -> Self {
        Table {
            schema: Arc::new(schema),
            rows: Vec::new(),
        }
    }

    /// New empty table sharing an existing schema handle.
    pub fn with_schema(schema: Arc<Schema>) -> Self {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// Build from pre-validated parts; each row is checked.
    pub fn from_rows(schema: Schema, rows: Vec<Record>) -> Result<Self> {
        let mut t = Table::new(schema);
        for r in rows {
            t.push(r)?;
        }
        Ok(t)
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Shared schema handle.
    pub fn schema_arc(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// Append a record after validating it against the schema.
    pub fn push(&mut self, record: Record) -> Result<()> {
        self.schema.check_row(record.values())?;
        self.rows.push(record);
        Ok(())
    }

    /// Append without validation. For trusted internal producers on
    /// hot paths (the synthetic generator, the warehouse loader);
    /// callers must guarantee schema conformance.
    pub fn push_unchecked(&mut self, record: Record) {
        debug_assert!(self.schema.check_row(record.values()).is_ok());
        self.rows.push(record);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows in insertion order.
    pub fn rows(&self) -> &[Record] {
        &self.rows
    }

    /// Mutable rows (ETL in-place transforms).
    pub fn rows_mut(&mut self) -> &mut [Record] {
        &mut self.rows
    }

    /// Value at (`row`, field `name`).
    pub fn value(&self, row: usize, name: &str) -> Result<&Value> {
        let idx = self.schema.index_of(name)?;
        self.rows
            .get(row)
            .map(|r| &r[idx])
            .ok_or_else(|| Error::invalid(format!("row index {row} out of range")))
    }

    /// Iterator over one column by name.
    pub fn column<'a>(&'a self, name: &str) -> Result<impl Iterator<Item = &'a Value> + 'a> {
        let idx = self.schema.index_of(name)?;
        Ok(self.rows.iter().map(move |r| &r[idx]))
    }

    /// Materialised numeric column (nulls and non-numeric skipped),
    /// as used by discretisation and statistics.
    pub fn numeric_column(&self, name: &str) -> Result<Vec<f64>> {
        Ok(self.column(name)?.filter_map(Value::as_f64).collect())
    }

    /// Project onto named columns, producing a new table.
    pub fn project(&self, names: &[&str]) -> Result<Table> {
        let schema = self.schema.project(names)?;
        let idxs: Vec<usize> = names
            .iter()
            .map(|n| self.schema.index_of(n))
            .collect::<Result<_>>()?;
        let rows = self
            .rows
            .iter()
            .map(|r| Record::new(idxs.iter().map(|&i| r[i].clone()).collect()))
            .collect();
        Ok(Table {
            schema: Arc::new(schema),
            rows,
        })
    }

    /// Filter rows by predicate, producing a new table with the same
    /// schema.
    pub fn filter(&self, mut pred: impl FnMut(&Record) -> bool) -> Table {
        Table {
            schema: Arc::clone(&self.schema),
            rows: self.rows.iter().filter(|r| pred(r)).cloned().collect(),
        }
    }

    /// Sort rows by a named column using the total [`Value`] order.
    pub fn sort_by_column(&mut self, name: &str) -> Result<()> {
        let idx = self.schema.index_of(name)?;
        self.rows.sort_by(|a, b| a[idx].cmp(&b[idx]));
        Ok(())
    }

    /// Consume into rows.
    pub fn into_rows(self) -> Vec<Record> {
        self.rows
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self
            .schema
            .fields()
            .iter()
            .map(|x| x.name.as_str())
            .collect();
        writeln!(f, "{}", names.join(" | "))?;
        for r in self.rows.iter().take(20) {
            let cells: Vec<String> = r.values().iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        if self.rows.len() > 20 {
            writeln!(f, "… ({} rows total)", self.rows.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FieldDef;
    use crate::value::DataType;

    fn demo() -> Table {
        let schema = Schema::new(vec![
            FieldDef::required("Id", DataType::Int),
            FieldDef::nullable("FBG", DataType::Float),
            FieldDef::nullable("Gender", DataType::Text),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        t.push(Record::new(vec![1.into(), 5.2.into(), "F".into()]))
            .unwrap();
        t.push(Record::new(vec![2.into(), Value::Null, "M".into()]))
            .unwrap();
        t.push(Record::new(vec![3.into(), 7.1.into(), "F".into()]))
            .unwrap();
        t
    }

    #[test]
    fn push_validates_against_schema() {
        let mut t = demo();
        let bad = Record::new(vec![Value::Null, Value::Null, Value::Null]);
        assert!(t.push(bad).is_err());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn column_iteration_and_numeric_extraction() {
        let t = demo();
        let genders: Vec<String> = t.column("Gender").unwrap().map(|v| v.to_string()).collect();
        assert_eq!(genders, vec!["F", "M", "F"]);
        // The NULL FBG is skipped.
        assert_eq!(t.numeric_column("FBG").unwrap(), vec![5.2, 7.1]);
    }

    #[test]
    fn projection_reorders_columns() {
        let t = demo();
        let p = t.project(&["Gender", "Id"]).unwrap();
        assert_eq!(p.schema().fields()[0].name, "Gender");
        assert_eq!(p.rows()[1].values()[1], Value::Int(2));
    }

    #[test]
    fn filter_keeps_schema() {
        let t = demo();
        let f = t.filter(|r| r[2] == Value::Text("F".into()));
        assert_eq!(f.len(), 2);
        assert_eq!(f.schema().len(), 3);
    }

    #[test]
    fn sort_by_column_orders_values() {
        let mut t = demo();
        t.sort_by_column("FBG").unwrap();
        // NULL sorts first in the total order.
        assert!(t.rows()[0].values()[1].is_null());
        assert_eq!(t.rows()[1].values()[1], Value::Float(5.2));
    }

    #[test]
    fn value_accessor_reports_bad_row() {
        let t = demo();
        assert!(t.value(99, "Id").is_err());
        assert!(t.value(0, "Nope").is_err());
        assert_eq!(t.value(0, "Id").unwrap(), &Value::Int(1));
    }

    #[test]
    fn display_lists_header_and_rows() {
        let t = demo();
        let s = t.to_string();
        assert!(s.starts_with("Id | FBG | Gender"));
        assert!(s.contains("NULL"));
    }
}
