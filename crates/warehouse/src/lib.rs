#![warn(missing_docs)]

//! The clinical data warehouse — the intermediary layer the DD-DGMS
//! architecture introduces between raw data stores and the decision
//! guidance features (paper §III–IV).
//!
//! * [`model`] — the dimensional (star/snowflake) model: fact
//!   definition, dimensions, attribute hierarchies. Includes the
//!   paper's two concrete models: Fig. 1 (generic CDW) and Fig. 3
//!   (the DiScRi trial's eight-dimension model with its Cardinality
//!   dimension).
//! * [`storage`] — columnar storage: dictionary-encoded dimension
//!   tables with surrogate keys, and a fact table of dimension-key
//!   columns plus null-aware measure columns.
//! * [`loader`] — the [`loader::LoadPlan`] mapping a wide (ETL'd)
//!   attendance table into the star schema, and the bulk loader.
//! * [`feedback`] — user-feedback dimensions: clinician-derived
//!   labels appended to the warehouse after load, closing the
//!   knowledge-management loop of Fig. 2.
//! * [`segments`] — the sealed-segment view of the fact table and the
//!   two-phase compactor folding the delta log into fresh `segstore`
//!   segments behind a watermark, without ever blocking readers on a
//!   half-built state.
//! * [`delta`] — the versioned delta log behind delta-aware epochs:
//!   every mutation records a [`DeltaSummary`] (dimensions touched,
//!   fact-row range appended, whether existing rows were rewritten),
//!   exposed through [`Warehouse::deltas_since`] so downstream caches
//!   can revalidate stale results instead of discarding them.
//!
//! The warehouse is *append-mostly*: screening rounds append fact
//! rows, clinicians append feedback dimensions, and nothing in the
//! normal lifecycle rewrites loaded data. The data epoch (a
//! process-globally monotonic `u64`) still advances on every mutation,
//! but the delta log makes the transition inspectable — the basis for
//! cross-epoch result reuse in `serve` and incremental cube
//! maintenance in `olap`.

pub mod delta;
pub mod feedback;
pub mod loader;
pub mod model;
pub mod replication;
pub mod segments;
pub mod storage;

pub use delta::{ChangeSet, DeltaKind, DeltaLog, DeltaSummary, DELTA_LOG_CAPACITY};
pub use loader::{LoadPlan, Warehouse};
pub use model::{discri_model, fig1_model, DimensionDef, FactDef, Hierarchy, StarSchema};
pub use replication::WarehouseChange;
pub use segments::{CompactionConfig, CompactionPlan, SegmentSet};
pub use storage::{DimensionTable, FactTable, MeasureColumn, SurrogateKey};
