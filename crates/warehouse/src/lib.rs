#![warn(missing_docs)]

//! The clinical data warehouse — the intermediary layer the DD-DGMS
//! architecture introduces between raw data stores and the decision
//! guidance features (paper §III–IV).
//!
//! * [`model`] — the dimensional (star/snowflake) model: fact
//!   definition, dimensions, attribute hierarchies. Includes the
//!   paper's two concrete models: Fig. 1 (generic CDW) and Fig. 3
//!   (the DiScRi trial's eight-dimension model with its Cardinality
//!   dimension).
//! * [`storage`] — columnar storage: dictionary-encoded dimension
//!   tables with surrogate keys, and a fact table of dimension-key
//!   columns plus null-aware measure columns.
//! * [`loader`] — the [`loader::LoadPlan`] mapping a wide (ETL'd)
//!   attendance table into the star schema, and the bulk loader.
//! * [`feedback`] — user-feedback dimensions: clinician-derived
//!   labels appended to the warehouse after load, closing the
//!   knowledge-management loop of Fig. 2.

pub mod feedback;
pub mod loader;
pub mod model;
pub mod storage;

pub use loader::{LoadPlan, Warehouse};
pub use model::{discri_model, fig1_model, DimensionDef, FactDef, Hierarchy, StarSchema};
pub use storage::{DimensionTable, FactTable, MeasureColumn, SurrogateKey};
