//! Replicated application of warehouse mutations.
//!
//! The delta log ([`crate::delta`]) says *what region* of the
//! warehouse a mutation touched; it deliberately does not carry the
//! data. A replica that wants to reach the primary's state therefore
//! needs the mutation itself — the appended table, the feedback
//! labels — replayable at exactly the epoch the primary assigned.
//! [`WarehouseChange`] is that self-contained mutation record, and
//! [`Warehouse::apply_change`] replays one onto a follower, landing
//! the follower on the primary-minted epoch so caches, catalogs and
//! routers on both sides speak one epoch vocabulary.
//!
//! The invariant the serve tier's router depends on falls out of the
//! shape of this API: a follower's epoch only advances *after* a
//! change has been applied in full (one change = one epoch = one
//! atomic `apply_change` call that either mutates and advances or
//! errors and leaves the previous epoch fully queryable). A replica
//! can therefore never expose a partially-applied epoch.

use crate::delta::DeltaKind;
use crate::loader::Warehouse;
use clinical_types::{Error, Result, Table, Value};
use std::collections::BTreeSet;

/// One primary-side mutation, carrying everything a follower needs to
/// reproduce it byte-for-byte.
#[derive(Debug, Clone)]
pub enum WarehouseChange {
    /// Rows appended via [`Warehouse::append`] — the transformed
    /// source table, re-interned identically on the follower.
    Append(Table),
    /// A clinician-feedback dimension added via
    /// [`Warehouse::add_feedback_dimension`].
    Feedback {
        /// New dimension name.
        dimension: String,
        /// Its single attribute.
        attribute: String,
        /// One label per existing fact row.
        labels: Vec<Value>,
    },
    /// A conservative [`Warehouse::bump_epoch`]-style rewrite marker:
    /// no payload, but every cached result derived from an earlier
    /// epoch is invalid.
    Rewrite,
}

impl WarehouseChange {
    /// Short kind tag for events and framing.
    pub fn kind_name(&self) -> &'static str {
        match self {
            WarehouseChange::Append(_) => "append",
            WarehouseChange::Feedback { .. } => "feedback",
            WarehouseChange::Rewrite => "rewrite",
        }
    }
}

impl Warehouse {
    /// Replay one primary-side `change` onto this follower, landing on
    /// the primary-assigned `to_epoch`.
    ///
    /// Fails (leaving the follower untouched at its previous epoch)
    /// when `to_epoch` does not advance the follower — replaying a
    /// change twice, or out of order, is always a caller bug worth
    /// surfacing rather than masking. The epoch allocator is advanced
    /// past `to_epoch`, so epochs minted locally afterwards can never
    /// collide with replayed ones (even when the log was written by an
    /// earlier process).
    pub fn apply_change(&mut self, change: &WarehouseChange, to_epoch: u64) -> Result<()> {
        if to_epoch <= self.epoch() {
            return Err(Error::invalid(format!(
                "replicated change targets epoch {to_epoch} but the follower is already at {}",
                self.epoch()
            )));
        }
        match change {
            WarehouseChange::Append(table) => {
                let (grown, appended) = self.append_rows(table)?;
                self.record_mutation_at(DeltaKind::Append, grown, appended, false, to_epoch);
            }
            WarehouseChange::Feedback {
                dimension,
                attribute,
                labels,
            } => {
                let touched =
                    self.install_feedback_dimension(dimension, attribute, labels.clone())?;
                let n = self.n_facts();
                self.record_mutation_at(DeltaKind::Feedback, touched, n..n, false, to_epoch);
            }
            WarehouseChange::Rewrite => {
                let all: BTreeSet<String> =
                    self.dimensions().iter().map(|d| d.name.clone()).collect();
                let n = self.n_facts();
                self.record_mutation_at(DeltaKind::Rewrite, all, n..n, true, to_epoch);
            }
        }
        obs::event_with(
            "warehouse.replicated_apply",
            &[("kind", &change.kind_name()), ("epoch", &to_epoch)],
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::LoadPlan;
    use crate::model::{DimensionDef, FactDef, StarSchema};
    use clinical_types::{DataType, FieldDef, Record, Schema};

    fn table(rows: &[(f64, &str)]) -> Table {
        let schema = Schema::new(vec![
            FieldDef::nullable("FBG", DataType::Float),
            FieldDef::nullable("FBG_Band", DataType::Text),
        ])
        .unwrap();
        let rows = rows
            .iter()
            .map(|&(v, b)| Record::new(vec![v.into(), b.into()]))
            .collect();
        Table::from_rows(schema, rows).unwrap()
    }

    fn pair() -> (Warehouse, Warehouse) {
        let star = StarSchema::new(
            FactDef::new("Facts", vec!["FBG"], vec![]),
            vec![DimensionDef::new("Bloods", vec!["FBG_Band"])],
        )
        .unwrap();
        let seed = table(&[(5.0, "very good"), (8.0, "Diabetic")]);
        let primary = Warehouse::load(&LoadPlan::from_star(star), &seed).unwrap();
        let follower = primary.clone();
        (primary, follower)
    }

    #[test]
    fn replayed_append_matches_the_primary() {
        let (mut primary, mut follower) = pair();
        let batch = table(&[(6.5, "preDiabetic")]);
        primary.append(&batch).unwrap();
        follower
            .apply_change(&WarehouseChange::Append(batch), primary.epoch())
            .unwrap();
        assert_eq!(follower.epoch(), primary.epoch());
        assert_eq!(follower.n_facts(), primary.n_facts());
        let cols = |wh: &Warehouse| -> Vec<String> {
            wh.attribute_column("FBG_Band")
                .unwrap()
                .iter()
                .map(|v| v.to_string())
                .collect()
        };
        assert_eq!(cols(&follower), cols(&primary));
        // The follower's delta chain mirrors the primary's.
        let from = primary.deltas_since(0);
        assert_eq!(from, None, "foreign epoch still rejected");
    }

    #[test]
    fn replayed_feedback_matches_and_keeps_delta_chain() {
        let (mut primary, mut follower) = pair();
        let before = primary.epoch();
        primary
            .add_feedback_dimension("Review", "Flag", vec!["a".into(), "b".into()])
            .unwrap();
        follower
            .apply_change(
                &WarehouseChange::Feedback {
                    dimension: "Review".into(),
                    attribute: "Flag".into(),
                    labels: vec!["a".into(), "b".into()],
                },
                primary.epoch(),
            )
            .unwrap();
        assert_eq!(follower.epoch(), primary.epoch());
        assert_eq!(
            follower.deltas_since(before).unwrap(),
            primary.deltas_since(before).unwrap(),
            "follower delta chain mirrors the primary's"
        );
    }

    #[test]
    fn stale_or_duplicate_epochs_are_rejected_atomically() {
        let (mut primary, mut follower) = pair();
        let batch = table(&[(6.5, "preDiabetic")]);
        primary.append(&batch).unwrap();
        follower
            .apply_change(&WarehouseChange::Append(batch.clone()), primary.epoch())
            .unwrap();
        let facts = follower.n_facts();
        let epoch = follower.epoch();
        // Replaying the same change again must not double-apply.
        let err = follower
            .apply_change(&WarehouseChange::Append(batch), primary.epoch())
            .unwrap_err();
        assert!(err.to_string().contains("already at"));
        assert_eq!(follower.n_facts(), facts);
        assert_eq!(follower.epoch(), epoch);
    }

    #[test]
    fn failed_apply_leaves_the_previous_epoch_queryable() {
        let (primary, mut follower) = pair();
        let epoch = follower.epoch();
        // Wrong label count: the structural half fails before any
        // epoch motion.
        let err = follower.apply_change(
            &WarehouseChange::Feedback {
                dimension: "Review".into(),
                attribute: "Flag".into(),
                labels: vec!["only one".into()],
            },
            primary.epoch() + 10,
        );
        assert!(err.is_err());
        assert_eq!(follower.epoch(), epoch, "no partially-applied epoch");
        assert_eq!(follower.dimensions().len(), 1);
    }

    #[test]
    fn rewrite_marker_invalidates_like_bump_epoch() {
        let (primary, mut follower) = pair();
        let before = follower.epoch();
        follower
            .apply_change(&WarehouseChange::Rewrite, primary.epoch() + 7)
            .unwrap();
        let deltas = follower.deltas_since(before).unwrap();
        assert_eq!(deltas.len(), 1);
        assert!(deltas[0].rewrote_existing);
    }

    #[test]
    fn locally_minted_epochs_stay_above_replayed_ones() {
        let (primary, mut follower) = pair();
        let high = primary.epoch() + 1000;
        follower
            .apply_change(&WarehouseChange::Rewrite, high)
            .unwrap();
        let mut other = primary.clone();
        other.bump_epoch();
        assert!(
            other.epoch() > high,
            "allocator must advance past observed epochs"
        );
    }
}
