//! User-feedback dimensions.
//!
//! §IV "Data Warehouse": *"Further dimensions are introduced to
//! capture user feedback. Information on aggregates and trends derived
//! by clinicians as well as clinical outcomes can be translated back
//! to the warehouse as dimensions to be used in future analysis."*
//!
//! A feedback dimension is a single-attribute dimension whose value
//! for each existing fact row is supplied by the clinician (directly,
//! or through a labelling function over the fact's current columns).
//! Once added it behaves exactly like a load-time dimension: it can be
//! grouped, sliced and drilled.

use crate::delta::DeltaKind;
use crate::loader::Warehouse;
use crate::model::DimensionDef;
use crate::storage::DimensionTable;
use clinical_types::{Error, Result, Value};
use std::collections::BTreeSet;

impl Warehouse {
    /// Append a feedback dimension named `dimension` with a single
    /// attribute `attribute`, assigning `labels[i]` to fact row `i`.
    pub fn add_feedback_dimension(
        &mut self,
        dimension: &str,
        attribute: &str,
        labels: Vec<Value>,
    ) -> Result<()> {
        let touched = self.install_feedback_dimension(dimension, attribute, labels)?;
        // The delta touches only the new dimension and appends no fact
        // rows: queries that never read it can keep their results.
        let n = self.n_facts();
        self.record_mutation(DeltaKind::Feedback, touched, n..n, false);
        obs::event_with(
            "warehouse.epoch_bump",
            &[
                ("cause", &"feedback_dimension"),
                ("epoch", &self.epoch()),
                ("dimension", &dimension),
            ],
        );
        Ok(())
    }

    /// The structural half of [`Self::add_feedback_dimension`]: build
    /// and attach the dimension but record no delta and advance no
    /// epoch (the caller mints the epoch — locally for direct calls,
    /// primary-assigned for oplog replay). Returns the touched
    /// dimension set for the delta record.
    pub(crate) fn install_feedback_dimension(
        &mut self,
        dimension: &str,
        attribute: &str,
        labels: Vec<Value>,
    ) -> Result<BTreeSet<String>> {
        if labels.len() != self.n_facts() {
            return Err(Error::invalid(format!(
                "feedback dimension `{dimension}` has {} labels for {} facts",
                labels.len(),
                self.n_facts()
            )));
        }
        let (star, dims, fact) = self.parts_mut();
        if star.dimensions.iter().any(|d| d.name == dimension) {
            return Err(Error::invalid(format!(
                "dimension `{dimension}` already exists"
            )));
        }
        if star.dimensions.iter().any(|d| d.has_attribute(attribute)) {
            return Err(Error::invalid(format!(
                "attribute `{attribute}` already owned by another dimension"
            )));
        }

        let mut table = DimensionTable::new(dimension, vec![attribute.to_string()]);
        let mut keys = Vec::with_capacity(labels.len());
        for label in labels {
            keys.push(table.intern(vec![label])?);
        }

        star.dimensions
            .push(DimensionDef::new(dimension, vec![attribute]));
        dims.push(table);
        fact.dim_names.push(dimension.to_string());
        fact.dim_keys.push(keys);
        fact.validate()?;
        Ok([dimension.to_string()].into_iter().collect())
    }

    /// Append a feedback dimension whose label for each fact row is
    /// computed from an existing attribute column by `labeller` —
    /// the "clinician reviews an aggregate and classifies the rows"
    /// workflow.
    pub fn add_derived_feedback_dimension(
        &mut self,
        dimension: &str,
        attribute: &str,
        source_attribute: &str,
        labeller: impl Fn(&Value) -> Value,
    ) -> Result<()> {
        let labels: Vec<Value> = self
            .attribute_column(source_attribute)?
            .into_iter()
            .map(labeller)
            .collect();
        self.add_feedback_dimension(dimension, attribute, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::LoadPlan;
    use crate::model::{DimensionDef, FactDef, StarSchema};
    use clinical_types::{DataType, FieldDef, Record, Schema, Table};

    fn warehouse() -> Warehouse {
        let star = StarSchema::new(
            FactDef::new("Facts", vec!["FBG"], vec![]),
            vec![DimensionDef::new("Bloods", vec!["FBG_Band"])],
        )
        .unwrap();
        let schema = Schema::new(vec![
            FieldDef::nullable("FBG", DataType::Float),
            FieldDef::nullable("FBG_Band", DataType::Text),
        ])
        .unwrap();
        let rows = vec![
            vec![5.0.into(), "very good".into()],
            vec![6.5.into(), "preDiabetic".into()],
            vec![8.0.into(), "Diabetic".into()],
        ];
        let table = Table::from_rows(schema, rows.into_iter().map(Record::new).collect()).unwrap();
        Warehouse::load(&LoadPlan::from_star(star), &table).unwrap()
    }

    #[test]
    fn feedback_dimension_becomes_queryable() {
        let mut wh = warehouse();
        wh.add_feedback_dimension(
            "Clinician Review",
            "RiskFlag",
            vec!["low".into(), "watch".into(), "act".into()],
        )
        .unwrap();
        assert_eq!(wh.dimensions().len(), 2);
        let flags: Vec<String> = wh
            .attribute_column("RiskFlag")
            .unwrap()
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(flags, vec!["low", "watch", "act"]);
        assert!(wh.star().dimension("Clinician Review").is_ok());
    }

    #[test]
    fn feedback_dimension_advances_the_epoch() {
        let mut wh = warehouse();
        let before = wh.epoch();
        wh.add_feedback_dimension("Review", "Flag", vec!["a".into(), "b".into(), "c".into()])
            .unwrap();
        assert!(wh.epoch() > before);
        // A rejected feedback dimension leaves the epoch alone.
        let stable = wh.epoch();
        assert!(wh
            .add_feedback_dimension("R", "F", vec!["x".into()])
            .is_err());
        assert_eq!(wh.epoch(), stable);
    }

    #[test]
    fn label_count_must_match_facts() {
        let mut wh = warehouse();
        let err = wh
            .add_feedback_dimension("R", "Flag", vec!["x".into()])
            .unwrap_err();
        assert!(err.to_string().contains("1 labels for 3 facts"));
    }

    #[test]
    fn duplicate_dimension_or_attribute_rejected() {
        let mut wh = warehouse();
        assert!(wh
            .add_feedback_dimension("Bloods", "Y", vec!["a".into(), "b".into(), "c".into()])
            .is_err());
        assert!(wh
            .add_feedback_dimension("New", "FBG_Band", vec!["a".into(), "b".into(), "c".into()])
            .is_err());
    }

    #[test]
    fn derived_feedback_from_existing_attribute() {
        let mut wh = warehouse();
        wh.add_derived_feedback_dimension("Review", "NeedsFollowUp", "FBG_Band", |band| {
            Value::Bool(band.as_str() == Some("Diabetic"))
        })
        .unwrap();
        let col: Vec<Option<bool>> = wh
            .attribute_column("NeedsFollowUp")
            .unwrap()
            .iter()
            .map(|v| v.as_bool())
            .collect();
        assert_eq!(col, vec![Some(false), Some(false), Some(true)]);
    }
}
