//! Loading the transformed attendance table into the star schema.

use crate::delta::{DeltaKind, DeltaLog, DeltaSummary, DELTA_LOG_CAPACITY};
use crate::model::{discri_model, StarSchema};
use crate::storage::{DimensionTable, FactTable, MeasureColumn};
use clinical_types::{Error, Result, Table, Value};
use std::collections::BTreeSet;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide data-epoch counter. Epochs are globally monotonic so a
/// cache keyed by `(fingerprint, epoch)` can never confuse the state of
/// one warehouse instance with another (e.g. after a reload swaps the
/// instance behind a service).
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

fn next_epoch() -> u64 {
    NEXT_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// Tell the epoch allocator that `epoch` exists somewhere in the
/// process (e.g. replayed from a durable oplog written by an earlier
/// process), so freshly minted epochs stay strictly above it.
pub(crate) fn observe_epoch(epoch: u64) {
    NEXT_EPOCH.fetch_max(epoch.saturating_add(1), Ordering::Relaxed);
}

/// Injected faults surface as ordinary invalid-input errors so every
/// caller's existing error path exercises the failure.
pub(crate) fn map_fault(e: fault::FaultError) -> Error {
    Error::invalid(e.to_string())
}

/// Fetch a source-row value by resolved column index without panicking
/// on a short row (hot-path no-panic discipline: a malformed source
/// table must surface as an error, never an index panic).
fn value_at(values: &[Value], idx: usize) -> Result<&Value> {
    values
        .get(idx)
        .ok_or_else(|| Error::invalid(format!("source row lacks resolved column index {idx}")))
}

/// A load plan: the star schema to populate, with every referenced
/// column resolved against the source table at load time.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// The target star schema.
    pub star: StarSchema,
}

impl LoadPlan {
    /// Plan for an arbitrary star schema.
    pub fn from_star(star: StarSchema) -> Self {
        LoadPlan { star }
    }

    /// The DiScRi trial's plan (the Fig. 3 model).
    pub fn discri_default() -> Self {
        LoadPlan {
            star: discri_model(),
        }
    }

    /// Check that every attribute, measure and degenerate column the
    /// star references exists in the source schema.
    pub fn validate_against(&self, schema: &clinical_types::Schema) -> Result<()> {
        let mut missing = Vec::new();
        for d in &self.star.dimensions {
            for a in &d.attributes {
                if !schema.contains(a) {
                    missing.push(a.clone());
                }
            }
        }
        for m in self
            .star
            .fact
            .measures
            .iter()
            .chain(&self.star.fact.degenerate)
        {
            if !schema.contains(m) {
                missing.push(m.clone());
            }
        }
        if missing.is_empty() {
            Ok(())
        } else {
            Err(Error::invalid(format!(
                "source table lacks columns required by the star schema: {}",
                missing.join(", ")
            )))
        }
    }
}

/// The loaded warehouse: dimension tables plus the fact table,
/// navigable by attribute or measure name.
#[derive(Debug, Clone)]
pub struct Warehouse {
    star: StarSchema,
    dims: Vec<DimensionTable>,
    fact: FactTable,
    /// Data epoch: advanced on every mutation (load, append, feedback
    /// dimension). Query results are only comparable within one epoch.
    epoch: u64,
    /// Bounded log of epoch transitions, one [`DeltaSummary`] per
    /// mutation, consumed by [`Warehouse::deltas_since`].
    deltas: DeltaLog,
    /// Sealed-segment view of the fact table (see [`crate::segments`]).
    /// Clones share the backend: compaction installed on one clone is
    /// invisible to the others, which keep their own segment lists.
    pub(crate) segments: crate::segments::SegmentSet,
}

impl Warehouse {
    /// Bulk-load `table` (the ETL pipeline's output) according to
    /// `plan`.
    pub fn load(plan: &LoadPlan, table: &Table) -> Result<Warehouse> {
        let mut span = obs::span("warehouse.load");
        span.record("rows", table.len());
        fault::point("warehouse.load").map_err(map_fault)?;
        let schema = table.schema();
        plan.validate_against(schema)?;
        let star = plan.star.clone();

        // Resolve source column indexes once.
        let dim_sources: Vec<Vec<usize>> = star
            .dimensions
            .iter()
            .map(|d| {
                d.attributes
                    .iter()
                    .map(|a| schema.index_of(a))
                    .collect::<Result<Vec<_>>>()
            })
            .collect::<Result<_>>()?;
        let measure_sources: Vec<usize> = star
            .fact
            .measures
            .iter()
            .map(|m| schema.index_of(m))
            .collect::<Result<_>>()?;
        let degenerate_sources: Vec<usize> = star
            .fact
            .degenerate
            .iter()
            .map(|m| schema.index_of(m))
            .collect::<Result<_>>()?;

        let mut dims: Vec<DimensionTable> = star
            .dimensions
            .iter()
            .map(|d| DimensionTable::new(d.name.clone(), d.attributes.clone()))
            .collect();
        let mut fact = FactTable::new(
            star.dimensions.iter().map(|d| d.name.clone()).collect(),
            star.fact.measures.clone(),
            star.fact.degenerate.clone(),
        );

        for row in table.rows() {
            let values = row.values();
            for ((dim, keys), sources) in dims
                .iter_mut()
                .zip(fact.dim_keys.iter_mut())
                .zip(&dim_sources)
            {
                let tuple: Vec<Value> = sources
                    .iter()
                    .map(|&i| value_at(values, i).cloned())
                    .collect::<Result<_>>()?;
                keys.push(dim.intern(tuple)?);
            }
            for (measure, &src) in fact.measures.iter_mut().zip(&measure_sources) {
                measure.push(value_at(values, src)?.as_f64());
            }
            for ((_, col), &src) in fact.degenerate.iter_mut().zip(&degenerate_sources) {
                col.push(value_at(values, src)?.clone());
            }
        }
        fact.validate()?;
        let epoch = next_epoch();
        span.record("epoch", epoch);
        Ok(Warehouse {
            star,
            dims,
            fact,
            epoch,
            deltas: DeltaLog::new(DELTA_LOG_CAPACITY),
            segments: crate::segments::SegmentSet::new(
                std::sync::Arc::new(segstore::MemoryBackend::new()),
                epoch,
                0,
            ),
        })
    }

    /// Incrementally append another transformed table (e.g. the next
    /// annual screening round). The table must carry every column the
    /// star references — including any feedback dimensions added since
    /// load (their labels must be supplied for the new rows too, or
    /// the append is rejected); new dimension tuples are interned,
    /// existing ones reuse their surrogate keys.
    pub fn append(&mut self, table: &Table) -> Result<usize> {
        let (grown, appended) = self.append_rows(table)?;
        self.record_mutation(DeltaKind::Append, grown, appended, false);
        obs::event_with(
            "warehouse.epoch_bump",
            &[
                ("cause", &"append"),
                ("epoch", &self.epoch),
                ("rows", &table.len()),
            ],
        );
        Ok(table.len())
    }

    /// The row-insertion half of [`Self::append`]: validate, intern
    /// and extend, but record no delta and advance no epoch. Returns
    /// the dimensions that grew and the appended fact-row range, which
    /// the caller folds into whichever delta record it is minting
    /// (a locally-numbered epoch for direct appends, a primary-minted
    /// one for oplog replay).
    pub(crate) fn append_rows(
        &mut self,
        table: &Table,
    ) -> Result<(BTreeSet<String>, Range<usize>)> {
        // The failpoint sits before the first mutation, so an injected
        // append failure leaves the previous epoch fully queryable.
        fault::point("warehouse.append").map_err(map_fault)?;
        let schema = table.schema();
        LoadPlan::from_star(self.star.clone()).validate_against(schema)?;
        let rows_before = self.fact.len();
        let dim_sizes_before: Vec<usize> = self.dims.iter().map(DimensionTable::len).collect();

        let dim_sources: Vec<Vec<usize>> = self
            .star
            .dimensions
            .iter()
            .map(|d| {
                d.attributes
                    .iter()
                    .map(|a| schema.index_of(a))
                    .collect::<Result<Vec<_>>>()
            })
            .collect::<Result<_>>()?;
        let measure_sources: Vec<usize> = self
            .star
            .fact
            .measures
            .iter()
            .map(|m| schema.index_of(m))
            .collect::<Result<_>>()?;
        let degenerate_sources: Vec<usize> = self
            .star
            .fact
            .degenerate
            .iter()
            .map(|m| schema.index_of(m))
            .collect::<Result<_>>()?;

        for row in table.rows() {
            let values = row.values();
            for ((dim, keys), sources) in self
                .dims
                .iter_mut()
                .zip(self.fact.dim_keys.iter_mut())
                .zip(&dim_sources)
            {
                let tuple: Vec<Value> = sources
                    .iter()
                    .map(|&i| value_at(values, i).cloned())
                    .collect::<Result<_>>()?;
                keys.push(dim.intern(tuple)?);
            }
            for (measure, &src) in self.fact.measures.iter_mut().zip(&measure_sources) {
                measure.push(value_at(values, src)?.as_f64());
            }
            for ((_, col), &src) in self.fact.degenerate.iter_mut().zip(&degenerate_sources) {
                col.push(value_at(values, src)?.clone());
            }
        }
        self.fact.validate()?;
        // Dimensions count as touched only when the batch interned new
        // tuples into them; folding the appended rows covers the rest.
        let grown: BTreeSet<String> = self
            .dims
            .iter()
            .zip(&dim_sizes_before)
            .filter(|(d, &before)| d.len() > before)
            .map(|(d, _)| d.name.clone())
            .collect();
        Ok((grown, rows_before..self.fact.len()))
    }

    /// The warehouse's data epoch. Strictly increases across mutations
    /// of this instance and is unique across instances in the process,
    /// so `(query fingerprint, epoch)` identifies a result.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The chain of [`DeltaSummary`]s from `epoch` to the current
    /// epoch, oldest first. `Some(vec![])` when `epoch` is current;
    /// `None` when `epoch` is unknown to this instance (another
    /// warehouse, or aged out of the bounded log) — callers must then
    /// assume everything changed.
    ///
    /// ```
    /// use warehouse::{LoadPlan, StarSchema, FactDef, DimensionDef, Warehouse};
    /// use clinical_types::{DataType, FieldDef, Record, Schema, Table};
    ///
    /// let star = StarSchema::new(
    ///     FactDef::new("Facts", vec!["FBG"], vec![]),
    ///     vec![DimensionDef::new("Bloods", vec!["FBG_Band"])],
    /// )?;
    /// let schema = Schema::new(vec![
    ///     FieldDef::nullable("FBG", DataType::Float),
    ///     FieldDef::nullable("FBG_Band", DataType::Text),
    /// ])?;
    /// let table = Table::from_rows(
    ///     schema,
    ///     vec![Record::new(vec![5.0.into(), "very good".into()])],
    /// )?;
    /// let mut wh = Warehouse::load(&LoadPlan::from_star(star), &table)?;
    /// let loaded = wh.epoch();
    /// wh.append(&table)?;
    /// let deltas = wh.deltas_since(loaded).expect("epoch is retained");
    /// assert_eq!(deltas.len(), 1);
    /// assert_eq!(deltas[0].appended, 1..2);
    /// assert!(deltas[0].is_append_only());
    /// # Ok::<(), clinical_types::Error>(())
    /// ```
    pub fn deltas_since(&self, epoch: u64) -> Option<Vec<DeltaSummary>> {
        self.deltas.since(epoch, self.epoch)
    }

    /// The star schema.
    pub fn star(&self) -> &StarSchema {
        &self.star
    }

    /// The fact table.
    pub fn fact(&self) -> &FactTable {
        &self.fact
    }

    /// Dimension table by name.
    pub fn dimension(&self, name: &str) -> Result<&DimensionTable> {
        self.dims
            .iter()
            .find(|d| d.name == name)
            .ok_or_else(|| Error::invalid(format!("unknown dimension `{name}`")))
    }

    /// All dimension tables.
    pub fn dimensions(&self) -> &[DimensionTable] {
        &self.dims
    }

    /// Number of fact rows.
    pub fn n_facts(&self) -> usize {
        self.fact.len()
    }

    /// Locate an attribute: `(dimension index, attribute index)`.
    pub fn find_attribute(&self, attribute: &str) -> Result<(usize, usize)> {
        for (di, d) in self.dims.iter().enumerate() {
            if let Some(ai) = d.attribute_index(attribute) {
                return Ok((di, ai));
            }
        }
        Err(Error::invalid(format!(
            "no dimension owns attribute `{attribute}`"
        )))
    }

    /// Materialise the per-fact values of a dimension attribute: the
    /// resolved (key → tuple) column, length [`Self::n_facts`]. This is
    /// the access path the OLAP engine groups on.
    pub fn attribute_column(&self, attribute: &str) -> Result<Vec<&Value>> {
        self.attribute_column_range(attribute, 0..self.n_facts())
    }

    /// [`Self::attribute_column`] restricted to the fact rows in
    /// `rows` — the access path for incremental cube maintenance,
    /// where only a delta's appended range needs resolving. Cost is
    /// O(`rows.len()`), not O(total facts).
    pub fn attribute_column_range(
        &self,
        attribute: &str,
        rows: Range<usize>,
    ) -> Result<Vec<&Value>> {
        let (di, ai) = self.find_attribute(attribute)?;
        let dim = self
            .dims
            .get(di)
            .ok_or_else(|| Error::invalid(format!("dangling dimension index {di}")))?;
        let keys = self.fact.keys_of(&dim.name)?;
        let slice = keys.get(rows.clone()).ok_or_else(|| {
            Error::invalid(format!(
                "row range {}..{} exceeds {} facts",
                rows.start,
                rows.end,
                keys.len()
            ))
        })?;
        let mut out = Vec::with_capacity(slice.len());
        for &k in slice {
            let value = dim
                .tuple(k)
                .and_then(|tuple| tuple.get(ai))
                .ok_or_else(|| Error::invalid(format!("dangling key {k} in `{}`", dim.name)))?;
            out.push(value);
        }
        Ok(out)
    }

    /// Measure column by name.
    pub fn measure(&self, name: &str) -> Result<&MeasureColumn> {
        self.fact.measure(name)
    }

    /// Degenerate column by name.
    pub fn degenerate_column(&self, name: &str) -> Result<&[Value]> {
        self.fact.degenerate_column(name)
    }

    /// Conservatively advance the data epoch, recording a
    /// [`DeltaKind::Rewrite`] delta that touches every dimension: no
    /// cached result derived from an earlier epoch can be reused or
    /// patched. Use when data changed through a path the delta log
    /// cannot describe precisely.
    pub fn bump_epoch(&mut self) {
        let all: BTreeSet<String> = self.dims.iter().map(|d| d.name.clone()).collect();
        self.record_mutation(
            DeltaKind::Rewrite,
            all,
            self.fact.len()..self.fact.len(),
            true,
        );
        obs::event_with(
            "warehouse.epoch_bump",
            &[("cause", &"manual"), ("epoch", &self.epoch)],
        );
    }

    /// Advance the epoch and log the transition (mutation paths).
    pub(crate) fn record_mutation(
        &mut self,
        kind: DeltaKind,
        dimensions: BTreeSet<String>,
        appended: Range<usize>,
        rewrote_existing: bool,
    ) {
        let to_epoch = next_epoch();
        self.record_mutation_at(kind, dimensions, appended, rewrote_existing, to_epoch);
    }

    /// [`Self::record_mutation`] with the target epoch supplied by the
    /// caller instead of minted locally — the replication path, where
    /// a follower must land on exactly the epoch the primary assigned
    /// to the change. The allocator is advanced past `to_epoch` so
    /// locally minted epochs never collide with replayed ones.
    pub(crate) fn record_mutation_at(
        &mut self,
        kind: DeltaKind,
        dimensions: BTreeSet<String>,
        appended: Range<usize>,
        rewrote_existing: bool,
        to_epoch: u64,
    ) {
        observe_epoch(to_epoch);
        let from_epoch = self.epoch;
        self.epoch = to_epoch;
        // Graceful degradation: when recording the precise delta is
        // made to fail, fall back to a conservative full-rewrite
        // summary. Caches then invalidate instead of patching —
        // slower, never wrong.
        let summary = match fault::point("warehouse.delta_append") {
            Ok(()) => DeltaSummary {
                from_epoch,
                to_epoch: self.epoch,
                kind,
                dimensions,
                appended,
                rewrote_existing,
            },
            Err(e) => {
                obs::event_with(
                    "warehouse.delta_degraded",
                    &[("fault", &e.to_string()), ("epoch", &self.epoch)],
                );
                DeltaSummary {
                    from_epoch,
                    to_epoch: self.epoch,
                    kind: DeltaKind::Rewrite,
                    dimensions: self.dims.iter().map(|d| d.name.clone()).collect(),
                    appended: 0..self.fact.len(),
                    rewrote_existing: true,
                }
            }
        };
        self.deltas.record(summary);
    }

    /// Mutable access for the feedback module.
    pub(crate) fn parts_mut(
        &mut self,
    ) -> (&mut StarSchema, &mut Vec<DimensionTable>, &mut FactTable) {
        (&mut self.star, &mut self.dims, &mut self.fact)
    }

    /// Total number of distinct dimension tuples across all dimensions
    /// (a compression indicator: facts × attrs vs this).
    pub fn total_dimension_tuples(&self) -> usize {
        self.dims.iter().map(DimensionTable::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DimensionDef, FactDef};
    use clinical_types::{DataType, FieldDef, Record, Schema};

    fn mini_star() -> StarSchema {
        StarSchema::new(
            FactDef::new("Facts", vec!["FBG"], vec!["PatientId"]),
            vec![
                DimensionDef::new("Personal", vec!["Gender", "Age_Band"]),
                DimensionDef::new("Bloods", vec!["FBG_Band"]),
            ],
        )
        .unwrap()
    }

    fn mini_table() -> Table {
        let schema = Schema::new(vec![
            FieldDef::required("PatientId", DataType::Int),
            FieldDef::nullable("Gender", DataType::Text),
            FieldDef::nullable("Age_Band", DataType::Text),
            FieldDef::nullable("FBG", DataType::Float),
            FieldDef::nullable("FBG_Band", DataType::Text),
        ])
        .unwrap();
        let rows = vec![
            vec![
                1.into(),
                "F".into(),
                "60-80".into(),
                5.2.into(),
                "very good".into(),
            ],
            vec![
                2.into(),
                "M".into(),
                "60-80".into(),
                7.4.into(),
                "Diabetic".into(),
            ],
            vec![
                3.into(),
                "F".into(),
                "60-80".into(),
                Value::Null,
                Value::Null,
            ],
            vec![
                1.into(),
                "F".into(),
                "60-80".into(),
                6.5.into(),
                "preDiabetic".into(),
            ],
        ];
        Table::from_rows(schema, rows.into_iter().map(Record::new).collect()).unwrap()
    }

    #[test]
    fn load_builds_dictionary_encoded_dimensions() {
        let wh = Warehouse::load(&LoadPlan::from_star(mini_star()), &mini_table()).unwrap();
        assert_eq!(wh.n_facts(), 4);
        // Personal dimension: (F,60-80) and (M,60-80) → 2 tuples.
        assert_eq!(wh.dimension("Personal").unwrap().len(), 2);
        // Bloods: very good, Diabetic, NULL, preDiabetic → 4 tuples.
        assert_eq!(wh.dimension("Bloods").unwrap().len(), 4);
    }

    #[test]
    fn attribute_column_resolves_keys() {
        let wh = Warehouse::load(&LoadPlan::from_star(mini_star()), &mini_table()).unwrap();
        let genders: Vec<String> = wh
            .attribute_column("Gender")
            .unwrap()
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(genders, vec!["F", "M", "F", "F"]);
        assert!(wh.attribute_column("FBG").is_err()); // a measure, not an attribute
    }

    #[test]
    fn measures_keep_null_mask() {
        let wh = Warehouse::load(&LoadPlan::from_star(mini_star()), &mini_table()).unwrap();
        let fbg = wh.measure("FBG").unwrap();
        assert_eq!(fbg.len(), 4);
        assert_eq!(fbg.count_valid(), 3);
        assert_eq!(fbg.get(2), None);
    }

    #[test]
    fn degenerate_columns_survive() {
        let wh = Warehouse::load(&LoadPlan::from_star(mini_star()), &mini_table()).unwrap();
        let pids = wh.degenerate_column("PatientId").unwrap();
        assert_eq!(pids[3], Value::Int(1));
    }

    #[test]
    fn plan_validation_reports_missing_columns() {
        let schema = Schema::new(vec![FieldDef::required("PatientId", DataType::Int)]).unwrap();
        let err = LoadPlan::from_star(mini_star())
            .validate_against(&schema)
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("Gender"));
        assert!(msg.contains("FBG"));
    }

    #[test]
    fn append_reuses_surrogate_keys_and_extends_facts() {
        let plan = LoadPlan::from_star(mini_star());
        let table = mini_table();
        let mut wh = Warehouse::load(&plan, &table).unwrap();
        let personal_before = wh.dimension("Personal").unwrap().len();
        let appended = wh.append(&table).unwrap();
        assert_eq!(appended, 4);
        assert_eq!(wh.n_facts(), 8);
        // Identical tuples reuse keys: the dimension did not grow.
        assert_eq!(wh.dimension("Personal").unwrap().len(), personal_before);
        // Columns stay aligned.
        assert_eq!(wh.attribute_column("Gender").unwrap().len(), 8);
        assert_eq!(wh.measure("FBG").unwrap().len(), 8);
        assert_eq!(wh.degenerate_column("PatientId").unwrap().len(), 8);
    }

    #[test]
    fn append_rejects_missing_columns() {
        let mut wh = Warehouse::load(&LoadPlan::from_star(mini_star()), &mini_table()).unwrap();
        let partial = mini_table().project(&["PatientId", "Gender"]).unwrap();
        let before = wh.n_facts();
        assert!(wh.append(&partial).is_err());
        assert_eq!(wh.n_facts(), before, "failed append must not mutate");
    }

    #[test]
    fn epochs_are_unique_and_advance_on_mutation() {
        let plan = LoadPlan::from_star(mini_star());
        let table = mini_table();
        let mut wh = Warehouse::load(&plan, &table).unwrap();
        let loaded = wh.epoch();
        let other = Warehouse::load(&plan, &table).unwrap();
        assert_ne!(loaded, other.epoch(), "instances share an epoch");
        wh.append(&table).unwrap();
        assert!(wh.epoch() > loaded, "append must advance the epoch");
        assert!(
            wh.epoch() > other.epoch(),
            "epochs must stay globally monotonic"
        );
        // A failed append leaves the epoch alone.
        let before = wh.epoch();
        let partial = mini_table().project(&["PatientId", "Gender"]).unwrap();
        assert!(wh.append(&partial).is_err());
        assert_eq!(wh.epoch(), before);
    }

    #[test]
    fn append_records_an_append_only_delta() {
        let plan = LoadPlan::from_star(mini_star());
        let table = mini_table();
        let mut wh = Warehouse::load(&plan, &table).unwrap();
        let loaded = wh.epoch();
        assert_eq!(wh.deltas_since(loaded), Some(vec![]), "no mutations yet");

        wh.append(&table).unwrap();
        let deltas = wh.deltas_since(loaded).unwrap();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].kind, crate::delta::DeltaKind::Append);
        assert_eq!(deltas[0].appended, 4..8);
        assert!(deltas[0].is_append_only());
        // Identical tuples reuse surrogate keys: no dimension grew.
        assert!(deltas[0].dimensions.is_empty());

        wh.add_feedback_dimension("Review", "Flag", (0..8).map(Value::Int).collect())
            .unwrap();
        let chain = wh.deltas_since(loaded).unwrap();
        assert_eq!(chain.len(), 2);
        let change = crate::delta::ChangeSet::fold(&chain);
        assert_eq!(change.appended, 4..8);
        assert_eq!(
            change.structural_dimensions.iter().collect::<Vec<_>>(),
            vec!["Review"]
        );
        assert!(!change.rewrote_existing);
    }

    #[test]
    fn bump_epoch_records_a_conservative_rewrite() {
        let mut wh = Warehouse::load(&LoadPlan::from_star(mini_star()), &mini_table()).unwrap();
        let before = wh.epoch();
        wh.bump_epoch();
        let deltas = wh.deltas_since(before).unwrap();
        assert_eq!(deltas.len(), 1);
        assert!(deltas[0].rewrote_existing);
        assert!(deltas[0].dimensions.contains("Personal"));
        assert!(deltas[0].dimensions.contains("Bloods"));
    }

    #[test]
    fn deltas_since_rejects_foreign_epochs() {
        let plan = LoadPlan::from_star(mini_star());
        let table = mini_table();
        let wh = Warehouse::load(&plan, &table).unwrap();
        let other = Warehouse::load(&plan, &table).unwrap();
        assert_eq!(wh.deltas_since(other.epoch()), None);
    }

    #[test]
    fn attribute_column_range_matches_the_full_column() {
        let mut wh = Warehouse::load(&LoadPlan::from_star(mini_star()), &mini_table()).unwrap();
        wh.append(&mini_table()).unwrap();
        let full: Vec<String> = wh
            .attribute_column("Gender")
            .unwrap()
            .iter()
            .map(|v| v.to_string())
            .collect();
        let tail: Vec<String> = wh
            .attribute_column_range("Gender", 4..8)
            .unwrap()
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(tail, full[4..]);
        assert!(wh.attribute_column_range("Gender", 4..9).is_err());
    }

    #[test]
    fn discri_cohort_loads_through_pipeline() {
        let cohort = discri::generate(&discri::CohortConfig::small(31));
        let (table, _) = etl::TransformPipeline::discri_default()
            .run(&cohort.attendances)
            .unwrap();
        let wh = Warehouse::load(&LoadPlan::discri_default(), &table).unwrap();
        assert_eq!(wh.n_facts(), table.len());
        assert_eq!(wh.dimensions().len(), 8);
        // Dictionary encoding must compress: far fewer tuples than
        // facts × dimensions.
        assert!(wh.total_dimension_tuples() < wh.n_facts() * wh.dimensions().len());
        // Fig. 5 inputs are reachable.
        assert!(wh.attribute_column("Age_SubGroup").is_ok());
        assert!(wh.attribute_column("Gender").is_ok());
        assert!(wh.attribute_column("DiabetesStatus").is_ok());
        assert!(wh.measure("FBG").is_ok());
    }
}
