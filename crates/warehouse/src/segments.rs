//! Segmented storage integration: the compactor.
//!
//! The fact table keeps a second physical representation in a
//! [`segstore`] backend: sealed, immutable, sorted columnar segments
//! mirroring the fact rows below a **watermark**, while rows at or
//! above the watermark (the *mutable tail*) are served from the
//! in-memory fact table. The cube engine scans sealed segments with
//! zone-map pruning and falls back to the tail for the rest.
//!
//! Compaction is a two-phase fold of the delta log into fresh
//! segments, designed so a concurrent reader holding a clone of the
//! warehouse (or the serve layer holding a read lock) never observes a
//! half-compacted state:
//!
//! 1. **Plan** ([`Warehouse::plan_compaction`], `&self`): decide the
//!    mode from [`Warehouse::deltas_since`] — append-only chains seal
//!    just the tail, anything structural (rewrites, feedback
//!    dimensions, an aged-out delta log) rebuilds from row zero — then
//!    sort, cut and seal the new segments into the backend. Sealed
//!    segments are invisible until installed.
//! 2. **Install** ([`Warehouse::install_compaction`], `&mut self`):
//!    atomically swap the live segment list to the plan's, or refuse
//!    (`Ok(false)`) when the warehouse mutated since planning — the
//!    orphaned segments are reclaimed by [`Warehouse::vacuum_segments`].
//!
//! Failpoints `warehouse.compact_build` and
//! `warehouse.compact_install` cover the two phases; a crash in either
//! leaves the previously sealed segments and the live warehouse
//! untouched.

use crate::delta::ChangeSet;
use crate::loader::{map_fault, Warehouse};
use clinical_types::{Error, Result, Value};
use segstore::{ColumnSet, Segment, SegmentBackend, SegmentMeta};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The live segmented view of one warehouse: which backend holds the
/// sealed segments, which of them are current, and how far the sealed
/// rows reach into the fact table.
#[derive(Debug, Clone)]
pub struct SegmentSet {
    backend: Arc<dyn SegmentBackend>,
    metas: Vec<Arc<SegmentMeta>>,
    watermark: usize,
    compacted_epoch: u64,
    next_id: u64,
}

impl SegmentSet {
    pub(crate) fn new(backend: Arc<dyn SegmentBackend>, epoch: u64, next_id: u64) -> SegmentSet {
        SegmentSet {
            backend,
            metas: Vec::new(),
            watermark: 0,
            compacted_epoch: epoch,
            next_id,
        }
    }

    /// The backend sealed segments live in.
    pub fn backend(&self) -> &Arc<dyn SegmentBackend> {
        &self.backend
    }

    /// Metadata of the live sealed segments, in seal order (ascending
    /// fact-row ranges).
    pub fn metas(&self) -> &[Arc<SegmentMeta>] {
        &self.metas
    }

    /// Fact rows `0..watermark` are mirrored by sealed segments; rows
    /// at or above the watermark form the mutable tail.
    pub fn watermark(&self) -> usize {
        self.watermark
    }

    /// The warehouse epoch the sealed segments reflect.
    pub fn compacted_epoch(&self) -> u64 {
        self.compacted_epoch
    }

    /// Number of live sealed segments.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// True when no segment is sealed.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }
}

/// Tuning knobs for one compaction run.
#[derive(Debug, Clone)]
pub struct CompactionConfig {
    /// Rows per sealed segment (the last segment of a run may be
    /// smaller).
    pub target_rows_per_segment: usize,
    /// Sort rows by their dimension-key tuple before cutting, so each
    /// segment covers a narrow key range and zone maps prune sharply.
    /// Disable to seal in arrival order (bench ablation).
    pub sort: bool,
}

impl Default for CompactionConfig {
    fn default() -> Self {
        CompactionConfig {
            target_rows_per_segment: 4096,
            sort: true,
        }
    }
}

/// The outcome of the build phase: the segment list to install. The
/// new segments are already sealed in the backend but not yet visible
/// to queries.
#[derive(Debug, Clone)]
pub struct CompactionPlan {
    epoch: u64,
    metas: Vec<Arc<SegmentMeta>>,
    watermark: usize,
    new_ids: Vec<u64>,
    next_id: u64,
}

impl CompactionPlan {
    /// The warehouse epoch the plan was built against; installation
    /// refuses if the warehouse has moved past it.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Ids of the segments this run sealed.
    pub fn new_ids(&self) -> &[u64] {
        &self.new_ids
    }

    /// The watermark installation will advance to.
    pub fn watermark(&self) -> usize {
        self.watermark
    }
}

impl Warehouse {
    /// The live segmented view.
    pub fn segments(&self) -> &SegmentSet {
        &self.segments
    }

    /// Point sealed-segment storage at `backend`, discarding the
    /// current segment list (the next compaction rebuilds from row
    /// zero). Ids already present in the backend are skipped over so
    /// new seals never collide with pre-existing files.
    pub fn set_segment_backend(&mut self, backend: Arc<dyn SegmentBackend>) -> Result<()> {
        let next_id = backend.list()?.last().map_or(0, |last| last + 1);
        self.segments = SegmentSet::new(backend, self.epoch(), next_id);
        Ok(())
    }

    /// Build-phase of compaction: fold the delta log since the last
    /// compaction into fresh sealed segments. Returns `Ok(None)` when
    /// the sealed view is already current. Read-only with respect to
    /// the warehouse — concurrent queries proceed untouched.
    pub fn plan_compaction(&self, config: &CompactionConfig) -> Result<Option<CompactionPlan>> {
        let mut span = obs::span("warehouse.compact_plan");
        let seg = &self.segments;
        let n = self.n_facts();
        // Decide incremental vs full rebuild from the delta chain.
        let (start, carried, mode) = match self.deltas_since(seg.compacted_epoch) {
            Some(chain) => {
                let change = ChangeSet::fold(&chain);
                if change.rewrote_existing || !change.structural_dimensions.is_empty() {
                    // Rewrites invalidate sealed rows; a feedback
                    // dimension adds a key column sealed segments lack.
                    (0, Vec::new(), "rebuild")
                } else {
                    (seg.watermark, seg.metas.clone(), "incremental")
                }
            }
            None => {
                // The compaction epoch aged out of the bounded delta
                // log: provenance of the sealed rows is unknowable, so
                // rebuild rather than trust the watermark.
                obs::event_with(
                    "warehouse.compact_aged_out",
                    &[
                        ("compacted_epoch", &seg.compacted_epoch),
                        ("epoch", &self.epoch()),
                    ],
                );
                (0, Vec::new(), "rebuild")
            }
        };
        span.record("mode", mode);
        span.record("rows", n - start);
        if start == n && seg.compacted_epoch != self.epoch() {
            // Structure-only mutations (e.g. an empty append) move the
            // epoch without adding rows; refresh the epoch stamp.
            return Ok(Some(CompactionPlan {
                epoch: self.epoch(),
                metas: carried,
                watermark: n,
                new_ids: Vec::new(),
                next_id: seg.next_id,
            }));
        }
        if start == n {
            return Ok(None); // already current
        }
        fault::point("warehouse.compact_build").map_err(map_fault)?;

        // Sort the rows to seal by their dimension-key tuple so each
        // segment covers a narrow key range (sharp zone maps), then cut
        // into fixed-size chunks.
        let fact = self.fact();
        let mut order: Vec<usize> = (start..n).collect();
        if config.sort {
            order.sort_by(|&a, &b| {
                fact.dim_keys
                    .iter()
                    .map(|col| col[a])
                    .cmp(fact.dim_keys.iter().map(|col| col[b]))
            });
        }
        let target = config.target_rows_per_segment.max(1);
        let mut metas = carried;
        let mut new_ids = Vec::new();
        // Start past anything already sealed in the backend — a plan
        // whose install failed leaves orphaned ids behind (reclaimed by
        // vacuum later); retries must never collide with them.
        let mut next_id = seg
            .next_id
            .max(seg.backend.list()?.last().map_or(0, |last| last + 1));
        for chunk in order.chunks(target) {
            let keys: Vec<(String, Vec<u32>)> = fact
                .dim_names
                .iter()
                .zip(&fact.dim_keys)
                .map(|(name, col)| (name.clone(), chunk.iter().map(|&r| col[r]).collect()))
                .collect();
            let measures: Vec<(String, Vec<f64>, Vec<bool>)> = fact
                .measures
                .iter()
                .map(|m| {
                    (
                        m.name.clone(),
                        chunk.iter().map(|&r| m.values[r]).collect(),
                        chunk.iter().map(|&r| m.valid[r]).collect(),
                    )
                })
                .collect();
            let degenerates: Vec<(String, Vec<Value>)> = fact
                .degenerate
                .iter()
                .map(|(name, col)| {
                    (
                        name.clone(),
                        chunk.iter().map(|&r| col[r].clone()).collect(),
                    )
                })
                .collect();
            let segment = Segment::assemble(next_id, keys, measures, degenerates)?;
            let meta = Arc::new(segment.meta.clone());
            seg.backend.put(segment)?;
            metas.push(meta);
            new_ids.push(next_id);
            next_id += 1;
        }
        span.record("sealed", new_ids.len());
        Ok(Some(CompactionPlan {
            epoch: self.epoch(),
            metas,
            watermark: n,
            new_ids,
            next_id,
        }))
    }

    /// Install-phase of compaction: atomically publish `plan`'s segment
    /// list. Returns `Ok(false)` — leaving the live view untouched —
    /// when the warehouse mutated after the plan was built; the plan's
    /// orphaned segments stay in the backend until
    /// [`Warehouse::vacuum_segments`].
    pub fn install_compaction(&mut self, plan: CompactionPlan) -> Result<bool> {
        fault::point("warehouse.compact_install").map_err(map_fault)?;
        if plan.epoch != self.epoch() {
            obs::event_with(
                "warehouse.compact_stale",
                &[("plan_epoch", &plan.epoch), ("epoch", &self.epoch())],
            );
            return Ok(false);
        }
        obs::event_with(
            "warehouse.compact_install",
            &[
                ("epoch", &plan.epoch),
                ("segments", &plan.metas.len()),
                ("sealed", &plan.new_ids.len()),
                ("watermark", &plan.watermark),
            ],
        );
        self.segments.metas = plan.metas;
        self.segments.watermark = plan.watermark;
        self.segments.compacted_epoch = plan.epoch;
        self.segments.next_id = plan.next_id;
        Ok(true)
    }

    /// Plan and install in one step with the default configuration.
    /// `Ok(true)` when the sealed view changed.
    pub fn compact(&mut self) -> Result<bool> {
        self.compact_with(&CompactionConfig::default())
    }

    /// Plan and install in one step. `Ok(true)` when the sealed view
    /// changed.
    pub fn compact_with(&mut self, config: &CompactionConfig) -> Result<bool> {
        match self.plan_compaction(config)? {
            Some(plan) => self.install_compaction(plan),
            None => Ok(false),
        }
    }

    /// Remove backend segments no longer referenced by the live view
    /// (replaced by compaction, or orphaned by a stale install).
    /// Returns how many were reclaimed.
    pub fn vacuum_segments(&self) -> Result<usize> {
        let live: BTreeSet<u64> = self.segments.metas.iter().map(|m| m.id).collect();
        let mut removed = 0;
        for id in self.segments.backend.list()? {
            if !live.contains(&id) {
                self.segments.backend.remove(id)?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Fetch a live sealed segment by id, materialising at least
    /// `columns` (scan path of the cube engine).
    pub fn fetch_segment(&self, id: u64, columns: &ColumnSet) -> Result<Arc<Segment>> {
        if !self.segments.metas.iter().any(|m| m.id == id) {
            return Err(Error::invalid(format!("segment {id} is not live")));
        }
        self.segments.backend.fetch(id, columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::LoadPlan;
    use crate::model::{DimensionDef, FactDef, StarSchema};
    use clinical_types::{DataType, FieldDef, Record, Schema, Table};
    use segstore::DiskBackend;

    fn mini_star() -> StarSchema {
        StarSchema::new(
            FactDef::new("Facts", vec!["FBG"], vec!["PatientId"]),
            vec![
                DimensionDef::new("Personal", vec!["Gender"]),
                DimensionDef::new("Bloods", vec!["FBG_Band"]),
            ],
        )
        .unwrap()
    }

    fn table(rows: &[(i64, &str, f64, &str)]) -> Table {
        let schema = Schema::new(vec![
            FieldDef::required("PatientId", DataType::Int),
            FieldDef::nullable("Gender", DataType::Text),
            FieldDef::nullable("FBG", DataType::Float),
            FieldDef::nullable("FBG_Band", DataType::Text),
        ])
        .unwrap();
        let records = rows
            .iter()
            .map(|(id, g, fbg, band)| {
                Record::new(vec![
                    (*id).into(),
                    (*g).into(),
                    (*fbg).into(),
                    (*band).into(),
                ])
            })
            .collect();
        Table::from_rows(schema, records).unwrap()
    }

    fn sample() -> Warehouse {
        Warehouse::load(
            &LoadPlan::from_star(mini_star()),
            &table(&[
                (1, "F", 5.25, "very good"),
                (2, "M", 7.5, "Diabetic"),
                (3, "F", 6.5, "preDiabetic"),
                (4, "M", 5.0, "very good"),
            ]),
        )
        .unwrap()
    }

    #[test]
    fn fresh_warehouse_has_an_empty_current_segment_view() {
        let wh = sample();
        assert!(wh.segments().is_empty());
        assert_eq!(wh.segments().watermark(), 0);
        assert_eq!(wh.segments().compacted_epoch(), wh.epoch());
    }

    #[test]
    fn compact_seals_everything_then_only_the_tail() {
        let mut wh = sample();
        assert!(wh.compact().unwrap());
        assert_eq!(wh.segments().watermark(), 4);
        assert_eq!(wh.segments().len(), 1);
        let first_id = wh.segments().metas()[0].id;
        assert!(!wh.compact().unwrap(), "already current");

        wh.append(&table(&[(5, "F", 8.0, "Diabetic")])).unwrap();
        assert!(wh.compact().unwrap());
        assert_eq!(wh.segments().watermark(), 5);
        assert_eq!(wh.segments().len(), 2, "incremental: old segment kept");
        assert_eq!(wh.segments().metas()[0].id, first_id);
        let total: u64 = wh.segments().metas().iter().map(|m| m.rows).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn sealed_segments_mirror_fact_rows_modulo_sort() {
        let mut wh = sample();
        wh.compact_with(&CompactionConfig {
            target_rows_per_segment: 2,
            sort: true,
        })
        .unwrap();
        assert_eq!(wh.segments().len(), 2);
        let mut fbg: Vec<f64> = Vec::new();
        for meta in wh.segments().metas() {
            let seg = wh.fetch_segment(meta.id, &ColumnSet::all()).unwrap();
            let (values, valid) = seg.measure_column("FBG").unwrap();
            assert!(valid.iter().all(|&v| v));
            fbg.extend_from_slice(values);
        }
        fbg.sort_by(f64::total_cmp);
        assert_eq!(fbg, vec![5.0, 5.25, 6.5, 7.5]);
    }

    #[test]
    fn feedback_dimension_forces_a_rebuild() {
        let mut wh = sample();
        wh.compact().unwrap();
        let old_id = wh.segments().metas()[0].id;
        wh.add_feedback_dimension("Review", "Flag", (0..4).map(Value::Int).collect())
            .unwrap();
        assert!(wh.compact().unwrap());
        assert_eq!(wh.segments().len(), 1);
        let meta = &wh.segments().metas()[0];
        assert_ne!(meta.id, old_id);
        assert!(
            meta.key_zone("Review").is_some(),
            "rebuilt segments carry the feedback dimension"
        );
        // The replaced segment is reclaimable.
        assert_eq!(wh.vacuum_segments().unwrap(), 1);
        assert_eq!(wh.segments().backend().list().unwrap().len(), 1);
    }

    #[test]
    fn stale_plans_are_refused_and_vacuumable() {
        let mut wh = sample();
        let plan = wh
            .plan_compaction(&CompactionConfig::default())
            .unwrap()
            .unwrap();
        wh.append(&table(&[(9, "F", 4.75, "very good")])).unwrap();
        assert!(!wh.install_compaction(plan).unwrap());
        assert!(wh.segments().is_empty(), "live view untouched");
        assert_eq!(wh.vacuum_segments().unwrap(), 1, "orphan reclaimed");
    }

    #[test]
    fn bump_epoch_triggers_a_full_rebuild() {
        let mut wh = sample();
        wh.compact().unwrap();
        wh.bump_epoch();
        assert!(wh.compact().unwrap());
        assert_eq!(wh.segments().watermark(), 4);
        assert_eq!(wh.segments().len(), 1);
    }

    #[test]
    fn disk_backend_round_trips_through_compaction() {
        let dir = std::env::temp_dir().join(format!("wh_segments_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut wh = sample();
        wh.set_segment_backend(Arc::new(DiskBackend::create(&dir).unwrap()))
            .unwrap();
        wh.compact().unwrap();
        assert_eq!(wh.segments().backend().kind(), "disk");
        let meta = &wh.segments().metas()[0];
        let seg = wh
            .fetch_segment(meta.id, &ColumnSet::empty().with_measure("FBG"))
            .unwrap();
        let (values, _) = seg.measure_column("FBG").unwrap();
        assert_eq!(values.len(), 4);
        assert!(
            seg.key_column("Personal").is_none(),
            "column pruning reaches disk"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn build_failpoint_leaves_the_sealed_view_intact() {
        let _lock = fault::test_support::fault_lock();
        let mut wh = sample();
        wh.compact().unwrap();
        wh.append(&table(&[(6, "M", 9.0, "Diabetic")])).unwrap();
        {
            let _guard = fault::arm(
                "warehouse.compact_build",
                fault::Trigger::Always,
                fault::FaultKind::Error,
            );
            assert!(wh.compact().is_err());
        }
        assert_eq!(wh.segments().watermark(), 4, "old seal survives");
        assert_eq!(wh.segments().len(), 1);
        assert!(
            wh.compact().unwrap(),
            "retry succeeds after the fault clears"
        );
        assert_eq!(wh.segments().watermark(), 5);
    }
}
