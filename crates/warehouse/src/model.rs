//! The dimensional model: facts, dimensions, hierarchies.
//!
//! §III of the paper, after Kimball [10] and Agrawal et al. [12]: a
//! subject-oriented star structure in which a fact table of numeric
//! measures is linked to dimension tables of descriptive attributes,
//! some of which form drill-down hierarchies.

use clinical_types::{Error, Result};
use std::collections::HashSet;

/// An ordered drill-down path inside one dimension, coarsest level
/// first (e.g. `Age_Band` → `Age_SubGroup`). Fig. 5's "two levels of
/// granularity" is exactly a two-level hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hierarchy {
    /// Hierarchy name (e.g. `"AgeGroups"`).
    pub name: String,
    /// Attribute names from coarsest to finest.
    pub levels: Vec<String>,
}

impl Hierarchy {
    /// Build a hierarchy.
    pub fn new(name: impl Into<String>, levels: Vec<&str>) -> Self {
        Hierarchy {
            name: name.into(),
            levels: levels.into_iter().map(String::from).collect(),
        }
    }

    /// The level one step finer than `level`, if any.
    pub fn drill_down_from(&self, level: &str) -> Option<&str> {
        let pos = self.levels.iter().position(|l| l == level)?;
        self.levels.get(pos + 1).map(String::as_str)
    }

    /// The level one step coarser than `level`, if any.
    pub fn roll_up_from(&self, level: &str) -> Option<&str> {
        let pos = self.levels.iter().position(|l| l == level)?;
        pos.checked_sub(1).map(|i| self.levels[i].as_str())
    }
}

/// One dimension: a named set of descriptive attributes plus its
/// hierarchies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimensionDef {
    /// Dimension name as it appears in Figs. 1 and 3.
    pub name: String,
    /// Attribute (column) names this dimension owns.
    pub attributes: Vec<String>,
    /// Drill-down hierarchies over those attributes.
    pub hierarchies: Vec<Hierarchy>,
}

impl DimensionDef {
    /// Dimension without hierarchies.
    pub fn new(name: impl Into<String>, attributes: Vec<&str>) -> Self {
        DimensionDef {
            name: name.into(),
            attributes: attributes.into_iter().map(String::from).collect(),
            hierarchies: Vec::new(),
        }
    }

    /// Attach a hierarchy (levels must be attributes of the dimension).
    pub fn with_hierarchy(mut self, hierarchy: Hierarchy) -> Self {
        self.hierarchies.push(hierarchy);
        self
    }

    /// Whether the dimension owns `attribute`.
    pub fn has_attribute(&self, attribute: &str) -> bool {
        self.attributes.iter().any(|a| a == attribute)
    }
}

/// The fact table definition: measures plus degenerate (identifier)
/// columns kept on the fact itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactDef {
    /// Fact name (the paper's "Medical Measures").
    pub name: String,
    /// Numeric measure column names.
    pub measures: Vec<String>,
    /// Degenerate dimension columns stored inline (patient id,
    /// visit number, test date).
    pub degenerate: Vec<String>,
}

impl FactDef {
    /// Build a fact definition.
    pub fn new(name: impl Into<String>, measures: Vec<&str>, degenerate: Vec<&str>) -> Self {
        FactDef {
            name: name.into(),
            measures: measures.into_iter().map(String::from).collect(),
            degenerate: degenerate.into_iter().map(String::from).collect(),
        }
    }
}

/// A validated star schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StarSchema {
    /// The fact table definition.
    pub fact: FactDef,
    /// The dimensions linked to the fact.
    pub dimensions: Vec<DimensionDef>,
}

impl StarSchema {
    /// Build and validate: dimension names unique, no attribute owned
    /// by two dimensions or by both a dimension and the fact, and
    /// every hierarchy level owned by its dimension.
    pub fn new(fact: FactDef, dimensions: Vec<DimensionDef>) -> Result<Self> {
        let mut dim_names = HashSet::new();
        for d in &dimensions {
            if !dim_names.insert(d.name.as_str()) {
                return Err(Error::invalid(format!("duplicate dimension `{}`", d.name)));
            }
        }
        let mut owners: HashSet<&str> = HashSet::new();
        for d in &dimensions {
            for a in &d.attributes {
                if !owners.insert(a.as_str()) {
                    return Err(Error::invalid(format!(
                        "attribute `{a}` owned by more than one dimension"
                    )));
                }
            }
            for h in &d.hierarchies {
                for level in &h.levels {
                    if !d.has_attribute(level) {
                        return Err(Error::invalid(format!(
                            "hierarchy `{}` level `{level}` is not an attribute of dimension `{}`",
                            h.name, d.name
                        )));
                    }
                }
            }
        }
        for m in fact.measures.iter().chain(&fact.degenerate) {
            if owners.contains(m.as_str()) {
                return Err(Error::invalid(format!(
                    "column `{m}` is both a fact column and a dimension attribute"
                )));
            }
        }
        Ok(StarSchema { fact, dimensions })
    }

    /// Dimension by name.
    pub fn dimension(&self, name: &str) -> Result<&DimensionDef> {
        self.dimensions
            .iter()
            .find(|d| d.name == name)
            .ok_or_else(|| Error::invalid(format!("unknown dimension `{name}`")))
    }

    /// The dimension owning `attribute`, if any.
    pub fn dimension_of_attribute(&self, attribute: &str) -> Option<&DimensionDef> {
        self.dimensions.iter().find(|d| d.has_attribute(attribute))
    }

    /// Render the star as indented text (used by the schema example).
    pub fn describe(&self) -> String {
        let mut s = format!("Fact: {}\n", self.fact.name);
        s.push_str(&format!(
            "  measures: {}\n  degenerate: {}\n",
            self.fact.measures.join(", "),
            self.fact.degenerate.join(", ")
        ));
        for d in &self.dimensions {
            s.push_str(&format!("Dimension: {}\n", d.name));
            s.push_str(&format!("  attributes: {}\n", d.attributes.join(", ")));
            for h in &d.hierarchies {
                s.push_str(&format!(
                    "  hierarchy {}: {}\n",
                    h.name,
                    h.levels.join(" > ")
                ));
            }
        }
        s
    }
}

/// The paper's Fig. 1: the generic Clinical Data Warehouse model —
/// a Medical Measures fact with Personal Information, Medical
/// Condition, Fasting Bloods and Limb Health dimensions.
pub fn fig1_model() -> StarSchema {
    StarSchema::new(
        FactDef::new(
            "Medical Measures",
            vec!["FBG", "LyingDBPAverage"],
            vec!["PatientId"],
        ),
        vec![
            DimensionDef::new("Personal Information", vec!["Gender", "Age_Band"]),
            DimensionDef::new(
                "Medical Condition",
                vec!["DiabetesStatus", "HypertensionStatus"],
            ),
            DimensionDef::new("Fasting Bloods", vec!["FBG_Band"]),
            DimensionDef::new("Limb Health", vec!["KneeReflexRight", "AnkleReflexRight"]),
        ],
    )
    .expect("Fig. 1 model is well-formed") // lint:allow(no-panic, "static Fig. 1 model, validated in tests")
}

/// The paper's Fig. 3: the dimensional model used in the DiScRi trial
/// — the Fig. 1 dimensions plus Exercise Routine, Blood Pressure, ECG
/// and the Cardinality dimension, with the Age drill-down hierarchy
/// that Figs. 5–6 exercise.
pub fn discri_model() -> StarSchema {
    let age_hierarchy = Hierarchy::new("AgeGroups", vec!["Age_Band", "Age_SubGroup"]);
    let ht_hierarchy = Hierarchy::new("HTYears", vec!["DiagnosticHTYears_Band"]);
    StarSchema::new(
        FactDef::new(
            "Medical Measures",
            vec![
                "Age",
                "FBG",
                "HbA1c",
                "BMI",
                "TotalCholesterol",
                "HDL",
                "LDL",
                "Triglycerides",
                "LyingSBPAverage",
                "LyingDBPAverage",
                "StandingSBP",
                "StandingDBP",
                "RestingHeartRate",
                "OrthostaticSBPDrop",
                "QRSDuration",
                "QTInterval",
                "QTc",
                "PRInterval",
                "SDNN",
                "EwingHRRatio3015",
                "EwingValsalvaRatio",
                "EwingHandGrip",
                "EwingDeepBreathingHRV",
                "VibrationPerception",
                "AnkleBrachialIndex",
                "ExerciseMinutesPerWeek",
                "SedentaryHoursPerDay",
                "WeightKg",
                "WaistHipRatio",
                "DiagnosticHTYears",
                "DiabetesDurationYears",
            ],
            vec!["PatientId", "VisitNo", "TestDate"],
        ),
        vec![
            DimensionDef::new(
                "Personal Information",
                vec![
                    "Gender",
                    "FamilyHistoryDiabetes",
                    "FamilyHistoryCVD",
                    "Smoker",
                    "EducationYears",
                    "Age_Band",
                    "Age_SubGroup",
                ],
            )
            .with_hierarchy(age_hierarchy),
            DimensionDef::new(
                "Medical Condition",
                vec![
                    "DiabetesStatus",
                    "HypertensionStatus",
                    "OnGlucoseMedication",
                    "MedicationCount",
                    "DiagnosticHTYears_Band",
                    "BMI_Band",
                ],
            )
            .with_hierarchy(ht_hierarchy),
            DimensionDef::new(
                "Fasting Bloods",
                vec!["FBG_Band", "FBG_Trend", "HbA1c_Band"],
            ),
            DimensionDef::new(
                "Limb Health",
                vec![
                    "KneeReflexRight",
                    "KneeReflexLeft",
                    "AnkleReflexRight",
                    "AnkleReflexLeft",
                    "FootPulses",
                    "MonofilamentScore",
                ],
            ),
            DimensionDef::new(
                "Exercise Routine",
                vec!["ActivityType", "ExerciseSessionsPerWeek"],
            ),
            DimensionDef::new("Blood Pressure", vec!["LyingDBPAverage_Band"]),
            DimensionDef::new("ECG", vec!["QTc_Band", "SDNN_Band"]),
            DimensionDef::new(
                "Cardinality",
                vec!["DerivedVisitNo", "PatientVisitCount", "VisitKind"],
            ),
        ],
    )
    .expect("Fig. 3 model is well-formed") // lint:allow(no-panic, "static Fig. 3 model, validated in tests")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_has_the_four_paper_dimensions() {
        let m = fig1_model();
        let names: Vec<&str> = m.dimensions.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "Personal Information",
                "Medical Condition",
                "Fasting Bloods",
                "Limb Health"
            ]
        );
        assert_eq!(m.fact.name, "Medical Measures");
    }

    #[test]
    fn discri_model_adds_cardinality_and_four_more() {
        let m = discri_model();
        let names: Vec<&str> = m.dimensions.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names.len(), 8);
        for required in [
            "Personal Information",
            "Medical Condition",
            "Fasting Bloods",
            "Limb Health",
            "Exercise Routine",
            "Blood Pressure",
            "ECG",
            "Cardinality",
        ] {
            assert!(names.contains(&required), "missing dimension {required}");
        }
    }

    #[test]
    fn age_hierarchy_supports_fig5_drilldown() {
        let m = discri_model();
        let pi = m.dimension("Personal Information").unwrap();
        let h = &pi.hierarchies[0];
        assert_eq!(h.drill_down_from("Age_Band"), Some("Age_SubGroup"));
        assert_eq!(h.roll_up_from("Age_SubGroup"), Some("Age_Band"));
        assert_eq!(h.drill_down_from("Age_SubGroup"), None);
        assert_eq!(h.roll_up_from("Age_Band"), None);
    }

    #[test]
    fn duplicate_attribute_ownership_rejected() {
        let r = StarSchema::new(
            FactDef::new("F", vec![], vec![]),
            vec![
                DimensionDef::new("A", vec!["X"]),
                DimensionDef::new("B", vec!["X"]),
            ],
        );
        assert!(r.is_err());
    }

    #[test]
    fn fact_dimension_column_clash_rejected() {
        let r = StarSchema::new(
            FactDef::new("F", vec!["X"], vec![]),
            vec![DimensionDef::new("A", vec!["X"])],
        );
        assert!(r.is_err());
    }

    #[test]
    fn hierarchy_levels_must_be_owned() {
        let r = StarSchema::new(
            FactDef::new("F", vec![], vec![]),
            vec![DimensionDef::new("A", vec!["X"])
                .with_hierarchy(Hierarchy::new("H", vec!["X", "Y"]))],
        );
        assert!(r.is_err());
    }

    #[test]
    fn duplicate_dimension_names_rejected() {
        let r = StarSchema::new(
            FactDef::new("F", vec![], vec![]),
            vec![
                DimensionDef::new("A", vec!["X"]),
                DimensionDef::new("A", vec!["Y"]),
            ],
        );
        assert!(r.is_err());
    }

    #[test]
    fn dimension_lookup_by_attribute() {
        let m = discri_model();
        let d = m.dimension_of_attribute("FBG_Band").unwrap();
        assert_eq!(d.name, "Fasting Bloods");
        assert!(m.dimension_of_attribute("FBG").is_none()); // a measure
    }

    #[test]
    fn describe_renders_star() {
        let text = discri_model().describe();
        assert!(text.contains("Fact: Medical Measures"));
        assert!(text.contains("Dimension: Cardinality"));
        assert!(text.contains("hierarchy AgeGroups: Age_Band > Age_SubGroup"));
    }
}
