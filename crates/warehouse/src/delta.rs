//! The versioned delta log behind delta-aware epochs.
//!
//! The warehouse epoch used to be an opaque `u64`: any mutation bumped
//! it, and every consumer keyed on it (the serve result cache, the
//! per-epoch semantic catalog) had to treat a bump as "everything
//! changed". For an append-mostly clinical store that is far too
//! pessimistic — a feedback dimension added by one clinician does not
//! change the answer of a `[Gender]×[Age_SubGroup]` cube at all, and a
//! batch of appended visits changes additive cubes by exactly the
//! appended rows.
//!
//! Every mutation therefore records a [`DeltaSummary`] describing what
//! the epoch transition actually did: which dimensions were touched,
//! which fact-row range was appended, and whether any pre-existing row
//! was rewritten. [`crate::Warehouse::deltas_since`] returns the chain
//! of summaries between a historical epoch and the present, letting
//! consumers *revalidate* stale state instead of discarding it:
//!
//! * no appended rows and no touched dimension in the query's
//!   footprint → the old result is provably still correct;
//! * appended rows only → additive aggregates can be patched by
//!   folding just the new rows (`olap::Cube::apply_delta`);
//! * anything rewritten → rebuild from scratch.
//!
//! The log is bounded ([`DELTA_LOG_CAPACITY`] entries); asking about
//! an epoch that has aged out returns `None`, which consumers must
//! treat as "assume everything changed".

use std::collections::{BTreeSet, VecDeque};
use std::ops::Range;

/// Entries retained by the per-warehouse delta log. Old entries fall
/// off the front; epochs older than the retained window revalidate as
/// unknown (conservative full invalidation).
pub const DELTA_LOG_CAPACITY: usize = 128;

/// What kind of mutation produced a delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaKind {
    /// A batch of fact rows appended (`Warehouse::append`): existing
    /// rows untouched, dimensions may have gained tuples.
    Append,
    /// A feedback dimension added (`Warehouse::add_feedback_dimension`):
    /// no fact rows appended, one new dimension keyed for every
    /// existing row.
    Feedback,
    /// A conservative epoch bump (`Warehouse::bump_epoch`): assume any
    /// row or dimension may have been rewritten.
    Rewrite,
}

/// One epoch transition: what the mutation from `from_epoch` to
/// `to_epoch` did to the warehouse.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaSummary {
    /// The epoch the warehouse was at before the mutation.
    pub from_epoch: u64,
    /// The epoch the mutation advanced to.
    pub to_epoch: u64,
    /// The kind of mutation.
    pub kind: DeltaKind,
    /// Dimensions the mutation touched: dimensions that gained tuples
    /// during an append, the new dimension of a feedback append, or
    /// every dimension for a conservative rewrite.
    pub dimensions: BTreeSet<String>,
    /// The fact-row range appended by the mutation (empty for
    /// feedback dimensions and rewrites).
    pub appended: Range<usize>,
    /// Whether any pre-existing fact row or dimension tuple may have
    /// been rewritten. When set, no incremental reuse is possible.
    pub rewrote_existing: bool,
}

impl DeltaSummary {
    /// True when the mutation only appended data: nothing that existed
    /// at `from_epoch` was modified.
    pub fn is_append_only(&self) -> bool {
        !self.rewrote_existing
    }
}

/// The net effect of a chain of deltas, folded for revalidation.
#[derive(Debug, Clone, PartialEq)]
pub struct ChangeSet {
    /// Combined appended fact-row range across the chain (append
    /// deltas are contiguous by construction). Empty when no rows were
    /// appended.
    pub appended: Range<usize>,
    /// Dimensions touched *structurally* — by feedback or rewrite
    /// deltas. Dimensions that merely gained tuples from appends are
    /// excluded: folding the appended rows accounts for those.
    pub structural_dimensions: BTreeSet<String>,
    /// Whether any delta in the chain rewrote existing data.
    pub rewrote_existing: bool,
}

impl ChangeSet {
    /// Fold a chain of deltas (as returned by
    /// [`crate::Warehouse::deltas_since`]) into its net effect.
    pub fn fold(deltas: &[DeltaSummary]) -> ChangeSet {
        let mut appended: Option<Range<usize>> = None;
        let mut structural_dimensions = BTreeSet::new();
        let mut rewrote_existing = false;
        for d in deltas {
            if !d.appended.is_empty() {
                appended = Some(match appended {
                    None => d.appended.clone(),
                    Some(r) => r.start.min(d.appended.start)..r.end.max(d.appended.end),
                });
            }
            if d.kind != DeltaKind::Append {
                structural_dimensions.extend(d.dimensions.iter().cloned());
            }
            rewrote_existing |= d.rewrote_existing;
        }
        ChangeSet {
            appended: appended.unwrap_or(0..0),
            structural_dimensions,
            rewrote_existing,
        }
    }
}

/// Bounded per-warehouse log of epoch transitions.
#[derive(Debug, Clone)]
pub struct DeltaLog {
    entries: VecDeque<DeltaSummary>,
    capacity: usize,
}

impl DeltaLog {
    /// An empty log retaining up to `capacity` transitions.
    pub(crate) fn new(capacity: usize) -> DeltaLog {
        DeltaLog {
            entries: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Record a transition, dropping the oldest entry when full.
    pub(crate) fn record(&mut self, delta: DeltaSummary) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(delta);
    }

    /// The chain of transitions from `epoch` (exclusive) to `current`
    /// (inclusive), oldest first. `Some(vec![])` when `epoch` *is* the
    /// current epoch; `None` when `epoch` is unknown — older than the
    /// retained window, or from another warehouse instance — in which
    /// case callers must assume everything changed.
    pub fn since(&self, epoch: u64, current: u64) -> Option<Vec<DeltaSummary>> {
        if epoch == current {
            return Some(Vec::new());
        }
        let start = self.entries.iter().position(|d| d.from_epoch == epoch)?;
        Some(self.entries.iter().skip(start).cloned().collect())
    }

    /// Number of retained transitions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether any transition is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn append(from: u64, rows: Range<usize>, dims: &[&str]) -> DeltaSummary {
        DeltaSummary {
            from_epoch: from,
            to_epoch: from + 1,
            kind: DeltaKind::Append,
            dimensions: dims.iter().map(|s| s.to_string()).collect(),
            appended: rows,
            rewrote_existing: false,
        }
    }

    fn feedback(from: u64, dim: &str) -> DeltaSummary {
        DeltaSummary {
            from_epoch: from,
            to_epoch: from + 1,
            kind: DeltaKind::Feedback,
            dimensions: [dim.to_string()].into_iter().collect(),
            appended: 0..0,
            rewrote_existing: false,
        }
    }

    #[test]
    fn since_walks_the_chain_from_the_right_epoch() {
        let mut log = DeltaLog::new(8);
        log.record(append(1, 0..4, &["Bloods"]));
        log.record(feedback(2, "Review"));
        log.record(append(3, 4..6, &[]));
        assert_eq!(log.since(4, 4), Some(vec![]));
        assert_eq!(log.since(3, 4).map(|v| v.len()), Some(1));
        let chain = log.since(1, 4).unwrap();
        assert_eq!(chain.len(), 3);
        assert_eq!(chain[0].appended, 0..4);
        assert_eq!(log.since(99, 4), None, "unknown epochs are conservative");
    }

    #[test]
    fn capacity_evicts_oldest_entries() {
        let mut log = DeltaLog::new(2);
        log.record(append(1, 0..1, &[]));
        log.record(append(2, 1..2, &[]));
        log.record(append(3, 2..3, &[]));
        assert_eq!(log.len(), 2);
        assert_eq!(log.since(1, 4), None, "aged-out epoch must be unknown");
        assert!(log.since(2, 4).is_some());
    }

    #[test]
    fn fold_combines_appends_and_keeps_structural_dims_separate() {
        let chain = vec![
            append(1, 10..14, &["Bloods"]),
            feedback(2, "Review"),
            append(3, 14..20, &[]),
        ];
        let change = ChangeSet::fold(&chain);
        assert_eq!(change.appended, 10..20);
        assert!(change.structural_dimensions.contains("Review"));
        assert!(
            !change.structural_dimensions.contains("Bloods"),
            "append-touched dimensions are covered by row folding"
        );
        assert!(!change.rewrote_existing);
    }

    #[test]
    fn fold_of_a_rewrite_poisons_the_chain() {
        let rewrite = DeltaSummary {
            from_epoch: 1,
            to_epoch: 2,
            kind: DeltaKind::Rewrite,
            dimensions: ["Bloods".to_string()].into_iter().collect(),
            appended: 0..0,
            rewrote_existing: true,
        };
        let change = ChangeSet::fold(std::slice::from_ref(&rewrite));
        assert!(change.rewrote_existing);
        assert!(!rewrite.is_append_only());
    }
}
