//! Columnar star-schema storage.
//!
//! Dimensions are dictionary-encoded: each distinct attribute tuple is
//! stored once in a [`DimensionTable`] and referenced from the fact by
//! a dense [`SurrogateKey`]. The [`FactTable`] stores one key column
//! per dimension plus null-aware numeric measure columns and inline
//! degenerate columns. This layout is the ablation subject of
//! `bench/load_and_cube` (surrogate keys vs raw group keys).

use clinical_types::{Error, Result, Value};
use std::collections::HashMap;

/// Dense surrogate key into a dimension table.
pub type SurrogateKey = u32;

/// A dictionary-encoded dimension table: one row per distinct
/// attribute tuple observed during load.
#[derive(Debug, Clone)]
pub struct DimensionTable {
    /// Dimension name.
    pub name: String,
    /// Attribute names, fixing tuple order.
    pub attributes: Vec<String>,
    tuples: Vec<Vec<Value>>,
    intern: HashMap<Vec<Value>, SurrogateKey>,
}

impl DimensionTable {
    /// Empty dimension table.
    pub fn new(name: impl Into<String>, attributes: Vec<String>) -> Self {
        DimensionTable {
            name: name.into(),
            attributes,
            tuples: Vec::new(),
            intern: HashMap::new(),
        }
    }

    /// Intern a tuple, returning its (possibly pre-existing) key.
    pub fn intern(&mut self, tuple: Vec<Value>) -> Result<SurrogateKey> {
        if tuple.len() != self.attributes.len() {
            return Err(Error::invalid(format!(
                "dimension `{}` expects {}-tuples, got {}",
                self.name,
                self.attributes.len(),
                tuple.len()
            )));
        }
        if let Some(k) = self.intern.get(&tuple) {
            return Ok(*k);
        }
        let key = self.tuples.len() as SurrogateKey;
        self.intern.insert(tuple.clone(), key);
        self.tuples.push(tuple);
        Ok(key)
    }

    /// Tuple by key.
    pub fn tuple(&self, key: SurrogateKey) -> Option<&[Value]> {
        self.tuples.get(key as usize).map(Vec::as_slice)
    }

    /// Value of one attribute in the tuple behind `key`.
    pub fn attribute_value(&self, key: SurrogateKey, attribute: &str) -> Result<&Value> {
        let idx = self
            .attributes
            .iter()
            .position(|a| a == attribute)
            .ok_or_else(|| {
                Error::invalid(format!(
                    "dimension `{}` has no attribute `{attribute}`",
                    self.name
                ))
            })?;
        self.tuples
            .get(key as usize)
            .and_then(|t| t.get(idx))
            .ok_or_else(|| {
                Error::invalid(format!("dimension `{}` key {key} out of range", self.name))
            })
    }

    /// Position of an attribute within tuples.
    pub fn attribute_index(&self, attribute: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a == attribute)
    }

    /// Number of distinct tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when no tuple has been interned.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// A null-aware numeric measure column.
#[derive(Debug, Clone, Default)]
pub struct MeasureColumn {
    /// Measure name.
    pub name: String,
    /// Values; meaningless where `valid` is false.
    pub values: Vec<f64>,
    /// Validity mask (false = the measurement was missing).
    pub valid: Vec<bool>,
}

impl MeasureColumn {
    /// Empty column.
    pub fn new(name: impl Into<String>) -> Self {
        MeasureColumn {
            name: name.into(),
            values: Vec::new(),
            valid: Vec::new(),
        }
    }

    /// Append one (possibly missing) measurement.
    pub fn push(&mut self, value: Option<f64>) {
        match value {
            Some(x) => {
                self.values.push(x);
                self.valid.push(true);
            }
            None => {
                self.values.push(0.0);
                self.valid.push(false);
            }
        }
    }

    /// The value at `row`, if present.
    pub fn get(&self, row: usize) -> Option<f64> {
        if *self.valid.get(row)? {
            self.values.get(row).copied()
        } else {
            None
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no measurement has been appended.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Count of non-missing measurements.
    pub fn count_valid(&self) -> usize {
        self.valid.iter().filter(|v| **v).count()
    }
}

/// The central fact table: dimension-key columns (column-major),
/// measure columns and degenerate columns.
#[derive(Debug, Clone, Default)]
pub struct FactTable {
    /// Dimension names, fixing the order of `dim_keys`.
    pub dim_names: Vec<String>,
    /// One key column per dimension; all the same length.
    pub dim_keys: Vec<Vec<SurrogateKey>>,
    /// Measure columns; all the same length as the key columns.
    pub measures: Vec<MeasureColumn>,
    /// Degenerate columns `(name, values)` stored inline on the fact.
    pub degenerate: Vec<(String, Vec<Value>)>,
}

impl FactTable {
    /// Empty fact table for the given dimension / measure / degenerate
    /// column names.
    pub fn new(
        dim_names: Vec<String>,
        measure_names: Vec<String>,
        degenerate: Vec<String>,
    ) -> Self {
        FactTable {
            dim_keys: vec![Vec::new(); dim_names.len()],
            dim_names,
            measures: measure_names.into_iter().map(MeasureColumn::new).collect(),
            degenerate: degenerate.into_iter().map(|n| (n, Vec::new())).collect(),
        }
    }

    /// Number of fact rows.
    pub fn len(&self) -> usize {
        self.dim_keys.first().map_or_else(
            || self.measures.first().map_or(0, MeasureColumn::len),
            Vec::len,
        )
    }

    /// True when the fact table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Index of a dimension by name.
    pub fn dim_index(&self, name: &str) -> Result<usize> {
        self.dim_names
            .iter()
            .position(|d| d == name)
            .ok_or_else(|| Error::invalid(format!("fact table has no dimension `{name}`")))
    }

    /// Key column for a dimension.
    pub fn keys_of(&self, dimension: &str) -> Result<&[SurrogateKey]> {
        let di = self.dim_index(dimension)?;
        self.dim_keys.get(di).map(Vec::as_slice).ok_or_else(|| {
            Error::invalid(format!("fact table has no key column for `{dimension}`"))
        })
    }

    /// Measure column by name.
    pub fn measure(&self, name: &str) -> Result<&MeasureColumn> {
        self.measures
            .iter()
            .find(|m| m.name == name)
            .ok_or_else(|| Error::invalid(format!("fact table has no measure `{name}`")))
    }

    /// Degenerate column by name.
    pub fn degenerate_column(&self, name: &str) -> Result<&[Value]> {
        self.degenerate
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
            .ok_or_else(|| Error::invalid(format!("fact table has no degenerate column `{name}`")))
    }

    /// Internal consistency check: every column has the same length.
    pub fn validate(&self) -> Result<()> {
        let n = self.len();
        for (d, keys) in self.dim_names.iter().zip(&self.dim_keys) {
            if keys.len() != n {
                return Err(Error::invalid(format!(
                    "dimension key column `{d}` has {} rows, expected {n}",
                    keys.len()
                )));
            }
        }
        for m in &self.measures {
            if m.len() != n || m.valid.len() != n {
                return Err(Error::invalid(format!(
                    "measure column `{}` has {} rows, expected {n}",
                    m.name,
                    m.len()
                )));
            }
        }
        for (name, col) in &self.degenerate {
            if col.len() != n {
                return Err(Error::invalid(format!(
                    "degenerate column `{name}` has {} rows, expected {n}",
                    col.len()
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_deduplicates_tuples() {
        let mut d = DimensionTable::new("Personal", vec!["Gender".into(), "Age_Band".into()]);
        let a = d.intern(vec!["F".into(), "60-80".into()]).unwrap();
        let b = d.intern(vec!["M".into(), "60-80".into()]).unwrap();
        let c = d.intern(vec!["F".into(), "60-80".into()]).unwrap();
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn intern_checks_arity() {
        let mut d = DimensionTable::new("Personal", vec!["Gender".into()]);
        assert!(d.intern(vec!["F".into(), "x".into()]).is_err());
    }

    #[test]
    fn attribute_value_resolves_by_key() {
        let mut d = DimensionTable::new("Personal", vec!["Gender".into(), "Age_Band".into()]);
        let k = d.intern(vec!["F".into(), "60-80".into()]).unwrap();
        assert_eq!(
            d.attribute_value(k, "Age_Band").unwrap(),
            &Value::from("60-80")
        );
        assert!(d.attribute_value(k, "Nope").is_err());
        assert!(d.attribute_value(99, "Gender").is_err());
    }

    #[test]
    fn null_tuples_are_internable() {
        let mut d = DimensionTable::new("X", vec!["A".into()]);
        let k1 = d.intern(vec![Value::Null]).unwrap();
        let k2 = d.intern(vec![Value::Null]).unwrap();
        assert_eq!(k1, k2);
    }

    #[test]
    fn measure_column_tracks_validity() {
        let mut m = MeasureColumn::new("FBG");
        m.push(Some(5.5));
        m.push(None);
        m.push(Some(7.0));
        assert_eq!(m.len(), 3);
        assert_eq!(m.count_valid(), 2);
        assert_eq!(m.get(0), Some(5.5));
        assert_eq!(m.get(1), None);
        assert_eq!(m.get(5), None);
    }

    #[test]
    fn fact_table_accessors_and_validation() {
        let mut f = FactTable::new(
            vec!["Personal".into()],
            vec!["FBG".into()],
            vec!["PatientId".into()],
        );
        f.dim_keys[0].push(0);
        f.measures[0].push(Some(5.0));
        f.degenerate[0].1.push(Value::Int(1));
        assert_eq!(f.len(), 1);
        f.validate().unwrap();
        assert_eq!(f.keys_of("Personal").unwrap(), &[0]);
        assert!(f.keys_of("Nope").is_err());
        assert_eq!(f.measure("FBG").unwrap().get(0), Some(5.0));
        assert!(f.measure("Nope").is_err());
        assert_eq!(f.degenerate_column("PatientId").unwrap().len(), 1);

        // Desynchronise a column: validation must fail.
        f.measures[0].push(Some(9.0));
        assert!(f.validate().is_err());
    }
}
