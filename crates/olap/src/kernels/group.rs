//! Dictionary-coded group-key composition.
//!
//! Cube axes are dictionary-coded surrogate keys, so a group key is a
//! small coordinate tuple `(k₀, k₁, …)` drawn from a bounded domain.
//! When the product of per-axis cardinalities is modest, the tuple
//! collapses to a single dense integer by mixed-radix arithmetic —
//! `gid = k₀ + c₀·k₁ + c₀·c₁·k₂ + …` — and grouping becomes array
//! indexing instead of hashing a `Vec<u32>` per row.

/// Upper bound on the dense group domain (product of per-axis
/// cardinalities). Beyond this the flat accumulator lanes would waste
/// more memory than hashing costs, so callers fall back to the
/// hash-based scalar path.
pub const MAX_DENSE_GROUPS: usize = 1 << 16;

/// Mixed-radix layout mapping axis-key tuples to dense group ids.
///
/// ```
/// use olap::kernels::GroupLayout;
///
/// // Two axes: Gender (cardinality 2) and Age_Band (cardinality 3).
/// let layout = GroupLayout::try_new(&[2, 3]).unwrap();
/// assert_eq!(layout.groups(), 6);
///
/// let gender = [0u32, 1, 0];
/// let age = [2u32, 0, 1];
/// let sel = [0u32, 1, 2]; // all three rows selected
/// let mut gids = Vec::new();
/// layout.compose(&[&gender, &age], &sel, &mut gids);
/// assert_eq!(gids, vec![4, 1, 2]); // gid = gender + 2 * age
///
/// assert_eq!(layout.decode(4), vec![0, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct GroupLayout {
    cardinalities: Vec<u32>,
    strides: Vec<usize>,
    groups: usize,
}

impl GroupLayout {
    /// Build a layout from per-axis key cardinalities (each axis's
    /// keys must lie in `0..cardinality`). Returns `None` when any
    /// axis is empty or the dense domain would exceed
    /// [`MAX_DENSE_GROUPS`] — the caller's cue to use the hash path.
    pub fn try_new(cardinalities: &[u32]) -> Option<Self> {
        let mut strides = Vec::with_capacity(cardinalities.len());
        let mut groups: usize = 1;
        for &card in cardinalities {
            if card == 0 {
                return None;
            }
            strides.push(groups);
            groups = groups.checked_mul(card as usize)?;
            if groups > MAX_DENSE_GROUPS {
                return None;
            }
        }
        Some(GroupLayout {
            cardinalities: cardinalities.to_vec(),
            strides,
            groups,
        })
    }

    /// Size of the dense group domain.
    #[inline]
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Number of axes in the layout.
    #[inline]
    pub fn axes(&self) -> usize {
        self.cardinalities.len()
    }

    /// Compose dense group ids for the selected rows.
    ///
    /// `axis_keys` holds one full-morsel key slice per axis (same
    /// order as the cardinalities given to [`GroupLayout::try_new`]);
    /// `sel` is the selection vector of surviving row indices. One
    /// `gid` is appended to `out` per selected row, in selection
    /// order. Keys outside an axis's cardinality are clamped into
    /// range (they cannot occur for well-formed dictionaries; the
    /// clamp keeps the kernel memory-safe without a panic path).
    pub fn compose(&self, axis_keys: &[&[u32]], sel: &[u32], out: &mut Vec<u32>) {
        out.reserve(sel.len());
        for &row in sel {
            let mut gid: usize = 0;
            for (a, &keys) in axis_keys.iter().enumerate() {
                let card = self.cardinalities[a];
                let k = keys
                    .get(row as usize)
                    .copied()
                    .unwrap_or(0)
                    .min(card.saturating_sub(1));
                gid += self.strides[a] * k as usize;
            }
            out.push(gid as u32);
        }
    }

    /// Recover the per-axis key tuple for a dense group id (used once
    /// per *group* at finalisation, never per row).
    pub fn decode(&self, gid: u32) -> Vec<u32> {
        let mut keys = Vec::with_capacity(self.cardinalities.len());
        let mut rest = gid as usize;
        for &card in &self.cardinalities {
            keys.push((rest % card as usize) as u32);
            rest /= card as usize;
        }
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compose_and_decode_round_trip() {
        let layout = GroupLayout::try_new(&[3, 4, 5]).unwrap();
        assert_eq!(layout.groups(), 60);
        for gid in 0..60u32 {
            let keys = layout.decode(gid);
            let slices: Vec<Vec<u32>> = keys.iter().map(|&k| vec![k]).collect();
            let refs: Vec<&[u32]> = slices.iter().map(|s| s.as_slice()).collect();
            let mut out = Vec::new();
            layout.compose(&refs, &[0], &mut out);
            assert_eq!(out, vec![gid]);
        }
    }

    #[test]
    fn zero_axes_is_a_single_group() {
        let layout = GroupLayout::try_new(&[]).unwrap();
        assert_eq!(layout.groups(), 1);
        assert_eq!(layout.axes(), 0);
        let mut out = Vec::new();
        layout.compose(&[], &[0, 1, 2], &mut out);
        assert_eq!(out, vec![0, 0, 0]);
        assert_eq!(layout.decode(0), Vec::<u32>::new());
    }

    #[test]
    fn oversized_domain_is_rejected() {
        assert!(GroupLayout::try_new(&[1 << 10, 1 << 10]).is_none());
        assert!(GroupLayout::try_new(&[u32::MAX, u32::MAX]).is_none());
        assert!(GroupLayout::try_new(&[4, 0]).is_none());
        assert!(GroupLayout::try_new(&[1 << 16]).is_some());
    }

    #[test]
    fn compose_follows_selection_order() {
        let layout = GroupLayout::try_new(&[4]).unwrap();
        let keys = [3u32, 1, 2, 0];
        let mut out = Vec::new();
        layout.compose(&[&keys], &[3, 0, 1], &mut out);
        assert_eq!(out, vec![0, 3, 1]);
    }

    #[test]
    fn out_of_range_keys_are_clamped_not_panicking() {
        let layout = GroupLayout::try_new(&[2]).unwrap();
        let keys = [7u32];
        let mut out = Vec::new();
        layout.compose(&[&keys], &[0], &mut out);
        assert_eq!(out, vec![1]);
    }
}
