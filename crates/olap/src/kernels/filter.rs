//! Selection-bitmap filter kernels.
//!
//! Predicates over a column slice are evaluated 64 rows at a time into
//! a packed bitmap, then conjoined word-wise (`AND`). Only after every
//! predicate has folded in is the bitmap expanded to a selection
//! vector of surviving row indices, so rows rejected by the first
//! filter never reach the second — without a single per-row branch in
//! the loop body.

/// Packed membership table over a dictionary-coded key domain.
///
/// A `KeyLut` answers "is surrogate key `k` in the filter set?" with a
/// single shift-and-mask, replacing the `BTreeSet::contains` probe of
/// the row-at-a-time path. Keys at or beyond the domain are never
/// members.
///
/// ```
/// use olap::kernels::KeyLut;
///
/// let lut = KeyLut::new(10, [2u32, 5, 9]);
/// assert!(lut.contains(5));
/// assert!(!lut.contains(3));
/// assert!(!lut.contains(64)); // outside the domain
/// ```
#[derive(Debug, Clone)]
pub struct KeyLut {
    bits: Vec<u64>,
    domain: u32,
}

impl KeyLut {
    /// Build a table over keys `0..domain`, setting membership for
    /// every key yielded by `allowed` (out-of-domain keys are ignored).
    pub fn new(domain: u32, allowed: impl IntoIterator<Item = u32>) -> Self {
        let words = (domain as usize).div_ceil(64);
        let mut bits = vec![0u64; words];
        for key in allowed {
            if key < domain {
                bits[key as usize / 64] |= 1u64 << (key % 64);
            }
        }
        KeyLut { bits, domain }
    }

    /// Membership probe: one shift, one mask, no search.
    #[inline]
    pub fn contains(&self, key: u32) -> bool {
        key < self.domain && (self.bits[key as usize / 64] >> (key % 64)) & 1 == 1
    }
}

/// One bit per row of a morsel: set means the row survives every
/// predicate folded in so far.
///
/// Bitmaps start with all rows selected ([`SelectionBitmap::all`])
/// and narrow monotonically as predicates are `AND`ed in. The final
/// step converts set bits to a selection vector of row indices for
/// the grouping kernel.
///
/// ```
/// use olap::kernels::{KeyLut, SelectionBitmap};
///
/// let keys = [0u32, 1, 0, 2, 1, 0];
/// let mut sel = SelectionBitmap::all(keys.len());
/// sel.and_key_in(&keys, &KeyLut::new(3, [0u32, 2]));
/// assert_eq!(sel.count(), 4);
///
/// let mut rows = Vec::new();
/// sel.collect_into(&mut rows);
/// assert_eq!(rows, vec![0, 2, 3, 5]);
/// ```
#[derive(Debug, Clone)]
pub struct SelectionBitmap {
    words: Vec<u64>,
    len: usize,
}

impl SelectionBitmap {
    /// Bitmap of `len` rows, all selected. Trailing bits of the last
    /// word stay clear so popcounts and expansion need no epilogue.
    pub fn all(len: usize) -> Self {
        let n_words = len.div_ceil(64);
        let mut words = vec![u64::MAX; n_words];
        let tail = len % 64;
        if tail != 0 {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
        SelectionBitmap { words, len }
    }

    /// Number of rows the bitmap covers.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap covers zero rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Surviving-row count (popcount over the words).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether row `i` is still selected.
    #[inline]
    pub fn is_set(&self, i: usize) -> bool {
        i < self.len && (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// `AND` in a dictionary-membership predicate: row `i` survives
    /// only if `lut.contains(keys[i])`. `keys` must cover every row
    /// (`keys.len() >= self.len()`); extra entries are ignored.
    pub fn and_key_in(&mut self, keys: &[u32], lut: &KeyLut) {
        let n = self.len.min(keys.len());
        for (w, chunk) in self.words.iter_mut().zip(keys[..n].chunks(64)) {
            let mut mask = 0u64;
            for (bit, &k) in chunk.iter().enumerate() {
                mask |= (lut.contains(k) as u64) << bit;
            }
            *w &= mask;
        }
    }

    /// `AND` in a measure-range predicate: row `i` survives only if
    /// the value is valid (non-missing) and in the half-open range
    /// `lo <= values[i] < hi` (the [`CubeFilter::measure_between`]
    /// convention). Comparisons are computed unconditionally and
    /// folded into the mask, so the loop body carries no
    /// data-dependent branch.
    ///
    /// [`CubeFilter::measure_between`]: crate::CubeFilter::measure_between
    pub fn and_measure_between(&mut self, values: &[f64], valid: &[bool], lo: f64, hi: f64) {
        let n = self.len.min(values.len()).min(valid.len());
        for ((w, vals), oks) in self
            .words
            .iter_mut()
            .zip(values[..n].chunks(64))
            .zip(valid[..n].chunks(64))
        {
            let mut mask = 0u64;
            for (bit, (&x, &ok)) in vals.iter().zip(oks.iter()).enumerate() {
                let hit = ok & (x >= lo) & (x < hi);
                mask |= (hit as u64) << bit;
            }
            *w &= mask;
        }
    }

    /// Expand set bits into row indices, appending to `out` in
    /// ascending order. `out` is not cleared first, so a caller can
    /// reuse one scratch vector across morsels.
    pub fn collect_into(&self, out: &mut Vec<u32>) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros();
                out.push((wi * 64) as u32 + bit);
                w &= w - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_masks_trailing_bits() {
        let sel = SelectionBitmap::all(70);
        assert_eq!(sel.count(), 70);
        assert!(sel.is_set(69));
        assert!(!sel.is_set(70));

        let exact = SelectionBitmap::all(64);
        assert_eq!(exact.count(), 64);

        let empty = SelectionBitmap::all(0);
        assert_eq!(empty.count(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn key_filter_matches_scalar_probe() {
        let keys: Vec<u32> = (0..200).map(|i| (i * 7) % 11).collect();
        let allowed = [1u32, 4, 9];
        let lut = KeyLut::new(11, allowed.iter().copied());
        let mut sel = SelectionBitmap::all(keys.len());
        sel.and_key_in(&keys, &lut);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(sel.is_set(i), allowed.contains(&k), "row {i}");
        }
    }

    #[test]
    fn measure_filter_requires_validity_and_range() {
        let values = [1.0, 5.0, 3.0, f64::NAN, 2.5];
        let valid = [true, true, false, true, true];
        let mut sel = SelectionBitmap::all(values.len());
        sel.and_measure_between(&values, &valid, 2.0, 5.0);
        // row 0: below the range; row 1: at the (exclusive) upper
        // bound; row 2: invalid; row 3: NaN fails both comparisons;
        // only row 4 survives.
        let mut rows = Vec::new();
        sel.collect_into(&mut rows);
        assert_eq!(rows, vec![4]);
    }

    #[test]
    fn predicates_conjoin() {
        let keys = [0u32, 1, 0, 1, 0, 1];
        let values = [1.0, 1.0, 9.0, 9.0, 1.0, 9.0];
        let valid = [true; 6];
        let mut sel = SelectionBitmap::all(6);
        sel.and_key_in(&keys, &KeyLut::new(2, [1u32]));
        sel.and_measure_between(&values, &valid, 0.0, 5.0);
        let mut rows = Vec::new();
        sel.collect_into(&mut rows);
        assert_eq!(rows, vec![1]);
    }

    #[test]
    fn collect_appends_without_clearing() {
        let sel = SelectionBitmap::all(3);
        let mut rows = vec![99u32];
        sel.collect_into(&mut rows);
        assert_eq!(rows, vec![99, 0, 1, 2]);
    }

    #[test]
    fn lut_handles_empty_domain() {
        let lut = KeyLut::new(0, std::iter::empty());
        assert!(!lut.contains(0));
    }
}
