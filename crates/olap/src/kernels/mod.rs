//! Vectorized execution kernels: the branch-light columnar engine
//! behind segmented cube builds.
//!
//! The legacy scan walked fact rows one at a time — per row it probed
//! a `BTreeSet` for every attribute filter, allocated a `Vec<u32>`
//! group key and rehashed it into a cell map. These kernels replace
//! that loop with three passes over dense column slices, each a tight
//! loop over flat fixed-width arrays the optimiser can unroll and
//! auto-vectorize:
//!
//! 1. **Filter** ([`filter`]) — every predicate folds into a
//!    [`SelectionBitmap`] (one bit per row): dictionary filters
//!    become a [`KeyLut`] probe, measure ranges a branchless
//!    compare-and-mask. The bitmap then yields a selection vector of
//!    surviving row indices.
//! 2. **Group** ([`group`]) — surviving rows are assigned dense group
//!    ids by a [`GroupLayout`]: dictionary-coded surrogate keys
//!    compose by mixed-radix arithmetic (`gid = k₀ + c₀·k₁ + …`), so
//!    grouping is integer math, not hashing, whenever the coordinate
//!    domain fits [`group::MAX_DENSE_GROUPS`].
//! 3. **Aggregate** ([`lanes`]) — one flat accumulator lane per
//!    statistic (row count, valid count, sum, min, max, distinct
//!    set), indexed by group id. Lanes merge element-wise across
//!    workers and finalize into the exact same
//!    [`crate::CellStats`] accumulators the row-at-a-time path
//!    produced, so every downstream operator (roll-up, slice,
//!    incremental delta patching) is untouched.
//!
//! Work distribution is **morsel-driven** ([`morsel`]): segments are
//! cut into ~64k-row morsels pushed onto a shared [`MorselQueue`];
//! workers pull the next morsel as they finish the last, so a
//! straggler holding one expensive segment no longer serializes the
//! build the way static per-worker partitions did.
//!
//! The kernels are deliberately freestanding — they know nothing about
//! warehouses or specs, only about slices, dictionaries and group
//! domains — which is what makes them unit-testable and reusable for
//! future workloads (the treatment-regimen batch jobs will group and
//! aggregate the same way).

pub mod filter;
pub mod group;
pub mod lanes;
pub mod morsel;

pub use filter::{KeyLut, SelectionBitmap};
pub use group::{GroupLayout, MAX_DENSE_GROUPS};
pub use lanes::{AggLanes, LaneKind};
pub use morsel::{Morsel, MorselQueue, DEFAULT_MORSEL_ROWS};
