//! Fixed-width aggregate lanes.
//!
//! Instead of a `HashMap<Vec<u32>, CellStats>` probed per row, the
//! vectorized path keeps one flat array ("lane") per statistic,
//! indexed by the dense group id from
//! [`GroupLayout`](crate::kernels::GroupLayout). Accumulation is then
//! `lane[gid] op= value` in a tight loop; workers merge lanes
//! element-wise; only at finalisation do occupied groups materialise
//! into the [`CellStats`] accumulators the rest of the engine
//! understands — bit-for-bit equal to what sequential
//! [`CellStats::push`] calls would have produced.

use crate::aggregate::CellStats;
use clinical_types::Value;
use std::collections::HashSet;

/// Which lanes a build needs, mirroring
/// [`MeasureRef`](crate::MeasureRef).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneKind {
    /// Row counting only (`MeasureRef::RowCount`).
    Rows,
    /// Numeric measure lanes: valid / sum / min / max
    /// (`MeasureRef::Measure`).
    Measure,
    /// Distinct-value sets over a degenerate column
    /// (`MeasureRef::DistinctDegenerate`).
    Distinct,
}

/// Per-group accumulator lanes for one worker.
///
/// ```
/// use olap::kernels::{AggLanes, LaneKind};
///
/// let mut lanes = AggLanes::new(LaneKind::Measure, 2);
/// let gids = [0u32, 1, 0];
/// let sel = [0u32, 1, 2];
/// let values = [5.0, 2.0, 7.0];
/// let valid = [true, true, false];
/// lanes.accumulate_measure(&gids, &sel, &values, &valid);
///
/// let cells = lanes.into_cells();
/// assert_eq!(cells.len(), 2);
/// let (gid0, stats0) = &cells[0];
/// assert_eq!(*gid0, 0);
/// assert_eq!(stats0.rows, 2);   // both rows routed to group 0
/// assert_eq!(stats0.valid, 1);  // but only one carried a value
/// assert_eq!(stats0.sum, 5.0);
/// ```
#[derive(Debug)]
pub struct AggLanes {
    kind: LaneKind,
    rows: Vec<u64>,
    valid: Vec<u64>,
    sum: Vec<f64>,
    min: Vec<f64>,
    max: Vec<f64>,
    distinct: Vec<HashSet<Value>>,
}

impl AggLanes {
    /// Allocate lanes for `groups` dense group ids. Only the lanes
    /// `kind` needs are sized; the rest stay empty.
    pub fn new(kind: LaneKind, groups: usize) -> Self {
        let measure = kind == LaneKind::Measure;
        AggLanes {
            kind,
            rows: vec![0; groups],
            valid: if measure { vec![0; groups] } else { Vec::new() },
            sum: if measure {
                vec![0.0; groups]
            } else {
                Vec::new()
            },
            min: if measure {
                vec![0.0; groups]
            } else {
                Vec::new()
            },
            max: if measure {
                vec![0.0; groups]
            } else {
                Vec::new()
            },
            distinct: if kind == LaneKind::Distinct {
                (0..groups).map(|_| HashSet::new()).collect()
            } else {
                Vec::new()
            },
        }
    }

    /// The lane configuration this accumulator was built with.
    #[inline]
    pub fn kind(&self) -> LaneKind {
        self.kind
    }

    /// Count one row per group id (the `RowCount` kernel, also the
    /// fallback when a measure column is absent from the segment).
    pub fn accumulate_rows(&mut self, gids: &[u32]) {
        for &g in gids {
            if let Some(r) = self.rows.get_mut(g as usize) {
                *r += 1;
            }
        }
    }

    /// Fold measure values in: `gids[i]` is the group of selected row
    /// `sel[i]`, whose value is `values[sel[i]]` when
    /// `valid[sel[i]]`. Rows with missing values still count toward
    /// the group's row total, exactly like
    /// [`CellStats::push`]`(None, _)`.
    pub fn accumulate_measure(
        &mut self,
        gids: &[u32],
        sel: &[u32],
        values: &[f64],
        valid: &[bool],
    ) {
        debug_assert_eq!(self.kind, LaneKind::Measure);
        for (&g, &row) in gids.iter().zip(sel.iter()) {
            let (g, row) = (g as usize, row as usize);
            if g >= self.rows.len() || row >= values.len() {
                continue;
            }
            self.rows[g] += 1;
            if valid.get(row).copied().unwrap_or(false) {
                let x = values[row];
                if self.valid[g] == 0 {
                    self.min[g] = x;
                    self.max[g] = x;
                } else {
                    if x < self.min[g] {
                        self.min[g] = x;
                    }
                    if x > self.max[g] {
                        self.max[g] = x;
                    }
                }
                self.valid[g] += 1;
                self.sum[g] += x;
            }
        }
    }

    /// Fold degenerate values into per-group distinct sets; every
    /// selected row also counts toward its group's row total.
    pub fn accumulate_distinct(&mut self, gids: &[u32], sel: &[u32], values: &[Value]) {
        debug_assert_eq!(self.kind, LaneKind::Distinct);
        for (&g, &row) in gids.iter().zip(sel.iter()) {
            let (g, row) = (g as usize, row as usize);
            if g >= self.rows.len() {
                continue;
            }
            self.rows[g] += 1;
            if let Some(v) = values.get(row) {
                self.distinct[g].insert(v.clone());
            }
        }
    }

    /// Merge another worker's lanes element-wise (same semantics as
    /// [`CellStats::merge`] per group). Both sides must share the
    /// kind and group count; mismatched lanes are merged over the
    /// common prefix.
    pub fn merge(&mut self, other: AggLanes) {
        for (r, o) in self.rows.iter_mut().zip(other.rows.iter()) {
            *r += o;
        }
        if self.kind == LaneKind::Measure {
            let n = self.valid.len().min(other.valid.len());
            for g in 0..n {
                if other.valid[g] > 0 {
                    if self.valid[g] == 0 {
                        self.min[g] = other.min[g];
                        self.max[g] = other.max[g];
                    } else {
                        if other.min[g] < self.min[g] {
                            self.min[g] = other.min[g];
                        }
                        if other.max[g] > self.max[g] {
                            self.max[g] = other.max[g];
                        }
                    }
                    self.valid[g] += other.valid[g];
                    self.sum[g] += other.sum[g];
                }
            }
        }
        if self.kind == LaneKind::Distinct {
            for (mine, theirs) in self.distinct.iter_mut().zip(other.distinct) {
                if mine.is_empty() {
                    *mine = theirs;
                } else {
                    mine.extend(theirs);
                }
            }
        }
    }

    /// Materialise occupied groups (row count > 0) into
    /// [`CellStats`], in ascending group-id order.
    pub fn into_cells(self) -> Vec<(u32, CellStats)> {
        let AggLanes {
            kind,
            rows,
            valid,
            sum,
            min,
            max,
            mut distinct,
        } = self;
        let mut out = Vec::new();
        for (g, &r) in rows.iter().enumerate() {
            if r == 0 {
                continue;
            }
            let mut stats = CellStats::new(kind == LaneKind::Distinct);
            stats.rows = r;
            if kind == LaneKind::Measure {
                stats.valid = valid[g];
                stats.sum = sum[g];
                stats.min = min[g];
                stats.max = max[g];
            }
            if kind == LaneKind::Distinct {
                stats.distinct = Some(std::mem::take(&mut distinct[g]));
            }
            out.push((g as u32, stats));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push_reference(pushes: &[(u32, Option<f64>)], groups: usize) -> Vec<(u32, CellStats)> {
        let mut cells: Vec<CellStats> = vec![CellStats::new(false); groups];
        let mut touched = vec![false; groups];
        for &(g, v) in pushes {
            cells[g as usize].push(v, None);
            touched[g as usize] = true;
        }
        cells
            .into_iter()
            .enumerate()
            .filter(|(g, _)| touched[*g])
            .map(|(g, c)| (g as u32, c))
            .collect()
    }

    #[test]
    fn measure_lanes_match_cellstats_push() {
        let pushes = [
            (0u32, Some(5.0)),
            (1, None),
            (0, Some(-2.5)),
            (2, Some(0.0)),
            (0, None),
            (2, Some(f64::NAN)),
        ];
        let mut lanes = AggLanes::new(LaneKind::Measure, 4);
        let sel: Vec<u32> = (0..pushes.len() as u32).collect();
        let gids: Vec<u32> = pushes.iter().map(|p| p.0).collect();
        let values: Vec<f64> = pushes.iter().map(|p| p.1.unwrap_or(0.0)).collect();
        let valid: Vec<bool> = pushes.iter().map(|p| p.1.is_some()).collect();
        lanes.accumulate_measure(&gids, &sel, &values, &valid);

        let got = lanes.into_cells();
        let want = push_reference(&pushes, 4);
        assert_eq!(got.len(), want.len());
        for ((gg, gc), (wg, wc)) in got.iter().zip(want.iter()) {
            assert_eq!(gg, wg);
            assert_eq!(gc.rows, wc.rows);
            assert_eq!(gc.valid, wc.valid);
            assert_eq!(gc.sum.to_bits(), wc.sum.to_bits());
            assert_eq!(gc.min.to_bits(), wc.min.to_bits());
            assert_eq!(gc.max.to_bits(), wc.max.to_bits());
        }
    }

    #[test]
    fn nan_first_value_pins_min_max_like_push() {
        let mut lanes = AggLanes::new(LaneKind::Measure, 1);
        lanes.accumulate_measure(&[0, 0], &[0, 1], &[f64::NAN, 3.0], &[true, true]);
        let mut reference = CellStats::new(false);
        reference.push(Some(f64::NAN), None);
        reference.push(Some(3.0), None);
        let (_, got) = lanes.into_cells().remove(0);
        assert_eq!(got.min.to_bits(), reference.min.to_bits());
        assert_eq!(got.max.to_bits(), reference.max.to_bits());
    }

    #[test]
    fn merge_matches_single_worker() {
        let mut whole = AggLanes::new(LaneKind::Measure, 2);
        let mut left = AggLanes::new(LaneKind::Measure, 2);
        let mut right = AggLanes::new(LaneKind::Measure, 2);
        let values = [1.0, 4.0, 2.0, 8.0];
        let valid = [true, true, false, true];
        let gids = [0u32, 1, 0, 1];
        let sel = [0u32, 1, 2, 3];
        whole.accumulate_measure(&gids, &sel, &values, &valid);
        left.accumulate_measure(&gids[..2], &sel[..2], &values, &valid);
        right.accumulate_measure(&gids[2..], &sel[2..], &values, &valid);
        left.merge(right);
        let got = left.into_cells();
        let want = whole.into_cells();
        assert_eq!(got.len(), want.len());
        for ((gg, gc), (wg, wc)) in got.iter().zip(want.iter()) {
            assert_eq!(gg, wg);
            assert_eq!((gc.rows, gc.valid, gc.sum), (wc.rows, wc.valid, wc.sum));
            assert_eq!((gc.min, gc.max), (wc.min, wc.max));
        }
    }

    #[test]
    fn distinct_lanes_collect_unique_values() {
        let mut lanes = AggLanes::new(LaneKind::Distinct, 2);
        let values = [Value::Int(1), Value::Int(2), Value::Int(1)];
        lanes.accumulate_distinct(&[0, 0, 1], &[0, 1, 2], &values);
        let cells = lanes.into_cells();
        assert_eq!(cells[0].1.rows, 2);
        assert_eq!(cells[0].1.distinct.as_ref().map(HashSet::len), Some(2));
        assert_eq!(cells[1].1.distinct.as_ref().map(HashSet::len), Some(1));
    }

    #[test]
    fn rows_lanes_count_per_group() {
        let mut lanes = AggLanes::new(LaneKind::Rows, 3);
        lanes.accumulate_rows(&[0, 2, 2, 0, 2]);
        let cells = lanes.into_cells();
        assert_eq!(cells, {
            let mut a = CellStats::new(false);
            a.rows = 2;
            let mut b = CellStats::new(false);
            b.rows = 3;
            vec![(0, a), (2, b)]
        });
    }

    #[test]
    fn empty_lanes_yield_no_cells() {
        let lanes = AggLanes::new(LaneKind::Measure, 8);
        assert!(lanes.into_cells().is_empty());
    }
}
