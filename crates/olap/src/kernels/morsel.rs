//! Morsel-driven work distribution.
//!
//! Surviving segments are cut into fixed-size row ranges ("morsels")
//! planned up front into a shared queue. Workers claim the next
//! morsel with a single atomic `fetch_add` — no locks, no rebalancing
//! protocol — so a worker stuck on an expensive morsel simply stops
//! claiming new ones while its peers drain the rest. This replaces
//! the static per-worker segment partition, whose tail latency was
//! set by the unluckiest worker's share.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default morsel size in rows. Large enough that per-morsel overhead
/// (atomic claim, span, lane merge) amortises to noise; small enough
/// that a 24-segment scan still yields useful parallelism and the
/// working set of one morsel's columns stays cache-resident.
pub const DEFAULT_MORSEL_ROWS: usize = 64 * 1024;

/// A unit of scan work: a row range within one segment.
///
/// `segment` indexes the *caller's* survivor list (segments remaining
/// after zone-map pruning), not the global segment id space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Morsel {
    /// Index of the segment in the caller's survivor list.
    pub segment: usize,
    /// Row range within that segment.
    pub rows: Range<usize>,
}

/// Lock-free single-use work queue of planned morsels.
///
/// ```
/// use olap::kernels::MorselQueue;
///
/// // Two segments of 100k and 30k rows, 64k-row morsels.
/// let queue = MorselQueue::plan(&[100_000, 30_000], 64 * 1024);
/// assert_eq!(queue.len(), 3);
/// let first = queue.pop().unwrap();
/// assert_eq!((first.segment, first.rows), (0, 0..65_536));
/// let second = queue.pop().unwrap();
/// assert_eq!((second.segment, second.rows), (0, 65_536..100_000));
/// let third = queue.pop().unwrap();
/// assert_eq!((third.segment, third.rows), (1, 0..30_000));
/// assert!(queue.pop().is_none());
/// ```
#[derive(Debug)]
pub struct MorselQueue {
    morsels: Vec<Morsel>,
    next: AtomicUsize,
}

impl MorselQueue {
    /// Cut each segment's row count into morsels of at most
    /// `morsel_rows` rows (clamped to ≥ 1), in segment order. Empty
    /// segments contribute no morsels.
    pub fn plan(segment_rows: &[usize], morsel_rows: usize) -> Self {
        let step = morsel_rows.max(1);
        let mut morsels = Vec::new();
        for (segment, &rows) in segment_rows.iter().enumerate() {
            let mut start = 0;
            while start < rows {
                let end = (start + step).min(rows);
                morsels.push(Morsel {
                    segment,
                    rows: start..end,
                });
                start = end;
            }
        }
        MorselQueue {
            morsels,
            next: AtomicUsize::new(0),
        }
    }

    /// Total number of planned morsels (claimed or not).
    pub fn len(&self) -> usize {
        self.morsels.len()
    }

    /// True when nothing was planned at all.
    pub fn is_empty(&self) -> bool {
        self.morsels.is_empty()
    }

    /// Claim the next unclaimed morsel; `None` once the queue is
    /// drained. Safe to call from many threads — each morsel is
    /// handed out exactly once.
    pub fn pop(&self) -> Option<Morsel> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        self.morsels.get(i).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_covers_every_row_exactly_once() {
        let queue = MorselQueue::plan(&[10, 0, 25, 7], 8);
        let mut seen = [vec![false; 10], vec![], vec![false; 25], vec![false; 7]];
        while let Some(m) = queue.pop() {
            assert!(m.rows.end - m.rows.start <= 8);
            for r in m.rows {
                assert!(!seen[m.segment][r], "row claimed twice");
                seen[m.segment][r] = true;
            }
        }
        assert!(seen.iter().flatten().all(|&b| b));
    }

    #[test]
    fn zero_morsel_rows_is_clamped() {
        let queue = MorselQueue::plan(&[3], 0);
        assert_eq!(queue.len(), 3);
    }

    #[test]
    fn concurrent_pops_partition_the_queue() {
        let queue = MorselQueue::plan(&[1000], 10);
        let total = queue.len();
        let counts: Vec<usize> = crossbeam::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|_| {
                        let mut n = 0;
                        while queue.pop().is_some() {
                            n += 1;
                        }
                        n
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap_or(0)).collect()
        })
        .unwrap_or_default();
        assert_eq!(counts.iter().sum::<usize>(), total);
    }

    #[test]
    fn empty_plan_is_empty() {
        let queue = MorselQueue::plan(&[], DEFAULT_MORSEL_ROWS);
        assert!(queue.is_empty());
        assert!(queue.pop().is_none());
    }
}
