//! MDX execution against a warehouse.
//!
//! [`execute_query`] runs the semantic analyzer first and fails with
//! rendered diagnostics before any cube is built; callers that have
//! already validated (the serving layer rejects invalid queries at
//! admission) use [`execute_query_unchecked`] as the fast path.

use super::parser::{
    parse_mdx_spanned, Axis, AxisSet, Condition, MdxQuery, MeasureClause, QuerySpans,
};
use crate::aggregate::{Aggregate, MeasureRef};
use crate::cube::{Cube, CubeFilter, CubeSpec, ScanStats};
use crate::pivot::PivotTable;
use crate::semantic::analyze_mdx;
use analyze::Catalog;
use clinical_types::{Error, Result, Value};
use warehouse::Warehouse;

/// The attribute an axis resolves to, plus any implied filter or dice.
struct ResolvedAxis {
    attribute: String,
    /// Equality filter implied by `.CHILDREN` (parent = member).
    implied_filter: Option<(String, String)>,
    /// Dice implied by an explicit member set.
    dice: Option<Vec<Value>>,
    non_empty: bool,
}

fn resolve_axis(warehouse: &Warehouse, axis: &Axis) -> Result<ResolvedAxis> {
    match &axis.set {
        AxisSet::Members(attr) => Ok(ResolvedAxis {
            attribute: attr.clone(),
            implied_filter: None,
            dice: None,
            non_empty: axis.non_empty,
        }),
        AxisSet::Explicit(attr, members) => Ok(ResolvedAxis {
            attribute: attr.clone(),
            implied_filter: None,
            dice: Some(members.iter().map(|m| Value::from(m.as_str())).collect()),
            non_empty: axis.non_empty,
        }),
        AxisSet::Children { parent, member } => {
            let dim = warehouse
                .star()
                .dimension_of_attribute(parent)
                .ok_or_else(|| Error::invalid(format!("no dimension owns `{parent}`")))?;
            let child = dim
                .hierarchies
                .iter()
                .find_map(|h| h.drill_down_from(parent))
                .ok_or_else(|| {
                    Error::invalid(format!(
                        "`[{parent}].[{member}].CHILDREN` needs a finer hierarchy level under `{parent}`"
                    ))
                })?;
            Ok(ResolvedAxis {
                attribute: child.to_string(),
                implied_filter: Some((parent.clone(), member.clone())),
                dice: None,
                non_empty: axis.non_empty,
            })
        }
    }
}

/// Execute a parsed query against `warehouse`, validating it first.
///
/// Semantic errors (unknown names, type mismatches, illegal
/// aggregations) come back as a single `Error` whose message is the
/// rendered diagnostic report. Callers that already ran the analyzer
/// should use [`execute_query_unchecked`] instead.
pub fn execute_query(warehouse: &Warehouse, query: &MdxQuery) -> Result<PivotTable> {
    let catalog = Catalog::from_star(warehouse.star());
    analyze_mdx(&catalog, query, &QuerySpans::default())
        .into_result()
        .map_err(|diags| Error::invalid(diags.to_string()))?;
    execute_query_unchecked(warehouse, query)
}

/// Execute a parsed query without the semantic pre-pass.
///
/// The serving layer rejects invalid queries at admission, so its
/// workers call this directly; unvalidated queries may fail with
/// lower-level (but still non-panicking) errors from the cube builder.
pub fn execute_query_unchecked(warehouse: &Warehouse, query: &MdxQuery) -> Result<PivotTable> {
    let mut discard = obs::ProfileBuilder::start();
    execute_query_profiled(warehouse, query, &mut discard)
}

/// Execute a parsed query, attributing its work to `profile`: the cube
/// scan lands in [`obs::Phase::Execute`], pivot assembly in
/// [`obs::Phase::Aggregate`], with rows-scanned / cells-emitted volume
/// counters. The serving layer's workers call this to build the
/// [`obs::QueryProfile`] attached to every executed outcome.
pub fn execute_query_profiled(
    warehouse: &Warehouse,
    query: &MdxQuery,
    profile: &mut obs::ProfileBuilder,
) -> Result<PivotTable> {
    // Register the execution as a bounded watchdog task so a wedged
    // scan shows up in the folded profile and trips stall detection
    // even when the caller is not a registered serve worker.
    let _watchdog_scope = obs::task_scope("olap.execute", std::time::Duration::from_secs(60));
    let mut span = obs::span("olap.mdx_execute");
    if query.cube != warehouse.star().fact.name {
        return Err(Error::invalid(format!(
            "unknown cube `[{}]` (the warehouse exposes `[{}]`)",
            query.cube,
            warehouse.star().fact.name
        )));
    }

    let rows = resolve_axis(warehouse, &query.rows)?;
    let cols = resolve_axis(warehouse, &query.columns)?;

    let mut filter = CubeFilter::all();
    for condition in &query.conditions {
        match condition {
            Condition::AttributeEquals(attr, value) => {
                filter = filter.equals(attr.clone(), value.as_str());
            }
            Condition::MeasureBetween(measure, lo, hi) => {
                filter = filter.measure_between(measure.clone(), *lo, *hi);
            }
        }
    }
    for axis in [&rows, &cols] {
        if let Some((parent, member)) = &axis.implied_filter {
            filter = filter.equals(parent.clone(), member.as_str());
        }
    }

    let (measure, agg) = match &query.measure {
        MeasureClause::CountRows => (MeasureRef::RowCount, Aggregate::Count),
        MeasureClause::CountDistinct(col) => (
            MeasureRef::DistinctDegenerate(col.clone()),
            Aggregate::Count,
        ),
        MeasureClause::Aggregate(agg, m) => (MeasureRef::Measure(m.clone()), *agg),
    };

    let spec = CubeSpec {
        axes: vec![rows.attribute.clone(), cols.attribute.clone()],
        measure,
        agg,
        filter,
        strategy: Default::default(),
    };
    let (cube, stats) = profile.time(obs::Phase::Execute, || -> Result<(Cube, ScanStats)> {
        let (mut cube, stats) = Cube::build_with_stats(warehouse, &spec)?;
        for axis in [&rows, &cols] {
            if let Some(values) = &axis.dice {
                cube = cube.dice(&axis.attribute, values)?;
            }
        }
        Ok((cube, stats))
    })?;
    profile.rows_scanned(stats.rows_scanned);
    profile.segments_pruned(stats.segments_pruned);
    profile.morsels(stats.morsels_executed, stats.rows_scanned);

    let pivot = profile.time(obs::Phase::Aggregate, || -> Result<PivotTable> {
        let mut pivot = PivotTable::from_cube(&cube, &rows.attribute, &cols.attribute)?;
        if rows.non_empty {
            pivot = pivot.drop_empty_rows();
        }
        if cols.non_empty {
            pivot = pivot.drop_empty_columns();
        }
        Ok(pivot)
    })?;
    let cells = pivot.cells.iter().flatten().filter(|c| c.is_some()).count() as u64;
    profile.cells_emitted(cells);
    span.record("cells", cells);
    Ok(pivot)
}

/// Parse, validate and execute an MDX string against `warehouse`.
///
/// Because the query text is at hand, semantic diagnostics carry
/// caret snippets pointing at the offending fragment.
pub fn execute_mdx(warehouse: &Warehouse, mdx: &str) -> Result<PivotTable> {
    let (query, spans) = parse_mdx_spanned(mdx)?;
    let catalog = Catalog::from_star(warehouse.star());
    let mut diags = analyze_mdx(&catalog, &query, &spans);
    diags.query = Some(mdx.to_string());
    diags
        .into_result()
        .map_err(|diags| Error::invalid(diags.to_string()))?;
    execute_query_unchecked(warehouse, &query)
}
