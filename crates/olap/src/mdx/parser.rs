//! MDX parser: tokens → [`MdxQuery`].

use super::lexer::{tokenize, Token};
use crate::aggregate::Aggregate;
use clinical_types::{Error, Result};

/// An axis specification.
#[derive(Debug, Clone, PartialEq)]
pub enum AxisSet {
    /// `[Attr].MEMBERS` — every observed member of the attribute.
    Members(String),
    /// `{[Attr].[v], …}` — an explicit member list (a dice).
    Explicit(String, Vec<String>),
    /// `[Attr].[member].CHILDREN` — the next finer hierarchy level,
    /// restricted to facts under the named member (Fig. 5's
    /// "drill into the 60–80 group" as a single axis expression).
    Children {
        /// The coarse attribute.
        parent: String,
        /// The member whose children are requested.
        member: String,
    },
}

/// One axis with its placement modifiers.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// The member set.
    pub set: AxisSet,
    /// `NON EMPTY`: drop headers whose every cell is empty.
    pub non_empty: bool,
}

/// One `WHERE` condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// `[Attr] = 'value'`
    AttributeEquals(String, String),
    /// `[Measure] BETWEEN lo AND hi`
    MeasureBetween(String, f64, f64),
}

/// The `MEASURE` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum MeasureClause {
    /// `COUNT(*)`
    CountRows,
    /// `COUNT(DISTINCT [col])`
    CountDistinct(String),
    /// `AGG([measure])`
    Aggregate(Aggregate, String),
}

/// A parsed MDX query.
#[derive(Debug, Clone, PartialEq)]
pub struct MdxQuery {
    /// Axis placed `ON COLUMNS`.
    pub columns: Axis,
    /// Axis placed `ON ROWS`.
    pub rows: Axis,
    /// Cube name from the `FROM` clause.
    pub cube: String,
    /// `WHERE` conditions (conjunctive).
    pub conditions: Vec<Condition>,
    /// The measure; defaults to `COUNT(*)` when the clause is omitted.
    pub measure: MeasureClause,
}

impl MdxQuery {
    /// Canonical fingerprint of the *result* this query produces.
    /// `WHERE` is a conjunction, so condition order is irrelevant and
    /// the conditions are sorted; axis placement, member sets and the
    /// measure clause all stay significant.
    pub fn canonical(&self) -> String {
        let mut conds: Vec<String> = self.conditions.iter().map(|c| format!("{c:?}")).collect();
        conds.sort();
        format!(
            "mdx|cube={}|cols={:?}|rows={:?}|where=[{}]|measure={:?}",
            self.cube,
            self.columns,
            self.rows,
            conds.join(" AND "),
            self.measure
        )
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| Error::invalid("unexpected end of MDX query"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_word(&mut self, word: &str) -> Result<()> {
        match self.next()? {
            Token::Word(w) if w == word => Ok(()),
            other => Err(Error::invalid(format!(
                "expected `{word}`, found {other:?}"
            ))),
        }
    }

    fn expect(&mut self, token: Token) -> Result<()> {
        let found = self.next()?;
        if found == token {
            Ok(())
        } else {
            Err(Error::invalid(format!(
                "expected {token:?}, found {found:?}"
            )))
        }
    }

    fn bracketed(&mut self) -> Result<String> {
        match self.next()? {
            Token::Bracketed(name) => Ok(name),
            other => Err(Error::invalid(format!(
                "expected [bracketed name], found {other:?}"
            ))),
        }
    }

    fn number(&mut self) -> Result<f64> {
        match self.next()? {
            Token::Number(n) => Ok(n),
            other => Err(Error::invalid(format!("expected number, found {other:?}"))),
        }
    }

    /// axis := [NON EMPTY] axis_set
    fn axis(&mut self) -> Result<Axis> {
        let mut non_empty = false;
        if matches!(self.peek(), Some(Token::Word(w)) if w == "NON") {
            self.next()?;
            self.expect_word("EMPTY")?;
            non_empty = true;
        }
        Ok(Axis {
            set: self.axis_set()?,
            non_empty,
        })
    }

    /// axis_set := [Attr].MEMBERS
    ///           | [Attr].[member].CHILDREN
    ///           | '{' [Attr].[v] (',' [Attr].[v])* '}'
    fn axis_set(&mut self) -> Result<AxisSet> {
        if self.peek() == Some(&Token::LBrace) {
            self.expect(Token::LBrace)?;
            let mut attribute: Option<String> = None;
            let mut members = Vec::new();
            loop {
                let attr = self.bracketed()?;
                self.expect(Token::Dot)?;
                let member = self.bracketed()?;
                match &attribute {
                    None => attribute = Some(attr),
                    Some(a) if *a == attr => {}
                    Some(a) => {
                        return Err(Error::invalid(format!(
                            "axis set mixes attributes `{a}` and `{attr}`"
                        )))
                    }
                }
                members.push(member);
                match self.next()? {
                    Token::Comma => continue,
                    Token::RBrace => break,
                    other => {
                        return Err(Error::invalid(format!(
                            "expected `,` or `}}` in member set, found {other:?}"
                        )))
                    }
                }
            }
            let attribute = attribute.ok_or_else(|| Error::invalid("empty member set"))?;
            Ok(AxisSet::Explicit(attribute, members))
        } else {
            let attr = self.bracketed()?;
            self.expect(Token::Dot)?;
            match self.next()? {
                Token::Word(w) if w == "MEMBERS" => Ok(AxisSet::Members(attr)),
                Token::Bracketed(member) => {
                    self.expect(Token::Dot)?;
                    self.expect_word("CHILDREN")?;
                    Ok(AxisSet::Children {
                        parent: attr,
                        member,
                    })
                }
                other => Err(Error::invalid(format!(
                    "expected MEMBERS or [member].CHILDREN, found {other:?}"
                ))),
            }
        }
    }

    fn condition(&mut self) -> Result<Condition> {
        let name = self.bracketed()?;
        match self.next()? {
            Token::Equals => match self.next()? {
                Token::Str(s) => Ok(Condition::AttributeEquals(name, s)),
                other => Err(Error::invalid(format!(
                    "expected 'string' after `=`, found {other:?}"
                ))),
            },
            Token::Word(w) if w == "BETWEEN" => {
                let lo = self.number()?;
                self.expect_word("AND")?;
                let hi = self.number()?;
                Ok(Condition::MeasureBetween(name, lo, hi))
            }
            other => Err(Error::invalid(format!(
                "expected `=` or `BETWEEN` in condition, found {other:?}"
            ))),
        }
    }

    fn measure_clause(&mut self) -> Result<MeasureClause> {
        let agg_word = match self.next()? {
            Token::Word(w) => w,
            other => Err(Error::invalid(format!(
                "expected aggregate keyword, found {other:?}"
            )))?,
        };
        let agg = Aggregate::parse(&agg_word)
            .ok_or_else(|| Error::invalid(format!("unknown aggregate `{agg_word}`")))?;
        self.expect(Token::LParen)?;
        let clause = match self.peek() {
            Some(Token::Star) => {
                self.next()?;
                if agg != Aggregate::Count {
                    return Err(Error::invalid(format!("{agg_word}(*) is not supported")));
                }
                MeasureClause::CountRows
            }
            Some(Token::Word(w)) if w == "DISTINCT" => {
                self.next()?;
                let col = self.bracketed()?;
                if agg != Aggregate::Count {
                    return Err(Error::invalid("DISTINCT requires COUNT"));
                }
                MeasureClause::CountDistinct(col)
            }
            _ => {
                let measure = self.bracketed()?;
                MeasureClause::Aggregate(agg, measure)
            }
        };
        self.expect(Token::RParen)?;
        Ok(clause)
    }
}

/// Parse an MDX query string.
pub fn parse_mdx(input: &str) -> Result<MdxQuery> {
    let mut p = Parser {
        tokens: tokenize(input)?,
        pos: 0,
    };
    p.expect_word("SELECT")?;
    let first = p.axis()?;
    p.expect_word("ON")?;
    let first_target = match p.next()? {
        Token::Word(w) if w == "COLUMNS" || w == "ROWS" => w,
        other => {
            return Err(Error::invalid(format!(
                "expected COLUMNS or ROWS, found {other:?}"
            )))
        }
    };
    p.expect(Token::Comma)?;
    let second = p.axis()?;
    p.expect_word("ON")?;
    let second_target = match p.next()? {
        Token::Word(w) if w == "COLUMNS" || w == "ROWS" => w,
        other => {
            return Err(Error::invalid(format!(
                "expected COLUMNS or ROWS, found {other:?}"
            )))
        }
    };
    if first_target == second_target {
        return Err(Error::invalid("both axes target the same placement"));
    }
    let (columns, rows) = if first_target == "COLUMNS" {
        (first, second)
    } else {
        (second, first)
    };

    p.expect_word("FROM")?;
    let cube = p.bracketed()?;

    let mut conditions = Vec::new();
    let mut measure = MeasureClause::CountRows;
    while let Some(token) = p.peek().cloned() {
        match token {
            Token::Word(w) if w == "WHERE" => {
                p.next()?;
                conditions.push(p.condition()?);
                while matches!(p.peek(), Some(Token::Word(w)) if w == "AND") {
                    p.next()?;
                    conditions.push(p.condition()?);
                }
            }
            Token::Word(w) if w == "MEASURE" => {
                p.next()?;
                measure = p.measure_clause()?;
            }
            other => {
                return Err(Error::invalid(format!(
                    "unexpected trailing token {other:?}"
                )))
            }
        }
    }

    Ok(MdxQuery {
        columns,
        rows,
        cube,
        conditions,
        measure,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_fig5_query() {
        let q = parse_mdx(
            "SELECT [Gender].MEMBERS ON COLUMNS, [Age_SubGroup].MEMBERS ON ROWS \
             FROM [Medical Measures] WHERE [DiabetesStatus] = 'yes' MEASURE COUNT(*)",
        )
        .unwrap();
        assert_eq!(q.columns.set, AxisSet::Members("Gender".into()));
        assert!(!q.columns.non_empty);
        assert_eq!(q.rows.set, AxisSet::Members("Age_SubGroup".into()));
        assert_eq!(q.cube, "Medical Measures");
        assert_eq!(
            q.conditions,
            vec![Condition::AttributeEquals(
                "DiabetesStatus".into(),
                "yes".into()
            )]
        );
        assert_eq!(q.measure, MeasureClause::CountRows);
    }

    #[test]
    fn axes_may_come_in_either_order() {
        let q = parse_mdx("SELECT [A].MEMBERS ON ROWS, [B].MEMBERS ON COLUMNS FROM [C]").unwrap();
        assert_eq!(q.rows.set, AxisSet::Members("A".into()));
        assert_eq!(q.columns.set, AxisSet::Members("B".into()));
    }

    #[test]
    fn explicit_member_sets() {
        let q = parse_mdx(
            "SELECT {[Age].[70-75], [Age].[75-80]} ON ROWS, [G].MEMBERS ON COLUMNS FROM [C]",
        )
        .unwrap();
        assert_eq!(
            q.rows.set,
            AxisSet::Explicit("Age".into(), vec!["70-75".into(), "75-80".into()])
        );
    }

    #[test]
    fn mixed_attribute_member_set_rejected() {
        assert!(
            parse_mdx("SELECT {[A].[x], [B].[y]} ON ROWS, [G].MEMBERS ON COLUMNS FROM [C]")
                .is_err()
        );
    }

    #[test]
    fn where_with_and_and_between() {
        let q = parse_mdx(
            "SELECT [A].MEMBERS ON COLUMNS, [B].MEMBERS ON ROWS FROM [C] \
             WHERE [X] = 'yes' AND [FBG] BETWEEN 5.5 AND 7 MEASURE AVG([BMI])",
        )
        .unwrap();
        assert_eq!(q.conditions.len(), 2);
        assert_eq!(
            q.conditions[1],
            Condition::MeasureBetween("FBG".into(), 5.5, 7.0)
        );
        assert_eq!(
            q.measure,
            MeasureClause::Aggregate(Aggregate::Avg, "BMI".into())
        );
    }

    #[test]
    fn count_distinct_clause() {
        let q = parse_mdx(
            "SELECT [A].MEMBERS ON COLUMNS, [B].MEMBERS ON ROWS FROM [C] \
             MEASURE COUNT(DISTINCT [PatientId])",
        )
        .unwrap();
        assert_eq!(q.measure, MeasureClause::CountDistinct("PatientId".into()));
    }

    #[test]
    fn default_measure_is_count_rows() {
        let q = parse_mdx("SELECT [A].MEMBERS ON COLUMNS, [B].MEMBERS ON ROWS FROM [C]").unwrap();
        assert_eq!(q.measure, MeasureClause::CountRows);
    }

    #[test]
    fn rejects_same_axis_twice_and_bad_aggregates() {
        assert!(parse_mdx("SELECT [A].MEMBERS ON ROWS, [B].MEMBERS ON ROWS FROM [C]").is_err());
        assert!(parse_mdx(
            "SELECT [A].MEMBERS ON COLUMNS, [B].MEMBERS ON ROWS FROM [C] MEASURE SUM(*)"
        )
        .is_err());
        assert!(parse_mdx(
            "SELECT [A].MEMBERS ON COLUMNS, [B].MEMBERS ON ROWS FROM [C] MEASURE MEDIAN([X])"
        )
        .is_err());
    }

    #[test]
    fn canonical_sorts_where_conjuncts() {
        let a = parse_mdx(
            "SELECT [A].MEMBERS ON COLUMNS, [B].MEMBERS ON ROWS FROM [C] \
             WHERE [X] = 'yes' AND [FBG] BETWEEN 5.5 AND 7",
        )
        .unwrap();
        let b = parse_mdx(
            "SELECT [A].MEMBERS ON COLUMNS, [B].MEMBERS ON ROWS FROM [C] \
             WHERE [FBG] BETWEEN 5.5 AND 7 AND [X] = 'yes'",
        )
        .unwrap();
        assert_eq!(a.canonical(), b.canonical());
        // Swapped axis placement is a different query.
        let swapped = parse_mdx(
            "SELECT [B].MEMBERS ON COLUMNS, [A].MEMBERS ON ROWS FROM [C] \
             WHERE [X] = 'yes' AND [FBG] BETWEEN 5.5 AND 7",
        )
        .unwrap();
        assert_ne!(a.canonical(), swapped.canonical());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(
            parse_mdx("SELECT [A].MEMBERS ON COLUMNS, [B].MEMBERS ON ROWS FROM [C] EXTRA").is_err()
        );
    }
}
