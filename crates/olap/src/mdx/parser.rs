//! MDX parser: tokens → [`MdxQuery`].
//!
//! The AST itself is span-free (fingerprints and tests compare it
//! structurally); [`parse_mdx_spanned`] additionally returns a
//! [`QuerySpans`] side table mapping each analyzable name back to its
//! byte range in the query text. Parse errors render a caret snippet
//! into their `Display`.

use super::lexer::{tokenize_spanned, SpannedToken, Token};
use crate::aggregate::Aggregate;
use clinical_types::{render_snippet, Error, Result, Span};

/// An axis specification.
#[derive(Debug, Clone, PartialEq)]
pub enum AxisSet {
    /// `[Attr].MEMBERS` — every observed member of the attribute.
    Members(String),
    /// `{[Attr].[v], …}` — an explicit member list (a dice).
    Explicit(String, Vec<String>),
    /// `[Attr].[member].CHILDREN` — the next finer hierarchy level,
    /// restricted to facts under the named member (Fig. 5's
    /// "drill into the 60–80 group" as a single axis expression).
    Children {
        /// The coarse attribute.
        parent: String,
        /// The member whose children are requested.
        member: String,
    },
}

impl AxisSet {
    /// The attribute the axis groups on (the drill-down parent for
    /// `CHILDREN` axes).
    pub fn attribute(&self) -> &str {
        match self {
            AxisSet::Members(a) => a,
            AxisSet::Explicit(a, _) => a,
            AxisSet::Children { parent, .. } => parent,
        }
    }
}

/// One axis with its placement modifiers.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// The member set.
    pub set: AxisSet,
    /// `NON EMPTY`: drop headers whose every cell is empty.
    pub non_empty: bool,
}

/// One `WHERE` condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// `[Attr] = 'value'`
    AttributeEquals(String, String),
    /// `[Measure] BETWEEN lo AND hi`
    MeasureBetween(String, f64, f64),
}

/// The `MEASURE` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum MeasureClause {
    /// `COUNT(*)`
    CountRows,
    /// `COUNT(DISTINCT [col])`
    CountDistinct(String),
    /// `AGG([measure])`
    Aggregate(Aggregate, String),
}

/// A parsed MDX query.
#[derive(Debug, Clone, PartialEq)]
pub struct MdxQuery {
    /// Axis placed `ON COLUMNS`.
    pub columns: Axis,
    /// Axis placed `ON ROWS`.
    pub rows: Axis,
    /// Cube name from the `FROM` clause.
    pub cube: String,
    /// `WHERE` conditions (conjunctive).
    pub conditions: Vec<Condition>,
    /// The measure; defaults to `COUNT(*)` when the clause is omitted.
    pub measure: MeasureClause,
}

impl MdxQuery {
    /// Canonical fingerprint of the *result* this query produces.
    /// `WHERE` is a conjunction, so condition order is irrelevant and
    /// the conditions are sorted; axis placement, member sets and the
    /// measure clause all stay significant.
    pub fn canonical(&self) -> String {
        let mut conds: Vec<String> = self.conditions.iter().map(|c| format!("{c:?}")).collect();
        conds.sort();
        format!(
            "mdx|cube={}|cols={:?}|rows={:?}|where=[{}]|measure={:?}",
            self.cube,
            self.columns,
            self.rows,
            conds.join(" AND "),
            self.measure
        )
    }
}

/// Byte spans of one `WHERE` condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConditionSpans {
    /// The `[column]` name token.
    pub column: Span,
    /// The compared literal (`'value'`, or `lo … hi` merged).
    pub literal: Span,
}

/// Side table of byte spans for the analyzable names of an
/// [`MdxQuery`], index-aligned with the query's own vectors.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuerySpans {
    /// Attribute name of the `ON COLUMNS` axis.
    pub columns: Span,
    /// Attribute name of the `ON ROWS` axis.
    pub rows: Span,
    /// Cube name in `FROM`.
    pub cube: Span,
    /// One entry per condition, in `MdxQuery::conditions` order.
    pub conditions: Vec<ConditionSpans>,
    /// The measure target name; `None` when the clause was omitted or
    /// targets `*`.
    pub measure: Option<Span>,
}

struct Parser<'s> {
    input: &'s str,
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser<'_> {
    fn err_at(&self, span: Span, message: impl std::fmt::Display) -> Error {
        Error::invalid(format!("{message}\n{}", render_snippet(self.input, span)))
    }

    /// Where the previous token ended (for end-of-input errors).
    fn here(&self) -> Span {
        self.tokens
            .get(self.pos)
            .map(|t| t.span)
            .unwrap_or_else(|| Span::point(self.input.len()))
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn next(&mut self) -> Result<SpannedToken> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| self.err_at(self.here(), "unexpected end of MDX query"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_word(&mut self, word: &str) -> Result<()> {
        let t = self.next()?;
        match t.tok {
            Token::Word(w) if w == word => Ok(()),
            other => Err(self.err_at(t.span, format_args!("expected `{word}`, found {other:?}"))),
        }
    }

    fn expect(&mut self, token: Token) -> Result<()> {
        let t = self.next()?;
        if t.tok == token {
            Ok(())
        } else {
            Err(self.err_at(
                t.span,
                format_args!("expected {token:?}, found {:?}", t.tok),
            ))
        }
    }

    fn bracketed(&mut self) -> Result<(String, Span)> {
        let t = self.next()?;
        match t.tok {
            Token::Bracketed(name) => Ok((name, t.span)),
            other => Err(self.err_at(
                t.span,
                format_args!("expected [bracketed name], found {other:?}"),
            )),
        }
    }

    fn number(&mut self) -> Result<(f64, Span)> {
        let t = self.next()?;
        match t.tok {
            Token::Number(n) => Ok((n, t.span)),
            other => Err(self.err_at(t.span, format_args!("expected number, found {other:?}"))),
        }
    }

    /// axis := [NON EMPTY] axis_set
    fn axis(&mut self) -> Result<(Axis, Span)> {
        let mut non_empty = false;
        if matches!(self.peek(), Some(Token::Word(w)) if w == "NON") {
            self.next()?;
            self.expect_word("EMPTY")?;
            non_empty = true;
        }
        let (set, span) = self.axis_set()?;
        Ok((Axis { set, non_empty }, span))
    }

    /// axis_set := [Attr].MEMBERS
    ///           | [Attr].[member].CHILDREN
    ///           | '{' [Attr].[v] (',' [Attr].[v])* '}'
    ///
    /// Returns the set plus the span of its attribute name.
    fn axis_set(&mut self) -> Result<(AxisSet, Span)> {
        if self.peek() == Some(&Token::LBrace) {
            let open = self.here();
            self.expect(Token::LBrace)?;
            let mut attribute: Option<(String, Span)> = None;
            let mut members = Vec::new();
            loop {
                let (attr, attr_span) = self.bracketed()?;
                self.expect(Token::Dot)?;
                let (member, _) = self.bracketed()?;
                match &attribute {
                    None => attribute = Some((attr, attr_span)),
                    Some((a, _)) if *a == attr => {}
                    Some((a, _)) => {
                        return Err(self.err_at(
                            attr_span,
                            format_args!("axis set mixes attributes `{a}` and `{attr}`"),
                        ))
                    }
                }
                members.push(member);
                let t = self.next()?;
                match t.tok {
                    Token::Comma => continue,
                    Token::RBrace => break,
                    other => {
                        return Err(self.err_at(
                            t.span,
                            format_args!("expected `,` or `}}` in member set, found {other:?}"),
                        ))
                    }
                }
            }
            let (attribute, span) =
                attribute.ok_or_else(|| self.err_at(open, "empty member set"))?;
            Ok((AxisSet::Explicit(attribute, members), span))
        } else {
            let (attr, attr_span) = self.bracketed()?;
            self.expect(Token::Dot)?;
            let t = self.next()?;
            match t.tok {
                Token::Word(w) if w == "MEMBERS" => Ok((AxisSet::Members(attr), attr_span)),
                Token::Bracketed(member) => {
                    self.expect(Token::Dot)?;
                    self.expect_word("CHILDREN")?;
                    Ok((
                        AxisSet::Children {
                            parent: attr,
                            member,
                        },
                        attr_span,
                    ))
                }
                other => Err(self.err_at(
                    t.span,
                    format_args!("expected MEMBERS or [member].CHILDREN, found {other:?}"),
                )),
            }
        }
    }

    fn condition(&mut self) -> Result<(Condition, ConditionSpans)> {
        let (name, column) = self.bracketed()?;
        let t = self.next()?;
        match t.tok {
            Token::Equals => {
                let v = self.next()?;
                match v.tok {
                    Token::Str(s) => Ok((
                        Condition::AttributeEquals(name, s),
                        ConditionSpans {
                            column,
                            literal: v.span,
                        },
                    )),
                    other => Err(self.err_at(
                        v.span,
                        format_args!("expected 'string' after `=`, found {other:?}"),
                    )),
                }
            }
            Token::Word(w) if w == "BETWEEN" => {
                let (lo, lo_span) = self.number()?;
                self.expect_word("AND")?;
                let (hi, hi_span) = self.number()?;
                Ok((
                    Condition::MeasureBetween(name, lo, hi),
                    ConditionSpans {
                        column,
                        literal: lo_span.merge(hi_span),
                    },
                ))
            }
            other => Err(self.err_at(
                t.span,
                format_args!("expected `=` or `BETWEEN` in condition, found {other:?}"),
            )),
        }
    }

    fn measure_clause(&mut self) -> Result<(MeasureClause, Option<Span>)> {
        let t = self.next()?;
        let agg_word = match t.tok {
            Token::Word(w) => w,
            other => {
                return Err(self.err_at(
                    t.span,
                    format_args!("expected aggregate keyword, found {other:?}"),
                ))
            }
        };
        let agg = Aggregate::parse(&agg_word)
            .ok_or_else(|| self.err_at(t.span, format_args!("unknown aggregate `{agg_word}`")))?;
        self.expect(Token::LParen)?;
        let clause = match self.peek() {
            Some(Token::Star) => {
                let star = self.next()?;
                if agg != Aggregate::Count {
                    return Err(
                        self.err_at(star.span, format_args!("{agg_word}(*) is not supported"))
                    );
                }
                (MeasureClause::CountRows, None)
            }
            Some(Token::Word(w)) if w == "DISTINCT" => {
                let kw = self.next()?;
                let (col, col_span) = self.bracketed()?;
                if agg != Aggregate::Count {
                    return Err(self.err_at(kw.span, "DISTINCT requires COUNT"));
                }
                (MeasureClause::CountDistinct(col), Some(col_span))
            }
            _ => {
                let (measure, span) = self.bracketed()?;
                (MeasureClause::Aggregate(agg, measure), Some(span))
            }
        };
        self.expect(Token::RParen)?;
        Ok(clause)
    }
}

/// Parse an MDX query string, returning the AST plus the byte spans
/// of its analyzable names.
pub fn parse_mdx_spanned(input: &str) -> Result<(MdxQuery, QuerySpans)> {
    let mut p = Parser {
        input,
        tokens: tokenize_spanned(input)?,
        pos: 0,
    };
    p.expect_word("SELECT")?;
    let (first, first_span) = p.axis()?;
    p.expect_word("ON")?;
    let t = p.next()?;
    let first_target = match t.tok {
        Token::Word(w) if w == "COLUMNS" || w == "ROWS" => w,
        other => {
            return Err(p.err_at(
                t.span,
                format_args!("expected COLUMNS or ROWS, found {other:?}"),
            ))
        }
    };
    p.expect(Token::Comma)?;
    let (second, second_span) = p.axis()?;
    p.expect_word("ON")?;
    let t = p.next()?;
    let second_target = match t.tok {
        Token::Word(w) if w == "COLUMNS" || w == "ROWS" => w,
        other => {
            return Err(p.err_at(
                t.span,
                format_args!("expected COLUMNS or ROWS, found {other:?}"),
            ))
        }
    };
    if first_target == second_target {
        return Err(p.err_at(t.span, "both axes target the same placement"));
    }
    let (columns, columns_span, rows, rows_span) = if first_target == "COLUMNS" {
        (first, first_span, second, second_span)
    } else {
        (second, second_span, first, first_span)
    };

    p.expect_word("FROM")?;
    let (cube, cube_span) = p.bracketed()?;

    let mut conditions = Vec::new();
    let mut condition_spans = Vec::new();
    let mut measure = MeasureClause::CountRows;
    let mut measure_span = None;
    while let Some(token) = p.peek().cloned() {
        match token {
            Token::Word(w) if w == "WHERE" => {
                p.next()?;
                let (c, s) = p.condition()?;
                conditions.push(c);
                condition_spans.push(s);
                while matches!(p.peek(), Some(Token::Word(w)) if w == "AND") {
                    p.next()?;
                    let (c, s) = p.condition()?;
                    conditions.push(c);
                    condition_spans.push(s);
                }
            }
            Token::Word(w) if w == "MEASURE" => {
                p.next()?;
                let (m, s) = p.measure_clause()?;
                measure = m;
                measure_span = s;
            }
            other => {
                let span = p.here();
                return Err(p.err_at(span, format_args!("unexpected trailing token {other:?}")));
            }
        }
    }

    Ok((
        MdxQuery {
            columns,
            rows,
            cube,
            conditions,
            measure,
        },
        QuerySpans {
            columns: columns_span,
            rows: rows_span,
            cube: cube_span,
            conditions: condition_spans,
            measure: measure_span,
        },
    ))
}

/// Parse an MDX query string.
pub fn parse_mdx(input: &str) -> Result<MdxQuery> {
    parse_mdx_spanned(input).map(|(query, _)| query)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_fig5_query() {
        let q = parse_mdx(
            "SELECT [Gender].MEMBERS ON COLUMNS, [Age_SubGroup].MEMBERS ON ROWS \
             FROM [Medical Measures] WHERE [DiabetesStatus] = 'yes' MEASURE COUNT(*)",
        )
        .unwrap();
        assert_eq!(q.columns.set, AxisSet::Members("Gender".into()));
        assert!(!q.columns.non_empty);
        assert_eq!(q.rows.set, AxisSet::Members("Age_SubGroup".into()));
        assert_eq!(q.cube, "Medical Measures");
        assert_eq!(
            q.conditions,
            vec![Condition::AttributeEquals(
                "DiabetesStatus".into(),
                "yes".into()
            )]
        );
        assert_eq!(q.measure, MeasureClause::CountRows);
    }

    #[test]
    fn axes_may_come_in_either_order() {
        let q = parse_mdx("SELECT [A].MEMBERS ON ROWS, [B].MEMBERS ON COLUMNS FROM [C]").unwrap();
        assert_eq!(q.rows.set, AxisSet::Members("A".into()));
        assert_eq!(q.columns.set, AxisSet::Members("B".into()));
    }

    #[test]
    fn explicit_member_sets() {
        let q = parse_mdx(
            "SELECT {[Age].[70-75], [Age].[75-80]} ON ROWS, [G].MEMBERS ON COLUMNS FROM [C]",
        )
        .unwrap();
        assert_eq!(
            q.rows.set,
            AxisSet::Explicit("Age".into(), vec!["70-75".into(), "75-80".into()])
        );
    }

    #[test]
    fn mixed_attribute_member_set_rejected() {
        assert!(
            parse_mdx("SELECT {[A].[x], [B].[y]} ON ROWS, [G].MEMBERS ON COLUMNS FROM [C]")
                .is_err()
        );
    }

    #[test]
    fn where_with_and_and_between() {
        let q = parse_mdx(
            "SELECT [A].MEMBERS ON COLUMNS, [B].MEMBERS ON ROWS FROM [C] \
             WHERE [X] = 'yes' AND [FBG] BETWEEN 5.5 AND 7 MEASURE AVG([BMI])",
        )
        .unwrap();
        assert_eq!(q.conditions.len(), 2);
        assert_eq!(
            q.conditions[1],
            Condition::MeasureBetween("FBG".into(), 5.5, 7.0)
        );
        assert_eq!(
            q.measure,
            MeasureClause::Aggregate(Aggregate::Avg, "BMI".into())
        );
    }

    #[test]
    fn count_distinct_clause() {
        let q = parse_mdx(
            "SELECT [A].MEMBERS ON COLUMNS, [B].MEMBERS ON ROWS FROM [C] \
             MEASURE COUNT(DISTINCT [PatientId])",
        )
        .unwrap();
        assert_eq!(q.measure, MeasureClause::CountDistinct("PatientId".into()));
    }

    #[test]
    fn default_measure_is_count_rows() {
        let q = parse_mdx("SELECT [A].MEMBERS ON COLUMNS, [B].MEMBERS ON ROWS FROM [C]").unwrap();
        assert_eq!(q.measure, MeasureClause::CountRows);
    }

    #[test]
    fn rejects_same_axis_twice_and_bad_aggregates() {
        assert!(parse_mdx("SELECT [A].MEMBERS ON ROWS, [B].MEMBERS ON ROWS FROM [C]").is_err());
        assert!(parse_mdx(
            "SELECT [A].MEMBERS ON COLUMNS, [B].MEMBERS ON ROWS FROM [C] MEASURE SUM(*)"
        )
        .is_err());
        assert!(parse_mdx(
            "SELECT [A].MEMBERS ON COLUMNS, [B].MEMBERS ON ROWS FROM [C] MEASURE MEDIAN([X])"
        )
        .is_err());
    }

    #[test]
    fn canonical_sorts_where_conjuncts() {
        let a = parse_mdx(
            "SELECT [A].MEMBERS ON COLUMNS, [B].MEMBERS ON ROWS FROM [C] \
             WHERE [X] = 'yes' AND [FBG] BETWEEN 5.5 AND 7",
        )
        .unwrap();
        let b = parse_mdx(
            "SELECT [A].MEMBERS ON COLUMNS, [B].MEMBERS ON ROWS FROM [C] \
             WHERE [FBG] BETWEEN 5.5 AND 7 AND [X] = 'yes'",
        )
        .unwrap();
        assert_eq!(a.canonical(), b.canonical());
        // Swapped axis placement is a different query.
        let swapped = parse_mdx(
            "SELECT [B].MEMBERS ON COLUMNS, [A].MEMBERS ON ROWS FROM [C] \
             WHERE [X] = 'yes' AND [FBG] BETWEEN 5.5 AND 7",
        )
        .unwrap();
        assert_ne!(a.canonical(), swapped.canonical());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(
            parse_mdx("SELECT [A].MEMBERS ON COLUMNS, [B].MEMBERS ON ROWS FROM [C] EXTRA").is_err()
        );
    }

    #[test]
    fn spans_point_at_the_names() {
        let src = "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
                   FROM [Medical Measures] WHERE [FBG] BETWEEN 5.5 AND 7 MEASURE AVG([BMI])";
        let (_, spans) = parse_mdx_spanned(src).unwrap();
        assert_eq!(spans.columns.slice(src), Some("[Gender]"));
        assert_eq!(spans.rows.slice(src), Some("[Age_Band]"));
        assert_eq!(spans.cube.slice(src), Some("[Medical Measures]"));
        assert_eq!(spans.conditions.len(), 1);
        assert_eq!(spans.conditions[0].column.slice(src), Some("[FBG]"));
        assert_eq!(spans.conditions[0].literal.slice(src), Some("5.5 AND 7"));
        assert_eq!(spans.measure.unwrap().slice(src), Some("[BMI]"));
    }

    #[test]
    fn parse_errors_render_a_caret() {
        let err = parse_mdx("SELECT [A].MEMBERS ON SIDEWAYS, [B].MEMBERS ON ROWS FROM [C]")
            .unwrap_err()
            .to_string();
        assert!(err.contains("expected COLUMNS or ROWS"), "{err}");
        assert!(err.contains('^'), "{err}");
    }
}
