//! MDX tokenizer.
//!
//! Tokens carry byte-offset [`Span`]s into the original query text so
//! the parser and the semantic analyzer can point diagnostics at the
//! exact offending fragment; lexer errors render a caret snippet into
//! their `Display` for the same reason.

use clinical_types::{render_snippet, Error, Result, Span};

/// One MDX token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A keyword or bare identifier (`SELECT`, `ON`, `MEMBERS`, …),
    /// stored upper-cased because MDX keywords are case-insensitive.
    Word(String),
    /// `[bracketed name]` — attribute, cube or member names, which may
    /// contain spaces, digits and punctuation.
    Bracketed(String),
    /// `'single-quoted string'`.
    Str(String),
    /// Numeric literal.
    Number(f64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Equals,
    /// `*`
    Star,
}

/// A token plus the byte range of query text it was read from.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    /// The token.
    pub tok: Token,
    /// Byte span `[start, end)` into the query string.
    pub span: Span,
}

fn lex_error(input: &str, span: Span, message: impl std::fmt::Display) -> Error {
    Error::invalid(format!("{message}\n{}", render_snippet(input, span)))
}

/// Tokenize an MDX string, keeping byte-offset spans.
pub fn tokenize_spanned(input: &str) -> Result<Vec<SpannedToken>> {
    let chars: Vec<(usize, char)> = input.char_indices().collect();
    // Byte offset of the i-th char (or end of input).
    let byte_at = |i: usize| chars.get(i).map_or(input.len(), |&(o, _)| o);
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut push = |tok: Token, start: usize, end: usize| {
        tokens.push(SpannedToken {
            tok,
            span: Span::new(start, end),
        });
    };
    while i < chars.len() {
        let (off, c) = chars[i];
        let single = |tok: Token| (tok, off, off + c.len_utf8());
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
                continue;
            }
            '{' | '}' | '(' | ')' | ',' | '.' | '=' | '*' => {
                let (tok, s, e) = single(match c {
                    '{' => Token::LBrace,
                    '}' => Token::RBrace,
                    '(' => Token::LParen,
                    ')' => Token::RParen,
                    ',' => Token::Comma,
                    '.' => Token::Dot,
                    '=' => Token::Equals,
                    _ => Token::Star,
                });
                push(tok, s, e);
                i += 1;
            }
            '[' => {
                let start = i + 1;
                let end = chars[start..]
                    .iter()
                    .position(|&(_, c)| c == ']')
                    .ok_or_else(|| {
                        lex_error(
                            input,
                            Span::new(off, input.len()),
                            "unterminated [bracketed name]",
                        )
                    })?;
                let name = input[byte_at(start)..byte_at(start + end)].to_string();
                push(Token::Bracketed(name), off, byte_at(start + end) + 1);
                i = start + end + 1;
            }
            '\'' => {
                let start = i + 1;
                let end = chars[start..]
                    .iter()
                    .position(|&(_, c)| c == '\'')
                    .ok_or_else(|| {
                        lex_error(
                            input,
                            Span::new(off, input.len()),
                            "unterminated string literal",
                        )
                    })?;
                let text = input[byte_at(start)..byte_at(start + end)].to_string();
                push(Token::Str(text), off, byte_at(start + end) + 1);
                i = start + end + 1;
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' => {
                i += 1;
                while i < chars.len() && (chars[i].1.is_ascii_digit() || chars[i].1 == '.') {
                    i += 1;
                }
                let text = &input[off..byte_at(i)];
                let number = text.parse::<f64>().map_err(|_| {
                    lex_error(
                        input,
                        Span::new(off, byte_at(i)),
                        format_args!("malformed number `{text}`"),
                    )
                })?;
                push(Token::Number(number), off, byte_at(i));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                i += 1;
                while i < chars.len() && (chars[i].1.is_ascii_alphanumeric() || chars[i].1 == '_') {
                    i += 1;
                }
                let word = input[off..byte_at(i)].to_ascii_uppercase();
                push(Token::Word(word), off, byte_at(i));
            }
            other => {
                return Err(lex_error(
                    input,
                    Span::new(off, off + other.len_utf8()),
                    format_args!("unexpected character `{other}` at offset {off}"),
                ))
            }
        }
    }
    Ok(tokens)
}

/// Tokenize an MDX string (spans discarded).
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    Ok(tokenize_spanned(input)?
        .into_iter()
        .map(|t| t.tok)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_full_query() {
        let tokens =
            tokenize("SELECT [Gender].MEMBERS ON COLUMNS FROM [Medical Measures] MEASURE COUNT(*)")
                .unwrap();
        assert_eq!(tokens[0], Token::Word("SELECT".into()));
        assert_eq!(tokens[1], Token::Bracketed("Gender".into()));
        assert_eq!(tokens[2], Token::Dot);
        assert_eq!(tokens[3], Token::Word("MEMBERS".into()));
        assert!(tokens.contains(&Token::Bracketed("Medical Measures".into())));
        assert!(tokens.contains(&Token::Star));
    }

    #[test]
    fn bracketed_names_keep_case_and_punctuation() {
        let tokens = tokenize("{[Age_SubGroup].[70-75]}").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::LBrace,
                Token::Bracketed("Age_SubGroup".into()),
                Token::Dot,
                Token::Bracketed("70-75".into()),
                Token::RBrace,
            ]
        );
    }

    #[test]
    fn strings_and_numbers() {
        let tokens = tokenize("WHERE [X] = 'yes' BETWEEN 2.5 AND -3").unwrap();
        assert!(tokens.contains(&Token::Str("yes".into())));
        assert!(tokens.contains(&Token::Number(2.5)));
        assert!(tokens.contains(&Token::Number(-3.0)));
    }

    #[test]
    fn keywords_are_upper_cased() {
        let tokens = tokenize("select From where").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Word("SELECT".into()),
                Token::Word("FROM".into()),
                Token::Word("WHERE".into())
            ]
        );
    }

    #[test]
    fn unterminated_constructs_fail() {
        assert!(tokenize("[Gender").is_err());
        assert!(tokenize("'open").is_err());
        assert!(tokenize("SELECT ;").is_err());
    }

    #[test]
    fn spans_are_byte_offsets_into_the_source() {
        let src = "SELECT [Gender].MEMBERS";
        let tokens = tokenize_spanned(src).unwrap();
        assert_eq!(tokens[0].span, Span::new(0, 6));
        // Bracketed span covers the brackets; the name sits inside.
        assert_eq!(tokens[1].span, Span::new(7, 15));
        assert_eq!(tokens[1].span.slice(src), Some("[Gender]"));
        assert_eq!(tokens[3].span.slice(src), Some("MEMBERS"));
    }

    #[test]
    fn lex_errors_render_a_caret() {
        let err = tokenize("SELECT ;").unwrap_err().to_string();
        assert!(err.contains("unexpected character `;`"), "{err}");
        assert!(err.contains('^'), "{err}");
    }
}
