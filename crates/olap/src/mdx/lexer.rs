//! MDX tokenizer.

use clinical_types::{Error, Result};

/// One MDX token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A keyword or bare identifier (`SELECT`, `ON`, `MEMBERS`, …),
    /// stored upper-cased because MDX keywords are case-insensitive.
    Word(String),
    /// `[bracketed name]` — attribute, cube or member names, which may
    /// contain spaces, digits and punctuation.
    Bracketed(String),
    /// `'single-quoted string'`.
    Str(String),
    /// Numeric literal.
    Number(f64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Equals,
    /// `*`
    Star,
}

/// Tokenize an MDX string.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '{' => {
                tokens.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                tokens.push(Token::RBrace);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Equals);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '[' => {
                let start = i + 1;
                let end = chars[start..]
                    .iter()
                    .position(|&c| c == ']')
                    .ok_or_else(|| Error::invalid("unterminated [bracketed name]"))?;
                tokens.push(Token::Bracketed(chars[start..start + end].iter().collect()));
                i = start + end + 1;
            }
            '\'' => {
                let start = i + 1;
                let end = chars[start..]
                    .iter()
                    .position(|&c| c == '\'')
                    .ok_or_else(|| Error::invalid("unterminated string literal"))?;
                tokens.push(Token::Str(chars[start..start + end].iter().collect()));
                i = start + end + 1;
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' => {
                let start = i;
                i += 1;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let number = text
                    .parse::<f64>()
                    .map_err(|_| Error::invalid(format!("malformed number `{text}`")))?;
                tokens.push(Token::Number(number));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                tokens.push(Token::Word(word.to_ascii_uppercase()));
            }
            other => {
                return Err(Error::invalid(format!(
                    "unexpected character `{other}` at offset {i}"
                )))
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_full_query() {
        let tokens =
            tokenize("SELECT [Gender].MEMBERS ON COLUMNS FROM [Medical Measures] MEASURE COUNT(*)")
                .unwrap();
        assert_eq!(tokens[0], Token::Word("SELECT".into()));
        assert_eq!(tokens[1], Token::Bracketed("Gender".into()));
        assert_eq!(tokens[2], Token::Dot);
        assert_eq!(tokens[3], Token::Word("MEMBERS".into()));
        assert!(tokens.contains(&Token::Bracketed("Medical Measures".into())));
        assert!(tokens.contains(&Token::Star));
    }

    #[test]
    fn bracketed_names_keep_case_and_punctuation() {
        let tokens = tokenize("{[Age_SubGroup].[70-75]}").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::LBrace,
                Token::Bracketed("Age_SubGroup".into()),
                Token::Dot,
                Token::Bracketed("70-75".into()),
                Token::RBrace,
            ]
        );
    }

    #[test]
    fn strings_and_numbers() {
        let tokens = tokenize("WHERE [X] = 'yes' BETWEEN 2.5 AND -3").unwrap();
        assert!(tokens.contains(&Token::Str("yes".into())));
        assert!(tokens.contains(&Token::Number(2.5)));
        assert!(tokens.contains(&Token::Number(-3.0)));
    }

    #[test]
    fn keywords_are_upper_cased() {
        let tokens = tokenize("select From where").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Word("SELECT".into()),
                Token::Word("FROM".into()),
                Token::Word("WHERE".into())
            ]
        );
    }

    #[test]
    fn unterminated_constructs_fail() {
        assert!(tokenize("[Gender").is_err());
        assert!(tokenize("'open").is_err());
        assert!(tokenize("SELECT ;").is_err());
    }
}
