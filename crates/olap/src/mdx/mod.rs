//! The MDX-like query language.
//!
//! §IV "Reporting": *"Multidimensional expressions (MDX), the query
//! language for OLAP, can also be used for reporting."* This module
//! implements a pragmatic MDX dialect covering the queries the paper's
//! trial runs (Figs. 4–6):
//!
//! ```text
//! SELECT [Gender].MEMBERS ON COLUMNS,
//!        [Age_SubGroup].MEMBERS ON ROWS
//! FROM [Medical Measures]
//! WHERE [DiabetesStatus] = 'yes'
//! MEASURE COUNT(*)
//! ```
//!
//! Axis sets are `.MEMBERS` (every observed member), explicit member
//! lists `{[Age_Band].[60-80], [Age_Band].[>80]}`, or a hierarchy
//! drill `[Age_Band].[60-80].CHILDREN` (the next finer level under the
//! named member); each axis accepts a `NON EMPTY` prefix that drops
//! all-empty headers. The `WHERE` clause takes attribute equalities
//! and measure `BETWEEN` ranges; the `MEASURE` clause takes
//! `COUNT(*)`, `COUNT(DISTINCT [col])` or `AGG([measure])` with
//! `AGG ∈ {COUNT, SUM, AVG, MIN, MAX}`.

mod exec;
mod lexer;
mod parser;

pub use exec::{execute_mdx, execute_query, execute_query_profiled, execute_query_unchecked};
pub use lexer::{tokenize, tokenize_spanned, SpannedToken, Token};
pub use parser::{
    parse_mdx, parse_mdx_spanned, Axis, AxisSet, Condition, ConditionSpans, MdxQuery,
    MeasureClause, QuerySpans,
};

#[cfg(test)]
mod tests {
    use super::*;
    use discri::{generate, CohortConfig};
    use etl::TransformPipeline;
    use std::sync::OnceLock;
    use warehouse::{LoadPlan, Warehouse};

    fn wh() -> &'static Warehouse {
        static WH: OnceLock<Warehouse> = OnceLock::new();
        WH.get_or_init(|| {
            let cohort = generate(&CohortConfig::small(41));
            let (table, _) = TransformPipeline::discri_default()
                .run(&cohort.attendances)
                .unwrap();
            Warehouse::load(&LoadPlan::discri_default(), &table).unwrap()
        })
    }

    #[test]
    fn fig5_query_end_to_end() {
        let pivot = execute_mdx(
            wh(),
            "SELECT [Gender].MEMBERS ON COLUMNS, [Age_SubGroup].MEMBERS ON ROWS \
             FROM [Medical Measures] \
             WHERE [DiabetesStatus] = 'yes' \
             MEASURE COUNT(*)",
        )
        .unwrap();
        assert_eq!(pivot.col_headers.len(), 2);
        assert!(pivot.row_totals().iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn explicit_member_sets_dice() {
        let pivot = execute_mdx(
            wh(),
            "SELECT [Gender].MEMBERS ON COLUMNS, \
             {[Age_SubGroup].[70-75], [Age_SubGroup].[75-80]} ON ROWS \
             FROM [Medical Measures] MEASURE COUNT(*)",
        )
        .unwrap();
        assert!(pivot.row_headers.len() <= 2);
        for h in &pivot.row_headers {
            let s = h.to_string();
            assert!(s == "70-75" || s == "75-80", "unexpected row {s}");
        }
    }

    #[test]
    fn avg_measure_and_between_filter() {
        let pivot = execute_mdx(
            wh(),
            "SELECT [Gender].MEMBERS ON COLUMNS, [DiabetesStatus].MEMBERS ON ROWS \
             FROM [Medical Measures] \
             WHERE [BMI] BETWEEN 20 AND 60 \
             MEASURE AVG([FBG])",
        )
        .unwrap();
        let yes_f = pivot.get(&"yes".into(), &"F".into());
        assert!(yes_f.is_some());
    }

    #[test]
    fn distinct_count_measure() {
        let attendances = execute_mdx(
            wh(),
            "SELECT [Gender].MEMBERS ON COLUMNS, [DiabetesStatus].MEMBERS ON ROWS \
             FROM [Medical Measures] MEASURE COUNT(*)",
        )
        .unwrap();
        let patients = execute_mdx(
            wh(),
            "SELECT [Gender].MEMBERS ON COLUMNS, [DiabetesStatus].MEMBERS ON ROWS \
             FROM [Medical Measures] MEASURE COUNT(DISTINCT [PatientId])",
        )
        .unwrap();
        for r in &attendances.row_headers {
            for c in &attendances.col_headers {
                if let (Some(a), Some(p)) = (attendances.get(r, c), patients.get(r, c)) {
                    assert!(p <= a);
                }
            }
        }
    }

    #[test]
    fn children_axis_drills_the_hierarchy() {
        // Fig. 5's drill-down as one expression: the five-year
        // children of the 60-80 age group.
        let pivot = execute_mdx(
            wh(),
            "SELECT [Gender].MEMBERS ON COLUMNS, \
             [Age_Band].[60-80].CHILDREN ON ROWS \
             FROM [Medical Measures] MEASURE COUNT(*)",
        )
        .unwrap();
        // Only five-year bands inside 60-80 appear.
        for h in &pivot.row_headers {
            let s = h.to_string();
            assert!(
                ["60-65", "65-70", "70-75", "75-80"].contains(&s.as_str()),
                "unexpected child row {s}"
            );
        }
        assert!(!pivot.row_headers.is_empty());
        // And the totals match a manual filter + fine query.
        let manual = execute_mdx(
            wh(),
            "SELECT [Gender].MEMBERS ON COLUMNS, [Age_SubGroup].MEMBERS ON ROWS \
             FROM [Medical Measures] WHERE [Age_Band] = '60-80' MEASURE COUNT(*)",
        )
        .unwrap();
        let children_total: f64 = pivot.row_totals().iter().sum();
        let manual_total: f64 = manual.row_totals().iter().sum();
        assert!((children_total - manual_total).abs() < 1e-9);
    }

    #[test]
    fn children_without_hierarchy_errors() {
        let err = execute_mdx(
            wh(),
            "SELECT [Gender].MEMBERS ON COLUMNS, [Gender].[F].CHILDREN ON ROWS \
             FROM [Medical Measures] MEASURE COUNT(*)",
        )
        .expect_err("Gender has no hierarchy");
        assert!(err.to_string().contains("finer"));
    }

    #[test]
    fn non_empty_drops_hollow_headers() {
        // Restrict to one age band member; the other rows vanish with
        // NON EMPTY, so all remaining rows have at least one value.
        let pivot = execute_mdx(
            wh(),
            "SELECT [Gender].MEMBERS ON COLUMNS, \
             NON EMPTY {[Age_Band].[60-80]} ON ROWS \
             FROM [Medical Measures] WHERE [DiabetesStatus] = 'yes' MEASURE COUNT(*)",
        )
        .unwrap();
        for (r, row) in pivot.cells.iter().enumerate() {
            assert!(
                row.iter().any(Option::is_some),
                "row {r} is empty despite NON EMPTY"
            );
        }
    }

    #[test]
    fn syntax_errors_are_reported() {
        for bad in [
            "SELECT FROM",
            "SELECT [A].MEMBERS ON COLUMNS FROM [X]",
            "SELECT [A].MEMBERS ON COLUMNS, [B].MEMBERS ON ROWS",
            "SELEKT [A].MEMBERS ON COLUMNS, [B].MEMBERS ON ROWS FROM [X]",
        ] {
            assert!(parse_mdx(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn unknown_attribute_fails_at_execution() {
        let err = execute_mdx(
            wh(),
            "SELECT [NoSuchAttr].MEMBERS ON COLUMNS, [Gender].MEMBERS ON ROWS \
             FROM [Medical Measures] MEASURE COUNT(*)",
        )
        .unwrap_err();
        assert!(err.to_string().contains("NoSuchAttr"));
    }
}
