//! Data cubes: grouped aggregation over the warehouse with the
//! classical OLAP operators.
//!
//! §IV "Reporting": *"data cubes can be formed by introducing multiple
//! dimensions to the query. Furthermore, slicing and dicing operations
//! can be performed on a cube to increase/decrease granularity of a
//! multivariate query."*
//!
//! A [`Cube`] holds one [`CellStats`] accumulator per observed axis
//! coordinate combination; because accumulators merge exactly,
//! roll-up is a pure cube-to-cube operation, while drill-down (finer
//! attribute) re-aggregates from the warehouse via the hierarchy-aware
//! [`crate::QueryBuilder`].

use crate::aggregate::{Aggregate, CellStats, MeasureRef};
use crate::kernels::{AggLanes, GroupLayout, KeyLut, LaneKind, MorselQueue, SelectionBitmap};
use clinical_types::{Error, Result, Value};
use segstore::{ColumnSet, Segment, SegmentMeta};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Range;
use std::sync::Arc;
use warehouse::{ChangeSet, DeltaSummary, Warehouse};

/// Row filter applied while building a cube.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CubeFilter {
    /// Attribute must equal one of the listed values.
    attribute_in: Vec<(String, Vec<Value>)>,
    /// Measure must be valid and inside `[lo, hi)`.
    measure_between: Vec<(String, f64, f64)>,
}

impl CubeFilter {
    /// Empty filter (all rows pass).
    pub fn all() -> Self {
        CubeFilter::default()
    }

    /// Keep rows where `attribute = value`.
    pub fn equals(mut self, attribute: impl Into<String>, value: impl Into<Value>) -> Self {
        self.attribute_in
            .push((attribute.into(), vec![value.into()]));
        self
    }

    /// Keep rows where `attribute` is one of `values`.
    pub fn one_of(mut self, attribute: impl Into<String>, values: Vec<Value>) -> Self {
        self.attribute_in.push((attribute.into(), values));
        self
    }

    /// Keep rows where measure `name` is valid and in `[lo, hi)`.
    pub fn measure_between(mut self, name: impl Into<String>, lo: f64, hi: f64) -> Self {
        self.measure_between.push((name.into(), lo, hi));
        self
    }

    /// True when no condition is registered.
    pub fn is_empty(&self) -> bool {
        self.attribute_in.is_empty() && self.measure_between.is_empty()
    }

    /// Conditions on attributes.
    pub fn attribute_conditions(&self) -> &[(String, Vec<Value>)] {
        &self.attribute_in
    }

    /// Conditions on measures (`name`, `lo`, `hi`).
    pub fn measure_conditions(&self) -> &[(String, f64, f64)] {
        &self.measure_between
    }

    /// Canonical rendering for fingerprinting. The filter is a
    /// conjunction, so condition order is irrelevant; likewise the
    /// value list of a `one_of` is a set. Both are sorted so
    /// semantically equal filters render identically.
    pub fn canonical(&self) -> String {
        let mut parts: Vec<String> = self
            .attribute_in
            .iter()
            .map(|(attr, allowed)| {
                let mut vals: Vec<String> = allowed.iter().map(|v| format!("{v:?}")).collect();
                vals.sort();
                vals.dedup();
                format!("{attr} in {{{}}}", vals.join(","))
            })
            .collect();
        parts.extend(
            self.measure_between
                .iter()
                .map(|(m, lo, hi)| format!("{m} in [{lo:?},{hi:?})")),
        );
        parts.sort();
        parts.join(" && ")
    }

    /// Evaluate the filter into a row mask.
    fn mask(&self, warehouse: &Warehouse) -> Result<Vec<bool>> {
        self.mask_range(warehouse, 0..warehouse.n_facts())
    }

    /// Evaluate the filter over a contiguous fact-row range; entry `i`
    /// of the returned mask covers fact row `rows.start + i`. Building
    /// a full cube uses `0..n_facts()`; incremental maintenance masks
    /// only a delta's appended rows.
    fn mask_range(&self, warehouse: &Warehouse, rows: Range<usize>) -> Result<Vec<bool>> {
        let mut mask = vec![true; rows.len()];
        for (attr, allowed) in &self.attribute_in {
            let col = warehouse.attribute_column_range(attr, rows.clone())?;
            for (m, v) in mask.iter_mut().zip(col) {
                if *m && !allowed.iter().any(|a| a == v) {
                    *m = false;
                }
            }
        }
        for (measure, lo, hi) in &self.measure_between {
            let col = warehouse.measure(measure)?;
            for (i, m) in mask.iter_mut().enumerate() {
                if *m {
                    match col.get(rows.start + i) {
                        Some(x) if x >= *lo && x < *hi => {}
                        _ => *m = false,
                    }
                }
            }
        }
        Ok(mask)
    }
}

/// Build strategy — the group-by ablation of DESIGN.md §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BuildStrategy {
    /// Hash aggregation (default).
    #[default]
    Hash,
    /// Sort-based aggregation: sort row indices by key, then scan runs.
    Sort,
    /// Hash aggregation across worker threads, merged at the end.
    ParallelHash,
}

/// Specification of a cube.
#[derive(Debug, Clone, PartialEq)]
pub struct CubeSpec {
    /// Dimension attributes forming the axes, in display order.
    pub axes: Vec<String>,
    /// What is aggregated in each cell.
    pub measure: MeasureRef,
    /// The aggregate function.
    pub agg: Aggregate,
    /// Row filter.
    pub filter: CubeFilter,
    /// Build strategy.
    pub strategy: BuildStrategy,
}

impl CubeSpec {
    /// Count of fact rows grouped by `axes`.
    pub fn count(axes: Vec<&str>) -> Self {
        CubeSpec {
            axes: axes.into_iter().map(String::from).collect(),
            measure: MeasureRef::RowCount,
            agg: Aggregate::Count,
            filter: CubeFilter::all(),
            strategy: BuildStrategy::Hash,
        }
    }

    /// Aggregate of a measure grouped by `axes`.
    pub fn measure(axes: Vec<&str>, agg: Aggregate, measure: impl Into<String>) -> Self {
        CubeSpec {
            axes: axes.into_iter().map(String::from).collect(),
            measure: MeasureRef::Measure(measure.into()),
            agg,
            filter: CubeFilter::all(),
            strategy: BuildStrategy::Hash,
        }
    }

    /// Distinct count of a degenerate column grouped by `axes`
    /// (e.g. distinct patients per cell).
    pub fn distinct(axes: Vec<&str>, degenerate: impl Into<String>) -> Self {
        CubeSpec {
            axes: axes.into_iter().map(String::from).collect(),
            measure: MeasureRef::DistinctDegenerate(degenerate.into()),
            agg: Aggregate::Count,
            filter: CubeFilter::all(),
            strategy: BuildStrategy::Hash,
        }
    }

    /// Replace the filter.
    pub fn with_filter(mut self, filter: CubeFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Replace the strategy.
    pub fn with_strategy(mut self, strategy: BuildStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Canonical fingerprint of the *result* this spec produces. Two
    /// specs with equal fingerprints build identical cubes: filter
    /// conjuncts are order-insensitive, and the build strategy is
    /// excluded because every strategy computes the same cells. Axis
    /// order stays significant (it fixes coordinate order).
    pub fn fingerprint(&self) -> String {
        format!(
            "cube|axes={}|measure={:?}|agg={:?}|filter={}",
            self.axes.join(","),
            self.measure,
            self.agg,
            self.filter.canonical()
        )
    }

    /// Every dimension attribute the spec reads: axes plus attribute
    /// filter conditions. Measures and degenerates are fact-resident
    /// and deliberately excluded — deltas cover them through the
    /// appended-row range, not the dimension set.
    pub fn dimension_attributes(&self) -> impl Iterator<Item = &str> {
        self.axes
            .iter()
            .map(String::as_str)
            .chain(self.filter.attribute_in.iter().map(|(a, _)| a.as_str()))
    }
}

/// A built cube.
#[derive(Debug, Clone, PartialEq)]
pub struct Cube {
    /// Axis attribute names, fixing coordinate order.
    pub axes: Vec<String>,
    /// The measure aggregated in the cells.
    pub measure: MeasureRef,
    /// The aggregate function.
    pub agg: Aggregate,
    cells: HashMap<Vec<Value>, CellStats>,
}

impl Cube {
    /// Build a cube over `warehouse` per `spec`.
    ///
    /// ```
    /// use clinical_types::{DataType, FieldDef, Record, Schema, Table, Value};
    /// use olap::{Cube, CubeSpec};
    /// use warehouse::{DimensionDef, FactDef, LoadPlan, StarSchema, Warehouse};
    ///
    /// let star = StarSchema::new(
    ///     FactDef::new("Facts", vec!["FBG"], vec![]),
    ///     vec![DimensionDef::new("Bloods", vec!["FBG_Band"])],
    /// )?;
    /// let schema = Schema::new(vec![
    ///     FieldDef::nullable("FBG", DataType::Float),
    ///     FieldDef::nullable("FBG_Band", DataType::Text),
    /// ])?;
    /// let rows = vec![
    ///     Record::new(vec![5.0.into(), "very good".into()]),
    ///     Record::new(vec![5.2.into(), "very good".into()]),
    ///     Record::new(vec![8.0.into(), "Diabetic".into()]),
    /// ];
    /// let wh = Warehouse::load(
    ///     &LoadPlan::from_star(star),
    ///     &Table::from_rows(schema, rows)?,
    /// )?;
    ///
    /// let cube = Cube::build(&wh, &CubeSpec::count(vec!["FBG_Band"]))?;
    /// assert_eq!(cube.value(&[Value::from("very good")]), Some(2.0));
    /// assert_eq!(cube.value(&[Value::from("Diabetic")]), Some(1.0));
    /// # Ok::<(), clinical_types::Error>(())
    /// ```
    pub fn build(warehouse: &Warehouse, spec: &CubeSpec) -> Result<Cube> {
        Ok(Cube::build_with_stats(warehouse, spec)?.0)
    }

    /// [`Cube::build`] returning the scan statistics alongside the
    /// cube — how many sealed segments the scan pruned and how many
    /// rows it actually visited (the numbers query profiles report).
    pub fn build_with_stats(warehouse: &Warehouse, spec: &CubeSpec) -> Result<(Cube, ScanStats)> {
        Cube::build_with_options(warehouse, spec, &ScanOptions::default())
    }

    /// [`Cube::build_with_stats`] with explicit [`ScanOptions`] (the
    /// pruning-ablation entry point used by the scan bench).
    pub fn build_with_options(
        warehouse: &Warehouse,
        spec: &CubeSpec,
        options: &ScanOptions,
    ) -> Result<(Cube, ScanStats)> {
        let mut span = obs::span("olap.cube_build");
        let (cells, stats) = match SegmentedScan::plan(warehouse, spec, options)? {
            Some(scan) => scan.execute()?,
            None => {
                let inputs = CubeInputs::resolve(warehouse, spec)?;
                let cells = match spec.strategy {
                    BuildStrategy::Hash => inputs.build_hash(),
                    BuildStrategy::Sort => inputs.build_sort(),
                    BuildStrategy::ParallelHash => inputs.build_parallel()?,
                };
                let stats = ScanStats {
                    segments_total: warehouse.segments().len() as u64,
                    segments_pruned: 0,
                    rows_scanned: inputs.n_rows() as u64,
                    morsels_executed: 0,
                };
                (cells, stats)
            }
        };
        span.record("strategy", format!("{:?}", spec.strategy));
        span.record("rows", stats.rows_scanned);
        span.record("segments_pruned", stats.segments_pruned);
        span.record("cells", cells.len());
        Ok((
            Cube {
                axes: spec.axes.clone(),
                measure: spec.measure.clone(),
                agg: spec.agg,
                cells,
            },
            stats,
        ))
    }

    /// Whether cubes built from `spec` can be patched in place by
    /// [`Cube::apply_delta`]. Count/sum/mean cells keep their raw
    /// accumulators (row count, valid count, sum), so folding appended
    /// rows is exact; min/max are monotone under append-only deltas.
    /// Distinct counting is excluded: its cells carry full value sets,
    /// so a retained cube would grow without bound — those rebuild.
    pub fn supports_incremental(spec: &CubeSpec) -> bool {
        !matches!(spec.measure, MeasureRef::DistinctDegenerate(_))
    }

    /// Fold one [`DeltaSummary`] into the cube, patching it from the
    /// epoch it was built at to the delta's target epoch.
    ///
    /// Returns `Ok(true)` when the cube now reflects the post-delta
    /// warehouse, `Ok(false)` when the delta cannot be applied
    /// incrementally (existing rows were rewritten, the spec reads a
    /// structurally-changed dimension, or the aggregate is not
    /// incrementally maintainable) and the caller must rebuild.
    /// `warehouse` must already be at (or past) the delta's target
    /// epoch, and `spec` must be the spec the cube was built from.
    pub fn apply_delta(
        &mut self,
        warehouse: &Warehouse,
        spec: &CubeSpec,
        delta: &DeltaSummary,
    ) -> Result<bool> {
        if self.axes != spec.axes || self.measure != spec.measure || self.agg != spec.agg {
            return Err(Error::invalid(
                "cube was not built from the spec it is being patched against",
            ));
        }
        if delta.rewrote_existing || !Cube::supports_incremental(spec) {
            return Ok(false);
        }
        // A structural mutation (e.g. a new feedback dimension) is a
        // no-op for the cube only if the spec provably never reads a
        // touched dimension; unresolvable attributes force a rebuild.
        // Appends are exempt: any dimension they grow shows up only in
        // the appended rows, which the fold below covers.
        if delta.kind != warehouse::DeltaKind::Append && !delta.dimensions.is_empty() {
            for attr in spec.dimension_attributes() {
                match warehouse.find_attribute(attr) {
                    Ok((di, _)) => {
                        if delta.dimensions.contains(&warehouse.dimensions()[di].name) {
                            return Ok(false);
                        }
                    }
                    Err(_) => return Ok(false),
                }
            }
        }
        let rows = delta.appended.clone();
        if rows.is_empty() {
            return Ok(true);
        }
        if rows.end > warehouse.n_facts() {
            return Err(Error::invalid(format!(
                "delta appends rows {}..{} but the warehouse has {} facts",
                rows.start,
                rows.end,
                warehouse.n_facts()
            )));
        }
        let mut span = obs::span("olap.cube_apply_delta");
        let axis_cols = spec
            .axes
            .iter()
            .map(|a| warehouse.attribute_column_range(a, rows.clone()))
            .collect::<Result<Vec<_>>>()?;
        let measure_col = match &spec.measure {
            MeasureRef::Measure(name) => Some(warehouse.measure(name)?),
            MeasureRef::RowCount | MeasureRef::DistinctDegenerate(_) => None,
        };
        let mask = spec.filter.mask_range(warehouse, rows.clone())?;
        let mut folded = 0usize;
        for (i, row) in rows.clone().enumerate() {
            if !mask[i] {
                continue;
            }
            let key: Vec<Value> = axis_cols.iter().map(|c| c[i].clone()).collect();
            let cell = self
                .cells
                .entry(key)
                .or_insert_with(|| CellStats::new(false));
            cell.push(measure_col.and_then(|m| m.get(row)), None);
            folded += 1;
        }
        span.record("appended", rows.len());
        span.record("folded", folded);
        span.record("cells", self.cells.len());
        Ok(true)
    }

    /// Number of populated cells.
    pub fn n_cells(&self) -> usize {
        self.cells.len()
    }

    /// Finalized value at exact coordinates (axis order).
    pub fn value(&self, coords: &[Value]) -> Option<f64> {
        self.cells
            .get(coords)
            .and_then(|c| c.finalize(self.agg, &self.measure))
    }

    /// Raw accumulator at coordinates.
    pub fn cell(&self, coords: &[Value]) -> Option<&CellStats> {
        self.cells.get(coords)
    }

    /// Iterate `(coords, finalized value)`; cells whose aggregate
    /// finalises to `None` are skipped.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<Value>, f64)> + '_ {
        self.cells
            .iter()
            .filter_map(|(k, c)| c.finalize(self.agg, &self.measure).map(|v| (k, v)))
    }

    /// Distinct coordinate values observed along one axis, sorted.
    pub fn axis_values(&self, axis: &str) -> Result<Vec<Value>> {
        let idx = self.axis_index(axis)?;
        let mut values: Vec<Value> = self
            .cells
            .keys()
            .map(|k| k[idx].clone())
            .collect::<std::collections::HashSet<_>>()
            .into_iter()
            .collect();
        values.sort();
        Ok(values)
    }

    /// Position of an axis.
    pub fn axis_index(&self, axis: &str) -> Result<usize> {
        self.axes
            .iter()
            .position(|a| a == axis)
            .ok_or_else(|| Error::invalid(format!("cube has no axis `{axis}`")))
    }

    /// Slice: fix `axis = value`, producing a cube without that axis.
    pub fn slice(&self, axis: &str, value: &Value) -> Result<Cube> {
        let idx = self.axis_index(axis)?;
        let mut cells: HashMap<Vec<Value>, CellStats> = HashMap::new();
        for (coords, stats) in &self.cells {
            if &coords[idx] != value {
                continue;
            }
            let mut rest = coords.clone();
            rest.remove(idx);
            cells
                .entry(rest)
                .or_insert_with(|| CellStats::new(stats.distinct.is_some()))
                .merge(stats);
        }
        let mut axes = self.axes.clone();
        axes.remove(idx);
        Ok(Cube {
            axes,
            measure: self.measure.clone(),
            agg: self.agg,
            cells,
        })
    }

    /// Dice: restrict `axis` to `values`, keeping the axis.
    pub fn dice(&self, axis: &str, values: &[Value]) -> Result<Cube> {
        let idx = self.axis_index(axis)?;
        let cells = self
            .cells
            .iter()
            .filter(|(coords, _)| values.contains(&coords[idx]))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        Ok(Cube {
            axes: self.axes.clone(),
            measure: self.measure.clone(),
            agg: self.agg,
            cells,
        })
    }

    /// Roll-up: remove `axis` entirely, merging cells across it.
    pub fn roll_up(&self, axis: &str) -> Result<Cube> {
        let idx = self.axis_index(axis)?;
        let mut cells: HashMap<Vec<Value>, CellStats> = HashMap::new();
        for (coords, stats) in &self.cells {
            let mut rest = coords.clone();
            rest.remove(idx);
            cells
                .entry(rest)
                .or_insert_with(|| CellStats::new(stats.distinct.is_some()))
                .merge(stats);
        }
        let mut axes = self.axes.clone();
        axes.remove(idx);
        Ok(Cube {
            axes,
            measure: self.measure.clone(),
            agg: self.agg,
            cells,
        })
    }

    /// The `k` largest cells by finalized value, descending (ties
    /// break by coordinate order, deterministically) — the "top
    /// aggregates" the Decision Optimisation component validates.
    pub fn top_k(&self, k: usize) -> Vec<(Vec<Value>, f64)> {
        let mut cells: Vec<(Vec<Value>, f64)> = self.iter().map(|(c, v)| (c.clone(), v)).collect();
        cells.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        cells.truncate(k);
        cells
    }

    /// Grand total: roll every axis up into a single cell.
    pub fn grand_total(&self) -> Option<f64> {
        let mut total = CellStats::new(matches!(self.measure, MeasureRef::DistinctDegenerate(_)));
        for stats in self.cells.values() {
            total.merge(stats);
        }
        total.finalize(self.agg, &self.measure)
    }
}

/// Resolved, column-oriented inputs for a cube build.
struct CubeInputs<'a> {
    axis_cols: Vec<Vec<&'a Value>>,
    measure_col: Option<&'a warehouse::MeasureColumn>,
    distinct_col: Option<&'a [Value]>,
    mask: Vec<bool>,
    count_valid_only: bool,
}

impl<'a> CubeInputs<'a> {
    fn resolve(wh: &'a Warehouse, spec: &CubeSpec) -> Result<Self> {
        if spec.axes.is_empty() {
            return Err(Error::invalid("a cube needs at least one axis"));
        }
        let axis_cols = spec
            .axes
            .iter()
            .map(|a| wh.attribute_column(a))
            .collect::<Result<Vec<_>>>()?;
        let (measure_col, distinct_col, count_valid_only) = match &spec.measure {
            MeasureRef::RowCount => (None, None, false),
            MeasureRef::Measure(name) => (Some(wh.measure(name)?), None, true),
            MeasureRef::DistinctDegenerate(name) => {
                (None, Some(wh.degenerate_column(name)?), false)
            }
        };
        Ok(CubeInputs {
            axis_cols,
            measure_col,
            distinct_col,
            mask: spec.filter.mask(wh)?,
            count_valid_only,
        })
    }

    fn n_rows(&self) -> usize {
        self.mask.len()
    }

    fn key_of(&self, row: usize) -> Vec<Value> {
        self.axis_cols.iter().map(|c| c[row].clone()).collect()
    }

    fn push_row(&self, cell: &mut CellStats, row: usize) {
        let measure = self.measure_col.and_then(|m| m.get(row));
        let distinct = self.distinct_col.map(|c| &c[row]);
        // For Measure cells a missing value still counts the row but
        // not the valid set; push handles both.
        let _ = self.count_valid_only;
        cell.push(measure, distinct);
    }

    fn track_distinct(&self) -> bool {
        self.distinct_col.is_some()
    }

    fn build_hash(&self) -> HashMap<Vec<Value>, CellStats> {
        let mut cells: HashMap<Vec<Value>, CellStats> = HashMap::new();
        for row in 0..self.n_rows() {
            if !self.mask[row] {
                continue;
            }
            let key = self.key_of(row);
            let cell = cells
                .entry(key)
                .or_insert_with(|| CellStats::new(self.track_distinct()));
            self.push_row(cell, row);
        }
        cells
    }

    fn build_sort(&self) -> HashMap<Vec<Value>, CellStats> {
        let mut rows: Vec<usize> = (0..self.n_rows()).filter(|&r| self.mask[r]).collect();
        rows.sort_by(|&a, &b| {
            for col in &self.axis_cols {
                let ord = col[a].cmp(col[b]);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        let mut cells: HashMap<Vec<Value>, CellStats> = HashMap::new();
        let mut i = 0;
        while i < rows.len() {
            let mut j = i;
            let key = self.key_of(rows[i]);
            let mut cell = CellStats::new(self.track_distinct());
            while j < rows.len()
                && self
                    .axis_cols
                    .iter()
                    .all(|col| col[rows[j]] == col[rows[i]])
            {
                self.push_row(&mut cell, rows[j]);
                j += 1;
            }
            cells.insert(key, cell);
            i = j;
        }
        cells
    }

    fn build_parallel(&self) -> Result<HashMap<Vec<Value>, CellStats>> {
        let n = self.n_rows();
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
            .clamp(1, 8);
        if n < 4096 || workers == 1 {
            return Ok(self.build_hash());
        }
        let chunk = n.div_ceil(workers);
        // Worker spans must be parented explicitly: the build fans out
        // to scope threads, where the thread-local span stack is empty.
        let ctx = obs::current_context();
        let partials = crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for w in 0..workers {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                handles.push(
                    scope.spawn(move |_| -> Result<HashMap<Vec<Value>, CellStats>> {
                        let mut worker_span = obs::span_child_of("olap.cube_build_worker", ctx);
                        worker_span.record("worker", w);
                        worker_span.record("rows", hi - lo);
                        // Error-mode faults fail this worker's chunk (and
                        // so the whole build, cleanly); panic-mode faults
                        // exercise the scope-join containment below.
                        fault::point("olap.cube_worker")
                            .map_err(|e| Error::invalid(e.to_string()))?;
                        let mut cells: HashMap<Vec<Value>, CellStats> = HashMap::new();
                        for row in lo..hi {
                            if !self.mask[row] {
                                continue;
                            }
                            let cell = cells
                                .entry(self.key_of(row))
                                .or_insert_with(|| CellStats::new(self.track_distinct()));
                            self.push_row(cell, row);
                        }
                        Ok(cells)
                    }),
                );
            }
            handles
                .into_iter()
                .map(|h| h.join())
                .collect::<std::thread::Result<Vec<_>>>()
        })
        // Both layers fail only when a worker panicked; surface that
        // as a query error instead of propagating the panic.
        .and_then(|inner| inner)
        .map_err(|_| Error::invalid("cube build worker panicked"))?
        .into_iter()
        .collect::<Result<Vec<_>>>()?;

        let mut merged: HashMap<Vec<Value>, CellStats> = HashMap::new();
        for partial in partials {
            for (key, stats) in partial {
                merged
                    .entry(key)
                    .or_insert_with(|| CellStats::new(self.track_distinct()))
                    .merge(&stats);
            }
        }
        Ok(merged)
    }
}

/// Volume statistics of one cube build: how much of the warehouse the
/// scan touched, and how much pruning avoided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Sealed segments the build considered (0 on the legacy
    /// whole-column path when nothing is sealed).
    pub segments_total: u64,
    /// Sealed segments skipped on zone-map evidence alone — never
    /// fetched, never decoded.
    pub segments_pruned: u64,
    /// Fact rows actually visited (surviving segments plus the
    /// mutable tail; the whole fact table on the legacy path).
    pub rows_scanned: u64,
    /// Morsels the vectorized path claimed from the work queue (0 on
    /// the scalar and legacy paths).
    pub morsels_executed: u64,
}

/// Toggles for the segmented scan — the ablation axes of the scan
/// bench. Production uses [`ScanOptions::default`] (everything on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanOptions {
    /// Consult zone maps to skip whole segments.
    pub zone_pruning: bool,
    /// Fetch only the columns the spec references (with the disk
    /// backend, unreferenced columns are never even decoded).
    pub column_pruning: bool,
    /// Permit the segmented path at all; `false` forces the legacy
    /// whole-column scan (the bench baseline).
    pub segments: bool,
    /// Run surviving segments through the vectorized kernels
    /// (selection bitmaps, dense group ids, aggregate lanes) instead
    /// of the row-at-a-time scalar loop. The scan silently falls back
    /// to the scalar loop when the dense group domain would exceed
    /// [`crate::kernels::MAX_DENSE_GROUPS`].
    pub vectorized: bool,
    /// Rows per morsel on the vectorized path (clamped to ≥ 1).
    pub morsel_rows: usize,
    /// Worker-thread override for [`BuildStrategy::ParallelHash`]
    /// builds; `None` sizes the pool from the machine's available
    /// parallelism (clamped to 8, the bench's thread-sweep knob).
    pub workers: Option<usize>,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            zone_pruning: true,
            column_pruning: true,
            segments: true,
            vectorized: true,
            morsel_rows: crate::kernels::DEFAULT_MORSEL_ROWS,
            workers: None,
        }
    }
}

/// A validated segmented scan: the spec's columns all exist in the
/// sealed schema and the sealed rows provably mirror fact rows
/// `0..watermark`, so the build may scan segments plus the tail
/// instead of whole fact-table columns.
struct SegmentedScan<'a> {
    warehouse: &'a Warehouse,
    spec: &'a CubeSpec,
    /// Per axis: `(dimension name, dimension index, attribute index)`.
    axes: Vec<(String, usize, usize)>,
    /// Per filtered dimension: surrogate keys whose tuples satisfy
    /// every attribute condition on that dimension (intersection).
    key_filters: Vec<(String, BTreeSet<u32>)>,
    /// Columns a segment fetch must materialise.
    columns: ColumnSet,
    metas: Vec<Arc<SegmentMeta>>,
    watermark: usize,
    zone_pruning: bool,
    vectorized: bool,
    morsel_rows: usize,
    workers: Option<usize>,
}

/// Surrogate-key cell map produced by a segment scan, before keys are
/// translated to attribute values.
type RawCells = HashMap<Vec<u32>, CellStats>;

/// One morsel worker's accumulation state: its aggregate lanes plus
/// the selection/group-id scratch vectors reused across morsels.
struct KernelState {
    lanes: AggLanes,
    sel: Vec<u32>,
    gids: Vec<u32>,
}

/// Dense grouping over the *distinct* dimensions of the axis list.
/// Axes drawn from the same dimension table share one surrogate key
/// per row, so they share one radix component: grouping `Gender ×
/// Age_Band` when both live in the personal dimension costs that
/// dimension's cardinality once, not its square — which keeps the
/// paper model's multi-attribute dimensions inside
/// [`crate::kernels::MAX_DENSE_GROUPS`].
struct DenseGrouping {
    layout: GroupLayout,
    /// Dimension column name per layout slot (first axis wins).
    slot_dims: Vec<String>,
    /// Axis index → layout slot; repeated dimensions repeat a slot.
    axis_slots: Vec<usize>,
}

impl DenseGrouping {
    /// Expand a layout slot-key tuple back to the per-axis surrogate
    /// key tuple the scalar translate step expects.
    fn axis_keys(&self, slot_keys: &[u32]) -> Vec<u32> {
        self.axis_slots.iter().map(|&s| slot_keys[s]).collect()
    }
}

impl<'a> SegmentedScan<'a> {
    /// Decide whether `spec` can run as a segmented scan over
    /// `warehouse`, and resolve everything the scan needs if so.
    /// `Ok(None)` means "use the legacy whole-column path" — never an
    /// error, since the legacy path answers every buildable spec.
    fn plan(
        warehouse: &'a Warehouse,
        spec: &'a CubeSpec,
        options: &ScanOptions,
    ) -> Result<Option<SegmentedScan<'a>>> {
        let seg = warehouse.segments();
        if !options.segments || spec.axes.is_empty() || seg.watermark() == 0 || seg.is_empty() {
            return Ok(None);
        }
        // Sealed rows mirror fact rows 0..watermark only while nothing
        // rewrote them since compaction; an aged-out delta log cannot
        // prove that, so fall back (the serve layer separately counts
        // those aged-out events).
        match warehouse.deltas_since(seg.compacted_epoch()) {
            Some(chain) => {
                if ChangeSet::fold(&chain).rewrote_existing {
                    return Ok(None);
                }
            }
            None => return Ok(None),
        }
        let metas = seg.metas().to_vec();
        let schema = match metas.first() {
            Some(m) => Arc::clone(m),
            None => return Ok(None),
        };

        // Resolve every referenced column against the sealed schema;
        // anything missing (e.g. a feedback dimension added after the
        // last compaction) falls back to the legacy path.
        let mut axes = Vec::with_capacity(spec.axes.len());
        let mut columns = ColumnSet::empty();
        for attr in &spec.axes {
            let (di, ai) = warehouse.find_attribute(attr)?;
            let dim = warehouse
                .dimensions()
                .get(di)
                .ok_or_else(|| Error::invalid(format!("dangling dimension index {di}")))?;
            if schema.key_zone(&dim.name).is_none() {
                return Ok(None);
            }
            columns = columns.with_key(dim.name.clone());
            axes.push((dim.name.clone(), di, ai));
        }
        // Attribute filters become per-dimension allowed-key sets by
        // scanning the (small, dictionary-encoded) dimension tables —
        // the resolution zone maps are then matched against.
        let mut allowed_by_dim: BTreeMap<String, BTreeSet<u32>> = BTreeMap::new();
        for (attr, allowed) in spec.filter.attribute_conditions() {
            let (di, ai) = warehouse.find_attribute(attr)?;
            let dim = warehouse
                .dimensions()
                .get(di)
                .ok_or_else(|| Error::invalid(format!("dangling dimension index {di}")))?;
            if schema.key_zone(&dim.name).is_none() {
                return Ok(None);
            }
            columns = columns.with_key(dim.name.clone());
            let mut keys = BTreeSet::new();
            for k in 0..dim.len() as u32 {
                let hit = dim
                    .tuple(k)
                    .and_then(|t| t.get(ai))
                    .is_some_and(|v| allowed.iter().any(|a| a == v));
                if hit {
                    keys.insert(k);
                }
            }
            match allowed_by_dim.entry(dim.name.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(keys);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let merged = e.get().intersection(&keys).copied().collect();
                    *e.get_mut() = merged;
                }
            }
        }
        for (name, _, _) in spec.filter.measure_conditions() {
            if schema.measure_zone(name).is_none() {
                return Ok(None);
            }
            columns = columns.with_measure(name.clone());
        }
        match &spec.measure {
            MeasureRef::RowCount => {}
            MeasureRef::Measure(name) => {
                if schema.measure_zone(name).is_none() {
                    return Ok(None);
                }
                columns = columns.with_measure(name.clone());
            }
            MeasureRef::DistinctDegenerate(name) => {
                if !schema.has_degenerate(name) {
                    return Ok(None);
                }
                columns = columns.with_degenerate(name.clone());
            }
        }
        // Column pruning is driven by the analyzer's footprint: the
        // scan materialises exactly the dimension keys the query
        // provably reads (plus the measures/degenerates gathered
        // above). A conservative footprint — some name failed to
        // resolve — disables column pruning instead of guessing.
        let catalog = analyze::Catalog::from_star(warehouse.star());
        let footprint = crate::semantic::footprint_cube(&catalog, spec);
        if footprint.is_conservative() || !options.column_pruning {
            columns = ColumnSet::all();
        } else {
            for dim in footprint.dimensions() {
                if schema.key_zone(dim).is_none() {
                    return Ok(None);
                }
                columns = columns.with_key(dim.clone());
            }
        }
        Ok(Some(SegmentedScan {
            warehouse,
            spec,
            axes,
            key_filters: allowed_by_dim.into_iter().collect(),
            columns,
            metas,
            watermark: seg.watermark(),
            zone_pruning: options.zone_pruning,
            vectorized: options.vectorized,
            morsel_rows: options.morsel_rows,
            workers: options.workers,
        }))
    }

    /// Could any row of the segment behind `meta` pass the filter?
    fn survives_zones(&self, meta: &SegmentMeta) -> bool {
        for (dim, allowed) in &self.key_filters {
            if let Some(zone) = meta.key_zone(dim) {
                if !zone.may_contain_any(allowed) {
                    return false;
                }
            }
        }
        for (name, lo, hi) in self.spec.filter.measure_conditions() {
            if let Some(zone) = meta.measure_zone(name) {
                if !zone.may_overlap(*lo, *hi) {
                    return false;
                }
            }
        }
        true
    }

    fn track_distinct(&self) -> bool {
        matches!(self.spec.measure, MeasureRef::DistinctDegenerate(_))
    }

    /// Scan one surviving segment into a partial cell map.
    fn scan_segment(&self, meta: &SegmentMeta) -> Result<HashMap<Vec<u32>, CellStats>> {
        fault::point("olap.segment_scan").map_err(|e| Error::invalid(e.to_string()))?;
        let segment = self.warehouse.fetch_segment(meta.id, &self.columns)?;
        let missing =
            |what: &str| Error::invalid(format!("segment {} lacks column `{what}`", meta.id));
        let axis_keys = self
            .axes
            .iter()
            .map(|(dim, _, _)| segment.key_column(dim).ok_or_else(|| missing(dim)))
            .collect::<Result<Vec<_>>>()?;
        let filter_keys = self
            .key_filters
            .iter()
            .map(|(dim, allowed)| {
                segment
                    .key_column(dim)
                    .map(|col| (col, allowed))
                    .ok_or_else(|| missing(dim))
            })
            .collect::<Result<Vec<_>>>()?;
        let filter_measures = self
            .spec
            .filter
            .measure_conditions()
            .iter()
            .map(|(name, lo, hi)| {
                segment
                    .measure_column(name)
                    .map(|(values, valid)| (values, valid, *lo, *hi))
                    .ok_or_else(|| missing(name))
            })
            .collect::<Result<Vec<_>>>()?;
        let measure = match &self.spec.measure {
            MeasureRef::Measure(name) => {
                Some(segment.measure_column(name).ok_or_else(|| missing(name))?)
            }
            MeasureRef::RowCount | MeasureRef::DistinctDegenerate(_) => None,
        };
        let distinct = match &self.spec.measure {
            MeasureRef::DistinctDegenerate(name) => Some(
                segment
                    .degenerate_column(name)
                    .ok_or_else(|| missing(name))?,
            ),
            MeasureRef::RowCount | MeasureRef::Measure(_) => None,
        };
        // Group by raw surrogate keys: the hot loop never touches the
        // dictionary, and the (few) groups are translated to attribute
        // values once per cell in `execute`.
        let mut cells: HashMap<Vec<u32>, CellStats> = HashMap::new();
        'rows: for r in 0..segment.rows() {
            for (col, allowed) in &filter_keys {
                if !allowed.contains(&col[r]) {
                    continue 'rows;
                }
            }
            for (values, valid, lo, hi) in &filter_measures {
                if !(valid[r] && values[r] >= *lo && values[r] < *hi) {
                    continue 'rows;
                }
            }
            let key: Vec<u32> = axis_keys.iter().map(|keys| keys[r]).collect();
            let cell = cells
                .entry(key)
                .or_insert_with(|| CellStats::new(self.track_distinct()));
            let measure_value = measure.and_then(|(values, valid)| valid[r].then(|| values[r]));
            cell.push(measure_value, distinct.map(|col| &col[r]));
        }
        Ok(cells)
    }

    /// Dense grouping over the spec's axes, or `None` when any axis
    /// dimension is unresolvable/empty or the dense domain (over
    /// *distinct* dimensions — same-dimension axes share a radix
    /// slot) exceeds [`crate::kernels::MAX_DENSE_GROUPS`] — the
    /// scalar hash path handles those.
    fn dense_grouping(&self) -> Option<DenseGrouping> {
        let dims = self.warehouse.dimensions();
        let mut slot_di: Vec<usize> = Vec::new();
        let mut slot_dims: Vec<String> = Vec::new();
        let mut cards: Vec<u32> = Vec::new();
        let mut axis_slots = Vec::with_capacity(self.axes.len());
        for (dim, di, _) in &self.axes {
            let slot = match slot_di.iter().position(|d| d == di) {
                Some(s) => s,
                None => {
                    slot_di.push(*di);
                    slot_dims.push(dim.clone());
                    cards.push(dims.get(*di).map(|d| d.len() as u32)?);
                    slot_di.len() - 1
                }
            };
            axis_slots.push(slot);
        }
        Some(DenseGrouping {
            layout: GroupLayout::try_new(&cards)?,
            slot_dims,
            axis_slots,
        })
    }

    /// Vectorized scan of one morsel: fold every predicate into a
    /// selection bitmap, compose dense group ids for the survivors,
    /// then stream them into the worker's aggregate lanes. The
    /// scratch vectors in `state` are reused across morsels.
    fn scan_morsel(
        &self,
        segment: &Segment,
        rows: Range<usize>,
        grouping: &DenseGrouping,
        luts: &[(String, KeyLut)],
        state: &mut KernelState,
    ) -> Result<()> {
        let slice = segment.slice(rows)?;
        let missing = |what: &str| Error::invalid(format!("segment slice lacks column `{what}`"));
        let mut bitmap = SelectionBitmap::all(slice.len());
        for (dim, lut) in luts {
            bitmap.and_key_in(slice.key_slice(dim).ok_or_else(|| missing(dim))?, lut);
        }
        for (name, lo, hi) in self.spec.filter.measure_conditions() {
            let m = slice.measure_slice(name).ok_or_else(|| missing(name))?;
            bitmap.and_measure_between(m.values, m.valid, *lo, *hi);
        }
        let KernelState { lanes, sel, gids } = state;
        sel.clear();
        bitmap.collect_into(sel);
        if sel.is_empty() {
            return Ok(());
        }
        let slot_keys = grouping
            .slot_dims
            .iter()
            .map(|dim| slice.key_slice(dim).ok_or_else(|| missing(dim)))
            .collect::<Result<Vec<_>>>()?;
        gids.clear();
        grouping.layout.compose(&slot_keys, sel, gids);
        match &self.spec.measure {
            MeasureRef::RowCount => lanes.accumulate_rows(gids),
            MeasureRef::Measure(name) => {
                let m = slice.measure_slice(name).ok_or_else(|| missing(name))?;
                lanes.accumulate_measure(gids, sel, m.values, m.valid);
            }
            MeasureRef::DistinctDegenerate(name) => {
                let vals = slice.degenerate_slice(name).ok_or_else(|| missing(name))?;
                lanes.accumulate_distinct(gids, sel, vals);
            }
        }
        Ok(())
    }

    /// Kernel path over the surviving segments: plan morsels into a
    /// shared queue, let workers claim them dynamically, merge lanes,
    /// and decode occupied group ids back to surrogate-key tuples.
    /// `Ok(None)` means "use the scalar loop" (vectorization disabled
    /// or the group domain is too large for dense lanes).
    fn vectorized_cells(&self, survivors: &[&Arc<SegmentMeta>]) -> Result<Option<(RawCells, u64)>> {
        if !self.vectorized || survivors.is_empty() {
            return Ok(None);
        }
        let grouping = match self.dense_grouping() {
            Some(g) => g,
            None => return Ok(None),
        };
        // Filter sets become packed LUTs; keys past the largest
        // allowed key are non-members by construction, so the LUT
        // domain only needs to reach that far.
        let luts: Vec<(String, KeyLut)> = self
            .key_filters
            .iter()
            .map(|(dim, allowed)| {
                let domain = allowed.iter().next_back().map_or(0, |k| k + 1);
                (dim.clone(), KeyLut::new(domain, allowed.iter().copied()))
            })
            .collect();
        let kind = match &self.spec.measure {
            MeasureRef::RowCount => LaneKind::Rows,
            MeasureRef::Measure(_) => LaneKind::Measure,
            MeasureRef::DistinctDegenerate(_) => LaneKind::Distinct,
        };
        let segment_rows: Vec<usize> = survivors.iter().map(|m| m.rows as usize).collect();
        let queue = MorselQueue::plan(&segment_rows, self.morsel_rows);
        let worker_count = if self.spec.strategy == BuildStrategy::ParallelHash {
            self.workers
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(4)
                })
                .clamp(1, 8)
                .min(queue.len().max(1))
        } else {
            1
        };
        // One worker's life: claim a morsel, reuse (or fetch) its
        // segment, run the kernels, repeat until the queue is dry.
        // The per-worker segment memo makes consecutive morsels of
        // one segment a single fetch even on cold backends.
        let run_worker = |worker: usize,
                          ctx: Option<obs::SpanContext>|
         -> Result<(AggLanes, u64)> {
            let _watchdog = obs::task_scope("olap.morsel_scan", std::time::Duration::from_secs(60));
            let mut span = obs::span_child_of("olap.morsel_worker", ctx);
            span.record("worker", worker);
            let mut state = KernelState {
                lanes: AggLanes::new(kind, grouping.layout.groups()),
                sel: Vec::new(),
                gids: Vec::new(),
            };
            let mut executed = 0u64;
            let mut rows_seen = 0u64;
            let mut cached: Option<(usize, Arc<Segment>)> = None;
            while let Some(m) = queue.pop() {
                let segment = match &cached {
                    Some((s, seg)) if *s == m.segment => Arc::clone(seg),
                    _ => {
                        fault::point("olap.segment_scan")
                            .map_err(|e| Error::invalid(e.to_string()))?;
                        let meta = survivors[m.segment];
                        let seg = self.warehouse.fetch_segment(meta.id, &self.columns)?;
                        cached = Some((m.segment, Arc::clone(&seg)));
                        seg
                    }
                };
                let mut morsel_span = obs::span("olap.morsel");
                morsel_span.record("segment", survivors[m.segment].id);
                morsel_span.record("rows", m.rows.len());
                self.scan_morsel(&segment, m.rows.clone(), &grouping, &luts, &mut state)?;
                rows_seen += m.rows.len() as u64;
                executed += 1;
            }
            span.record("morsels", executed);
            span.record("rows", rows_seen);
            Ok((state.lanes, executed))
        };
        let (lanes, executed) = if worker_count <= 1 {
            run_worker(0, obs::current_context())?
        } else {
            let ctx = obs::current_context();
            let run_worker = &run_worker;
            let results = crossbeam::scope(|scope| {
                let handles: Vec<_> = (0..worker_count)
                    .map(|w| scope.spawn(move |_| run_worker(w, ctx)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join())
                    .collect::<std::thread::Result<Vec<_>>>()
            })
            .and_then(|inner| inner)
            .map_err(|_| Error::invalid("morsel worker panicked"))?
            .into_iter()
            .collect::<Result<Vec<_>>>()?;
            let mut merged = AggLanes::new(kind, grouping.layout.groups());
            let mut total = 0u64;
            for (worker_lanes, n) in results {
                merged.merge(worker_lanes);
                total += n;
            }
            (merged, total)
        };
        let cells = lanes.into_cells();
        let mut raw = HashMap::with_capacity(cells.len());
        for (gid, stats) in cells {
            raw.insert(grouping.axis_keys(&grouping.layout.decode(gid)), stats);
        }
        Ok(Some((raw, executed)))
    }

    /// Run the scan: prune on zone maps, run survivors through the
    /// vectorized kernels (morsel-parallel under
    /// [`BuildStrategy::ParallelHash`]) with the scalar row loop as
    /// fallback, then fold the mutable tail through the legacy row
    /// path.
    fn execute(&self) -> Result<(HashMap<Vec<Value>, CellStats>, ScanStats)> {
        let survivors: Vec<&Arc<SegmentMeta>> = self
            .metas
            .iter()
            .filter(|m| !self.zone_pruning || self.survives_zones(m))
            .collect();
        let mut stats = ScanStats {
            segments_total: self.metas.len() as u64,
            segments_pruned: (self.metas.len() - survivors.len()) as u64,
            rows_scanned: survivors.iter().map(|m| m.rows).sum(),
            morsels_executed: 0,
        };
        let track = self.track_distinct();
        let raw_cells: HashMap<Vec<u32>, CellStats> = match self.vectorized_cells(&survivors)? {
            Some((cells, morsels)) => {
                stats.morsels_executed = morsels;
                cells
            }
            None => {
                let partials: Vec<HashMap<Vec<u32>, CellStats>> =
                    if self.spec.strategy == BuildStrategy::ParallelHash && survivors.len() > 1 {
                        let workers = self
                            .workers
                            .unwrap_or_else(|| {
                                std::thread::available_parallelism()
                                    .map(std::num::NonZeroUsize::get)
                                    .unwrap_or(4)
                            })
                            .clamp(1, 8)
                            .min(survivors.len());
                        let chunk = survivors.len().div_ceil(workers);
                        let ctx = obs::current_context();
                        crossbeam::scope(|scope| {
                            let mut handles = Vec::new();
                            for (w, batch) in survivors.chunks(chunk).enumerate() {
                                handles.push(scope.spawn(move |_| -> Result<Vec<_>> {
                                    let mut span =
                                        obs::span_child_of("olap.cube_build_worker", ctx);
                                    span.record("worker", w);
                                    span.record("segments", batch.len());
                                    batch.iter().map(|m| self.scan_segment(m)).collect()
                                }));
                            }
                            handles
                                .into_iter()
                                .map(|h| h.join())
                                .collect::<std::thread::Result<Vec<_>>>()
                        })
                        .and_then(|inner| inner)
                        .map_err(|_| Error::invalid("segment scan worker panicked"))?
                        .into_iter()
                        .collect::<Result<Vec<Vec<_>>>>()?
                        .into_iter()
                        .flatten()
                        .collect()
                    } else {
                        survivors
                            .iter()
                            .map(|m| self.scan_segment(m))
                            .collect::<Result<Vec<_>>>()?
                    };
                let mut merged: HashMap<Vec<u32>, CellStats> = HashMap::new();
                for partial in partials {
                    for (key, partial_cell) in partial {
                        merged
                            .entry(key)
                            .or_insert_with(|| CellStats::new(track))
                            .merge(&partial_cell);
                    }
                }
                merged
            }
        };

        // Translate each surrogate-key group to attribute values —
        // once per cell, not once per row.
        let dims = self.warehouse.dimensions();
        let mut cells: HashMap<Vec<Value>, CellStats> = HashMap::with_capacity(raw_cells.len());
        for (raw_key, cell) in raw_cells {
            let mut key = Vec::with_capacity(raw_key.len());
            for (k, (dim, di, ai)) in raw_key.iter().zip(&self.axes) {
                let value = dims
                    .get(*di)
                    .and_then(|d| d.tuple(*k))
                    .and_then(|t| t.get(*ai))
                    .ok_or_else(|| {
                        Error::invalid(format!("dangling key {k} in dimension `{dim}`"))
                    })?;
                key.push(value.clone());
            }
            cells
                .entry(key)
                .or_insert_with(|| CellStats::new(track))
                .merge(&cell);
        }

        // The mutable tail — rows appended since the last compaction —
        // runs through the legacy whole-column path, restricted to the
        // tail range.
        let tail = self.watermark..self.warehouse.n_facts();
        if !tail.is_empty() {
            let axis_cols = self
                .spec
                .axes
                .iter()
                .map(|a| self.warehouse.attribute_column_range(a, tail.clone()))
                .collect::<Result<Vec<_>>>()?;
            let mask = self.spec.filter.mask_range(self.warehouse, tail.clone())?;
            let measure_col = match &self.spec.measure {
                MeasureRef::Measure(name) => Some(self.warehouse.measure(name)?),
                MeasureRef::RowCount | MeasureRef::DistinctDegenerate(_) => None,
            };
            let distinct_col = match &self.spec.measure {
                MeasureRef::DistinctDegenerate(name) => {
                    Some(self.warehouse.degenerate_column(name)?)
                }
                MeasureRef::RowCount | MeasureRef::Measure(_) => None,
            };
            for (i, row) in tail.clone().enumerate() {
                if !mask[i] {
                    continue;
                }
                let key: Vec<Value> = axis_cols.iter().map(|c| c[i].clone()).collect();
                let cell = cells.entry(key).or_insert_with(|| CellStats::new(track));
                cell.push(
                    measure_col.and_then(|m| m.get(row)),
                    distinct_col.map(|c| &c[row]),
                );
            }
            stats.rows_scanned += tail.len() as u64;
        }
        Ok((cells, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clinical_types::{DataType, FieldDef, Record, Schema, Table};
    use warehouse::{DimensionDef, FactDef, LoadPlan, StarSchema};

    #[test]
    fn fingerprint_ignores_strategy_and_conjunct_order() {
        let base = CubeSpec::count(vec!["A", "B"]).with_filter(
            CubeFilter::all()
                .equals("X", "yes")
                .measure_between("M", 1.0, 2.0),
        );
        let reordered = CubeSpec::count(vec!["A", "B"]).with_filter(
            CubeFilter::all()
                .measure_between("M", 1.0, 2.0)
                .equals("X", "yes"),
        );
        assert_eq!(base.fingerprint(), reordered.fingerprint());
        assert_eq!(
            base.fingerprint(),
            base.clone()
                .with_strategy(BuildStrategy::Sort)
                .fingerprint()
        );
        assert_eq!(
            base.fingerprint(),
            base.clone()
                .with_strategy(BuildStrategy::ParallelHash)
                .fingerprint()
        );
    }

    #[test]
    fn fingerprint_distinguishes_semantics() {
        let count = CubeSpec::count(vec!["A", "B"]);
        assert_ne!(
            count.fingerprint(),
            CubeSpec::count(vec!["B", "A"]).fingerprint()
        );
        assert_ne!(
            count.fingerprint(),
            CubeSpec::measure(vec!["A", "B"], Aggregate::Sum, "M").fingerprint()
        );
        assert_ne!(
            count.fingerprint(),
            count
                .clone()
                .with_filter(CubeFilter::all().equals("X", "yes"))
                .fingerprint()
        );
        // one_of value order is set-like.
        let ab = count
            .clone()
            .with_filter(CubeFilter::all().one_of("X", vec!["a".into(), "b".into()]));
        let ba = count
            .clone()
            .with_filter(CubeFilter::all().one_of("X", vec!["b".into(), "a".into()]));
        assert_eq!(ab.fingerprint(), ba.fingerprint());
    }

    fn demo_table(rows: Vec<(i64, &str, &str, &str, Option<f64>)>) -> Table {
        let schema = Schema::new(vec![
            FieldDef::required("PatientId", DataType::Int),
            FieldDef::nullable("Gender", DataType::Text),
            FieldDef::nullable("Age_Band", DataType::Text),
            FieldDef::nullable("DiabetesStatus", DataType::Text),
            FieldDef::nullable("FBG", DataType::Float),
        ])
        .unwrap();
        let records = rows
            .into_iter()
            .map(|(p, g, a, d, f)| {
                Record::new(vec![
                    Value::Int(p),
                    g.into(),
                    a.into(),
                    d.into(),
                    f.map(Value::Float).unwrap_or(Value::Null),
                ])
            })
            .collect();
        Table::from_rows(schema, records).unwrap()
    }

    fn demo_warehouse() -> Warehouse {
        let star = StarSchema::new(
            FactDef::new("Facts", vec!["FBG"], vec!["PatientId"]),
            vec![
                DimensionDef::new("Personal", vec!["Gender", "Age_Band"]),
                DimensionDef::new("Condition", vec!["DiabetesStatus"]),
            ],
        )
        .unwrap();
        // (pid, gender, age band, diabetes, fbg)
        let table = demo_table(vec![
            (1, "F", "60-80", "yes", Some(7.2)),
            (1, "F", "60-80", "yes", Some(7.8)),
            (2, "M", "60-80", "no", Some(5.1)),
            (3, "F", "40-60", "no", Some(5.4)),
            (4, "M", "60-80", "yes", None),
            (5, "F", "60-80", "no", Some(6.2)),
        ]);
        Warehouse::load(&LoadPlan::from_star(star), &table).unwrap()
    }

    fn k(parts: &[&str]) -> Vec<Value> {
        parts.iter().map(|s| Value::from(*s)).collect()
    }

    #[test]
    fn count_cube_by_two_axes() {
        let wh = demo_warehouse();
        let cube = Cube::build(&wh, &CubeSpec::count(vec!["Gender", "Age_Band"])).unwrap();
        assert_eq!(cube.value(&k(&["F", "60-80"])), Some(3.0));
        assert_eq!(cube.value(&k(&["M", "60-80"])), Some(2.0));
        assert_eq!(cube.value(&k(&["F", "40-60"])), Some(1.0));
        assert_eq!(cube.value(&k(&["M", "40-60"])), None);
        assert_eq!(cube.grand_total(), Some(6.0));
    }

    #[test]
    fn avg_cube_skips_missing_measures() {
        let wh = demo_warehouse();
        let cube = Cube::build(
            &wh,
            &CubeSpec::measure(vec!["DiabetesStatus"], Aggregate::Avg, "FBG"),
        )
        .unwrap();
        let yes = cube.value(&k(&["yes"])).unwrap();
        assert!((yes - 7.5).abs() < 1e-9); // (7.2+7.8)/2; NULL skipped
        let no = cube.value(&k(&["no"])).unwrap();
        assert!((no - (5.1 + 5.4 + 6.2) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn distinct_patients_cube() {
        let wh = demo_warehouse();
        let cube = Cube::build(
            &wh,
            &CubeSpec::distinct(vec!["DiabetesStatus"], "PatientId"),
        )
        .unwrap();
        // Diabetic attendances: patient 1 (twice) and 4 → 2 patients.
        assert_eq!(cube.value(&k(&["yes"])), Some(2.0));
        assert_eq!(cube.value(&k(&["no"])), Some(3.0));
    }

    #[test]
    fn filter_restricts_rows() {
        let wh = demo_warehouse();
        let spec = CubeSpec::count(vec!["Gender"])
            .with_filter(CubeFilter::all().equals("DiabetesStatus", "yes"));
        let cube = Cube::build(&wh, &spec).unwrap();
        assert_eq!(cube.value(&k(&["F"])), Some(2.0));
        assert_eq!(cube.value(&k(&["M"])), Some(1.0));
    }

    #[test]
    fn measure_range_filter() {
        let wh = demo_warehouse();
        let spec = CubeSpec::count(vec!["Gender"])
            .with_filter(CubeFilter::all().measure_between("FBG", 5.5, 7.5));
        let cube = Cube::build(&wh, &spec).unwrap();
        // FBG in [5.5,7.5): 7.2 (F), 6.2 (F) → F=2; M none (5.1 below).
        assert_eq!(cube.value(&k(&["F"])), Some(2.0));
        assert_eq!(cube.value(&k(&["M"])), None);
    }

    #[test]
    fn slice_removes_axis_and_filters() {
        let wh = demo_warehouse();
        let cube = Cube::build(&wh, &CubeSpec::count(vec!["Gender", "Age_Band"])).unwrap();
        let sliced = cube.slice("Age_Band", &Value::from("60-80")).unwrap();
        assert_eq!(sliced.axes, vec!["Gender"]);
        assert_eq!(sliced.value(&k(&["F"])), Some(3.0));
        assert_eq!(sliced.value(&k(&["M"])), Some(2.0));
    }

    #[test]
    fn dice_keeps_axis() {
        let wh = demo_warehouse();
        let cube = Cube::build(&wh, &CubeSpec::count(vec!["Gender", "Age_Band"])).unwrap();
        let diced = cube.dice("Age_Band", &[Value::from("40-60")]).unwrap();
        assert_eq!(diced.axes.len(), 2);
        assert_eq!(diced.value(&k(&["F", "40-60"])), Some(1.0));
        assert_eq!(diced.value(&k(&["F", "60-80"])), None);
    }

    #[test]
    fn roll_up_merges_exactly() {
        let wh = demo_warehouse();
        let fine = Cube::build(&wh, &CubeSpec::count(vec!["Gender", "Age_Band"])).unwrap();
        let coarse = fine.roll_up("Age_Band").unwrap();
        let direct = Cube::build(&wh, &CubeSpec::count(vec!["Gender"])).unwrap();
        for v in coarse.axis_values("Gender").unwrap() {
            assert_eq!(
                coarse.value(std::slice::from_ref(&v)),
                direct.value(std::slice::from_ref(&v))
            );
        }
    }

    #[test]
    fn roll_up_of_avg_is_exact() {
        let wh = demo_warehouse();
        let fine = Cube::build(
            &wh,
            &CubeSpec::measure(vec!["Gender", "Age_Band"], Aggregate::Avg, "FBG"),
        )
        .unwrap();
        let coarse = fine.roll_up("Age_Band").unwrap();
        let direct = Cube::build(
            &wh,
            &CubeSpec::measure(vec!["Gender"], Aggregate::Avg, "FBG"),
        )
        .unwrap();
        for v in direct.axis_values("Gender").unwrap() {
            let a = coarse.value(std::slice::from_ref(&v)).unwrap();
            let b = direct.value(&[v]).unwrap();
            assert!((a - b).abs() < 1e-12, "roll-up avg {a} != direct {b}");
        }
    }

    #[test]
    fn roll_up_of_distinct_is_exact() {
        let wh = demo_warehouse();
        let fine = Cube::build(
            &wh,
            &CubeSpec::distinct(vec!["Gender", "DiabetesStatus"], "PatientId"),
        )
        .unwrap();
        let coarse = fine.roll_up("Gender").unwrap();
        // Patient 1 appears twice under yes/F: distinct must still be 2
        // for yes overall (patients 1 and 4).
        assert_eq!(coarse.value(&k(&["yes"])), Some(2.0));
    }

    #[test]
    fn strategies_agree() {
        let wh = demo_warehouse();
        for strategy in [
            BuildStrategy::Hash,
            BuildStrategy::Sort,
            BuildStrategy::ParallelHash,
        ] {
            let cube = Cube::build(
                &wh,
                &CubeSpec::count(vec!["Gender", "Age_Band"]).with_strategy(strategy),
            )
            .unwrap();
            assert_eq!(cube.value(&k(&["F", "60-80"])), Some(3.0), "{strategy:?}");
            assert_eq!(cube.n_cells(), 3, "{strategy:?}");
        }
    }

    #[test]
    fn top_k_ranks_descending_with_stable_ties() {
        let wh = demo_warehouse();
        let cube = Cube::build(&wh, &CubeSpec::count(vec!["Gender", "Age_Band"])).unwrap();
        let top = cube.top_k(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0], (k(&["F", "60-80"]), 3.0));
        assert_eq!(top[1], (k(&["M", "60-80"]), 2.0));
        // k larger than the cube returns everything.
        assert_eq!(cube.top_k(100).len(), cube.n_cells());
        assert!(cube.top_k(0).is_empty());
    }

    #[test]
    fn apply_delta_matches_rebuild_for_additive_aggregates() {
        let specs = vec![
            CubeSpec::count(vec!["Gender", "Age_Band"]),
            CubeSpec::measure(vec!["Gender"], Aggregate::Sum, "FBG"),
            CubeSpec::measure(vec!["DiabetesStatus"], Aggregate::Avg, "FBG"),
            CubeSpec::measure(vec!["Gender"], Aggregate::Min, "FBG"),
            CubeSpec::measure(vec!["Gender"], Aggregate::Max, "FBG"),
            CubeSpec::count(vec!["Gender"])
                .with_filter(CubeFilter::all().equals("DiabetesStatus", "yes")),
            CubeSpec::count(vec!["Gender"])
                .with_filter(CubeFilter::all().measure_between("FBG", 5.5, 9.0)),
        ];
        for spec in specs {
            let mut wh = demo_warehouse();
            let epoch0 = wh.epoch();
            let mut patched = Cube::build(&wh, &spec).unwrap();
            // New max (9.9), new min (3.0), a NULL, and a fresh cell
            // coordinate ("M", "40-60") — every accumulator path.
            wh.append(&demo_table(vec![
                (6, "M", "40-60", "yes", Some(9.9)),
                (7, "F", "60-80", "no", Some(3.0)),
                (2, "M", "60-80", "yes", None),
            ]))
            .unwrap();
            for delta in wh.deltas_since(epoch0).unwrap() {
                assert!(
                    patched.apply_delta(&wh, &spec, &delta).unwrap(),
                    "{spec:?} should patch"
                );
            }
            let rebuilt = Cube::build(&wh, &spec).unwrap();
            assert_eq!(patched, rebuilt, "{spec:?}");
        }
    }

    #[test]
    fn apply_delta_rejects_distinct_and_rewrites() {
        let mut wh = demo_warehouse();
        let epoch0 = wh.epoch();

        let distinct = CubeSpec::distinct(vec!["Gender"], "PatientId");
        assert!(!Cube::supports_incremental(&distinct));
        let mut cube = Cube::build(&wh, &distinct).unwrap();
        wh.append(&demo_table(vec![(8, "F", "40-60", "no", Some(5.0))]))
            .unwrap();
        let deltas = wh.deltas_since(epoch0).unwrap();
        assert!(!cube.apply_delta(&wh, &distinct, &deltas[0]).unwrap());

        // A rewrite poisons even incrementally-maintainable specs.
        let count = CubeSpec::count(vec!["Gender"]);
        let mut cube = Cube::build(&wh, &count).unwrap();
        let before = wh.epoch();
        wh.bump_epoch();
        let deltas = wh.deltas_since(before).unwrap();
        assert!(deltas[0].rewrote_existing);
        assert!(!cube.apply_delta(&wh, &count, &deltas[0]).unwrap());
    }

    #[test]
    fn structural_delta_is_noop_unless_the_spec_reads_it() {
        let mut wh = demo_warehouse();
        let spec = CubeSpec::count(vec!["Gender"]);
        let mut cube = Cube::build(&wh, &spec).unwrap();
        let epoch0 = wh.epoch();
        let labels = vec![Value::from("a"); wh.n_facts()];
        wh.add_feedback_dimension("Review", "Flag", labels).unwrap();
        let deltas = wh.deltas_since(epoch0).unwrap();
        // The new dimension is outside the spec's footprint: provably
        // a no-op, and the patched cube still matches a rebuild.
        assert!(cube.apply_delta(&wh, &spec, &deltas[0]).unwrap());
        assert_eq!(cube, Cube::build(&wh, &spec).unwrap());

        // A structural delta naming a dimension the spec *does* read
        // forces a rebuild.
        let n = wh.n_facts();
        let touching = warehouse::DeltaSummary {
            from_epoch: wh.epoch(),
            to_epoch: wh.epoch() + 1,
            kind: warehouse::DeltaKind::Feedback,
            dimensions: ["Personal".to_string()].into_iter().collect(),
            appended: n..n,
            rewrote_existing: false,
        };
        assert!(!cube.apply_delta(&wh, &spec, &touching).unwrap());
    }

    #[test]
    fn apply_delta_rejects_a_foreign_spec() {
        let wh = demo_warehouse();
        let spec = CubeSpec::count(vec!["Gender"]);
        let mut cube = Cube::build(&wh, &spec).unwrap();
        let other = CubeSpec::count(vec!["Age_Band"]);
        let n = wh.n_facts();
        let delta = warehouse::DeltaSummary {
            from_epoch: wh.epoch(),
            to_epoch: wh.epoch() + 1,
            kind: warehouse::DeltaKind::Append,
            dimensions: Default::default(),
            appended: n..n,
            rewrote_existing: false,
        };
        assert!(cube.apply_delta(&wh, &other, &delta).is_err());
    }

    #[test]
    fn empty_axes_rejected() {
        let wh = demo_warehouse();
        assert!(Cube::build(&wh, &CubeSpec::count(vec![])).is_err());
    }

    #[test]
    fn axis_values_are_sorted() {
        let wh = demo_warehouse();
        let cube = Cube::build(&wh, &CubeSpec::count(vec!["Age_Band"])).unwrap();
        let values = cube.axis_values("Age_Band").unwrap();
        assert_eq!(values, vec![Value::from("40-60"), Value::from("60-80")]);
        assert!(cube.axis_values("Nope").is_err());
    }

    // ---- segmented scans -------------------------------------------------

    /// Legacy whole-column build of the same spec (the oracle the
    /// segmented path must agree with).
    fn legacy(wh: &Warehouse, spec: &CubeSpec) -> (Cube, ScanStats) {
        Cube::build_with_options(
            wh,
            spec,
            &ScanOptions {
                segments: false,
                ..ScanOptions::default()
            },
        )
        .unwrap()
    }

    /// Warehouse with an append-order-correlated `Age_Band` (so zone
    /// maps discriminate between segments) and dyadic FBG values (so
    /// sums are order-insensitive). 8 rows per band, 3 bands.
    fn banded_warehouse() -> Warehouse {
        let star = StarSchema::new(
            FactDef::new("Facts", vec!["FBG"], vec!["PatientId"]),
            vec![
                DimensionDef::new("Personal", vec!["Gender", "Age_Band"]),
                DimensionDef::new("Condition", vec!["DiabetesStatus"]),
            ],
        )
        .unwrap();
        let mut rows = Vec::new();
        for (b, band) in ["20-40", "40-60", "60-80"].iter().enumerate() {
            for i in 0..8i64 {
                let gender = if i % 2 == 0 { "F" } else { "M" };
                let status = if i % 4 == 0 { "yes" } else { "no" };
                let fbg = 4.0 + b as f64 + i as f64 * 0.25;
                rows.push((b as i64 * 8 + i, gender, *band, status, Some(fbg)));
            }
        }
        Warehouse::load(&LoadPlan::from_star(star), &demo_table(rows)).unwrap()
    }

    fn compact_small(wh: &mut Warehouse) {
        wh.compact_with(&warehouse::CompactionConfig {
            target_rows_per_segment: 8,
            sort: true,
        })
        .unwrap();
    }

    #[test]
    fn segmented_build_matches_legacy_for_every_measure_kind() {
        let mut wh = banded_warehouse();
        compact_small(&mut wh);
        let specs = [
            CubeSpec::count(vec!["Gender", "Age_Band"]),
            CubeSpec::measure(vec!["Age_Band"], Aggregate::Sum, "FBG"),
            CubeSpec::measure(vec!["Gender"], Aggregate::Avg, "FBG"),
            CubeSpec::measure(vec!["Age_Band"], Aggregate::Min, "FBG"),
            CubeSpec::distinct(vec!["DiabetesStatus"], "PatientId"),
        ];
        for spec in specs {
            let (seg, stats) = Cube::build_with_stats(&wh, &spec).unwrap();
            assert_eq!(seg, legacy(&wh, &spec).0, "spec {}", spec.fingerprint());
            assert_eq!(stats.segments_total, 3);
            assert_eq!(stats.segments_pruned, 0, "no filter, nothing to prune");
            assert_eq!(stats.rows_scanned, wh.n_facts() as u64);
        }
    }

    #[test]
    fn zone_maps_prune_segments_on_attribute_filters() {
        let mut wh = banded_warehouse();
        compact_small(&mut wh);
        let spec = CubeSpec::count(vec!["Gender"])
            .with_filter(CubeFilter::all().equals("Age_Band", "40-60"));
        let (cube, stats) = Cube::build_with_stats(&wh, &spec).unwrap();
        assert_eq!(cube, legacy(&wh, &spec).0);
        assert_eq!(stats.segments_total, 3);
        assert_eq!(stats.segments_pruned, 2, "only the 40-60 segment survives");
        assert_eq!(stats.rows_scanned, 8);
        assert_eq!(cube.value(&k(&["F"])), Some(4.0));
    }

    #[test]
    fn zone_maps_prune_segments_on_measure_filters() {
        let mut wh = banded_warehouse();
        compact_small(&mut wh);
        // FBG lives in [4.0, 5.75] / [5.0, 6.75] / [6.0, 7.75] per
        // band segment; [7.0, 9.0) overlaps only the last.
        let spec = CubeSpec::count(vec!["Age_Band"])
            .with_filter(CubeFilter::all().measure_between("FBG", 7.0, 9.0));
        let (cube, stats) = Cube::build_with_stats(&wh, &spec).unwrap();
        assert_eq!(cube, legacy(&wh, &spec).0);
        assert_eq!(stats.segments_pruned, 2);
        assert_eq!(stats.rows_scanned, 8);
        assert_eq!(cube.grand_total(), Some(4.0)); // 7.0, 7.25, 7.5, 7.75
    }

    #[test]
    fn pruning_ablation_scans_everything_but_agrees() {
        let mut wh = banded_warehouse();
        compact_small(&mut wh);
        let spec = CubeSpec::count(vec!["Gender"])
            .with_filter(CubeFilter::all().equals("Age_Band", "20-40"));
        let ablated = ScanOptions {
            zone_pruning: false,
            column_pruning: false,
            ..ScanOptions::default()
        };
        let (cube, stats) = Cube::build_with_options(&wh, &spec, &ablated).unwrap();
        assert_eq!(cube, legacy(&wh, &spec).0);
        assert_eq!(stats.segments_pruned, 0);
        assert_eq!(stats.rows_scanned, wh.n_facts() as u64);
    }

    #[test]
    fn segmented_build_folds_the_mutable_tail() {
        let mut wh = banded_warehouse();
        compact_small(&mut wh);
        // Appended after compaction: lives in the tail, not a segment.
        let tail = demo_table(vec![
            (100, "F", "40-60", "yes", Some(5.5)),
            (101, "M", "40-60", "no", Some(5.25)),
        ]);
        wh.append(&tail).unwrap();
        let spec = CubeSpec::count(vec!["Gender"])
            .with_filter(CubeFilter::all().equals("Age_Band", "40-60"));
        let (cube, stats) = Cube::build_with_stats(&wh, &spec).unwrap();
        assert_eq!(cube, legacy(&wh, &spec).0);
        assert_eq!(stats.segments_pruned, 2, "tail does not disable pruning");
        assert_eq!(stats.rows_scanned, 8 + 2);
        assert_eq!(cube.value(&k(&["F"])), Some(5.0));
        assert_eq!(cube.value(&k(&["M"])), Some(5.0));
    }

    #[test]
    fn parallel_strategy_agrees_on_segments() {
        let mut wh = banded_warehouse();
        compact_small(&mut wh);
        let spec = CubeSpec::measure(vec!["Gender", "Age_Band"], Aggregate::Sum, "FBG")
            .with_strategy(BuildStrategy::ParallelHash);
        let (cube, stats) = Cube::build_with_stats(&wh, &spec).unwrap();
        assert_eq!(cube, legacy(&wh, &spec).0);
        assert_eq!(stats.rows_scanned, wh.n_facts() as u64);
    }

    #[test]
    fn vectorized_and_scalar_segment_paths_agree() {
        let mut wh = banded_warehouse();
        compact_small(&mut wh);
        let scalar_options = ScanOptions {
            vectorized: false,
            ..ScanOptions::default()
        };
        let specs = [
            CubeSpec::count(vec!["Gender", "Age_Band"]),
            CubeSpec::measure(vec!["Age_Band"], Aggregate::Sum, "FBG"),
            CubeSpec::measure(vec!["Gender"], Aggregate::Max, "FBG"),
            CubeSpec::distinct(vec!["DiabetesStatus"], "PatientId"),
            CubeSpec::distinct(vec!["Gender"], "PatientId").with_filter(
                CubeFilter::all()
                    .equals("DiabetesStatus", "no")
                    .measure_between("FBG", 4.5, 6.5),
            ),
        ];
        for spec in specs {
            let (vec_cube, vec_stats) = Cube::build_with_stats(&wh, &spec).unwrap();
            let (scalar_cube, scalar_stats) =
                Cube::build_with_options(&wh, &spec, &scalar_options).unwrap();
            assert_eq!(vec_cube, scalar_cube, "spec {}", spec.fingerprint());
            assert_eq!(
                vec_cube,
                legacy(&wh, &spec).0,
                "spec {}",
                spec.fingerprint()
            );
            assert!(vec_stats.morsels_executed > 0, "kernel path must run");
            assert_eq!(scalar_stats.morsels_executed, 0, "scalar path claims none");
            assert_eq!(vec_stats.rows_scanned, scalar_stats.rows_scanned);
            assert_eq!(vec_stats.segments_pruned, scalar_stats.segments_pruned);
        }
    }

    #[test]
    fn morsel_size_controls_queue_granularity() {
        let mut wh = banded_warehouse();
        compact_small(&mut wh); // 3 segments × 8 rows
        let spec = CubeSpec::measure(vec!["Gender", "Age_Band"], Aggregate::Sum, "FBG");
        let fine = ScanOptions {
            morsel_rows: 4,
            ..ScanOptions::default()
        };
        let (cube, stats) = Cube::build_with_options(&wh, &spec, &fine).unwrap();
        assert_eq!(cube, legacy(&wh, &spec).0);
        assert_eq!(stats.morsels_executed, 6, "8-row segments split into two");

        let coarse = ScanOptions {
            morsel_rows: 1 << 20,
            ..ScanOptions::default()
        };
        let (cube2, stats2) = Cube::build_with_options(&wh, &spec, &coarse).unwrap();
        assert_eq!(cube2, cube);
        assert_eq!(stats2.morsels_executed, 3, "one morsel per segment");
    }

    #[test]
    fn morsel_workers_agree_with_sequential_build() {
        let mut wh = banded_warehouse();
        compact_small(&mut wh);
        // Dyadic FBG values make per-group sums order-insensitive, so
        // any morsel-to-worker assignment must reproduce the
        // sequential cube exactly.
        let spec = CubeSpec::measure(vec!["Gender", "Age_Band"], Aggregate::Sum, "FBG")
            .with_strategy(BuildStrategy::ParallelHash);
        for workers in [1usize, 2, 4, 8] {
            let options = ScanOptions {
                morsel_rows: 4,
                workers: Some(workers),
                ..ScanOptions::default()
            };
            let (cube, stats) = Cube::build_with_options(&wh, &spec, &options).unwrap();
            assert_eq!(cube, legacy(&wh, &spec).0, "{workers} workers");
            assert_eq!(stats.morsels_executed, 6);
        }
    }

    #[test]
    fn oversized_group_domain_falls_back_to_scalar_loop() {
        // Two ~300-value dimensions: the dense domain (300 × 300 =
        // 90 000) exceeds MAX_DENSE_GROUPS, so the build must take the
        // scalar hash path — and still agree with the legacy build.
        let star = StarSchema::new(
            FactDef::new("Facts", vec!["M"], vec![]),
            vec![
                DimensionDef::new("D1", vec!["A"]),
                DimensionDef::new("D2", vec!["B"]),
            ],
        )
        .unwrap();
        let schema = Schema::new(vec![
            FieldDef::nullable("A", DataType::Text),
            FieldDef::nullable("B", DataType::Text),
            FieldDef::nullable("M", DataType::Float),
        ])
        .unwrap();
        let rows: Vec<Record> = (0..300)
            .map(|i| {
                Record::new(vec![
                    format!("a{i}").into(),
                    format!("b{i}").into(),
                    (i as f64 * 0.25).into(),
                ])
            })
            .collect();
        let mut wh = Warehouse::load(
            &LoadPlan::from_star(star),
            &Table::from_rows(schema, rows).unwrap(),
        )
        .unwrap();
        wh.compact_with(&warehouse::CompactionConfig {
            target_rows_per_segment: 100,
            sort: true,
        })
        .unwrap();

        let wide = CubeSpec::measure(vec!["A", "B"], Aggregate::Sum, "M");
        let (cube, stats) = Cube::build_with_stats(&wh, &wide).unwrap();
        assert_eq!(cube, legacy(&wh, &wide).0);
        assert_eq!(
            stats.morsels_executed, 0,
            "dense lanes must refuse 90k groups"
        );

        let narrow = CubeSpec::measure(vec!["B"], Aggregate::Sum, "M");
        let (cube2, stats2) = Cube::build_with_stats(&wh, &narrow).unwrap();
        assert_eq!(cube2, legacy(&wh, &narrow).0);
        assert!(stats2.morsels_executed > 0, "150 groups fit dense lanes");
    }

    #[test]
    fn same_dimension_axes_share_one_radix_slot() {
        // Both axes live in one 300-tuple dimension (the paper model's
        // shape: Gender and Age_Band share the personal dimension).
        // Squaring the cardinality would blow MAX_DENSE_GROUPS; the
        // shared radix slot keeps the dense domain at 300, so the
        // vectorized path must run — and agree with the legacy build.
        let star = StarSchema::new(
            FactDef::new("Facts", vec!["M"], vec![]),
            vec![DimensionDef::new("D", vec!["A", "B"])],
        )
        .unwrap();
        let schema = Schema::new(vec![
            FieldDef::nullable("A", DataType::Text),
            FieldDef::nullable("B", DataType::Text),
            FieldDef::nullable("M", DataType::Float),
        ])
        .unwrap();
        let rows: Vec<Record> = (0..300)
            .map(|i| {
                Record::new(vec![
                    format!("a{i}").into(),
                    format!("b{i}").into(),
                    (i as f64 * 0.25).into(),
                ])
            })
            .collect();
        let mut wh = Warehouse::load(
            &LoadPlan::from_star(star),
            &Table::from_rows(schema, rows).unwrap(),
        )
        .unwrap();
        wh.compact_with(&warehouse::CompactionConfig {
            target_rows_per_segment: 100,
            sort: true,
        })
        .unwrap();

        let spec = CubeSpec::measure(vec!["A", "B"], Aggregate::Sum, "M");
        let (cube, stats) = Cube::build_with_stats(&wh, &spec).unwrap();
        assert_eq!(cube, legacy(&wh, &spec).0);
        assert!(
            stats.morsels_executed > 0,
            "same-dimension axes must stay on the kernel path: {stats:?}"
        );
    }

    #[test]
    fn feedback_dimension_after_compaction_falls_back_to_legacy() {
        let mut wh = banded_warehouse();
        compact_small(&mut wh);
        let labels: Vec<Value> = (0..wh.n_facts() as i64).map(Value::Int).collect();
        wh.add_feedback_dimension("Review", "Flag", labels).unwrap();
        // The sealed schema lacks the Review key column, so a spec
        // reading it must take the whole-column path — and a spec that
        // doesn't read it is still blocked by the structural delta.
        let spec = CubeSpec::count(vec!["Flag"]);
        let (cube, stats) = Cube::build_with_stats(&wh, &spec).unwrap();
        assert_eq!(stats.segments_pruned, 0);
        assert_eq!(cube.grand_total(), Some(wh.n_facts() as f64));
        let unrelated = CubeSpec::count(vec!["Gender"]);
        let (cube2, stats2) = Cube::build_with_stats(&wh, &unrelated).unwrap();
        assert_eq!(cube2, legacy(&wh, &unrelated).0);
        assert_eq!(stats2.rows_scanned, wh.n_facts() as u64);
        // Re-compacting seals the new dimension and re-enables the
        // segmented path for it.
        compact_small(&mut wh);
        let (cube3, stats3) = Cube::build_with_stats(&wh, &spec).unwrap();
        assert_eq!(cube3, cube);
        assert_eq!(stats3.segments_total, 3);
    }

    #[test]
    fn segment_scan_faults_fail_the_build_cleanly() {
        let _guard = fault::test_support::fault_lock();
        let mut wh = banded_warehouse();
        compact_small(&mut wh);
        let spec = CubeSpec::count(vec!["Gender"]);
        {
            let _fp = fault::arm(
                "olap.segment_scan",
                fault::Trigger::Once,
                fault::FaultKind::Error,
            );
            assert!(Cube::build_with_stats(&wh, &spec).is_err());
        }
        // Faults exhausted: the same build now succeeds.
        assert!(Cube::build_with_stats(&wh, &spec).is_ok());
    }
}
