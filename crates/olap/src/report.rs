//! Owned, declarative report specifications.
//!
//! A [`ReportSpec`] is the queueable equivalent of a
//! [`QueryBuilder`] chain: it borrows nothing, so the serving layer
//! can fingerprint it, hold it in a bounded queue and execute it
//! against whatever warehouse snapshot is current when a worker picks
//! it up. It lives in `olap` (rather than `serve`) so the semantic
//! analyzer can validate it alongside MDX and cube requests.

use crate::aggregate::Aggregate;
use crate::builder::QueryBuilder;
use clinical_types::Value;
use warehouse::Warehouse;

/// The measure clause of a [`ReportSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum ReportMeasure {
    /// `COUNT(*)` — attendance counts.
    Count,
    /// `COUNT(DISTINCT column)` — e.g. distinct patients.
    CountDistinct(String),
    /// An aggregate over a numeric measure.
    Aggregate(Aggregate, String),
}

/// An owned, declarative report request mirroring the
/// `olap::QueryBuilder` surface. Unlike the builder it does not borrow
/// the warehouse, so it can queue and travel between threads.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportSpec {
    rows: Vec<String>,
    cols: Vec<String>,
    equals: Vec<(String, Value)>,
    between: Vec<(String, f64, f64)>,
    measure: ReportMeasure,
}

impl Default for ReportSpec {
    fn default() -> Self {
        ReportSpec::new()
    }
}

impl ReportSpec {
    /// An empty report counting attendances; add axes and filters.
    pub fn new() -> Self {
        ReportSpec {
            rows: Vec::new(),
            cols: Vec::new(),
            equals: Vec::new(),
            between: Vec::new(),
            measure: ReportMeasure::Count,
        }
    }

    /// Add a row-axis attribute.
    pub fn on_rows(mut self, attribute: impl Into<String>) -> Self {
        self.rows.push(attribute.into());
        self
    }

    /// Add a column-axis attribute.
    pub fn on_columns(mut self, attribute: impl Into<String>) -> Self {
        self.cols.push(attribute.into());
        self
    }

    /// Keep only facts where `attribute == value`.
    pub fn where_equals(mut self, attribute: impl Into<String>, value: impl Into<Value>) -> Self {
        self.equals.push((attribute.into(), value.into()));
        self
    }

    /// Keep only facts with `measure` in `[lo, hi)`.
    pub fn where_measure_between(mut self, measure: impl Into<String>, lo: f64, hi: f64) -> Self {
        self.between.push((measure.into(), lo, hi));
        self
    }

    /// Count attendances per cell.
    pub fn count(mut self) -> Self {
        self.measure = ReportMeasure::Count;
        self
    }

    /// Count distinct `degenerate` values per cell.
    pub fn count_distinct(mut self, degenerate: impl Into<String>) -> Self {
        self.measure = ReportMeasure::CountDistinct(degenerate.into());
        self
    }

    /// Aggregate `measure` with `agg` per cell.
    pub fn aggregate(mut self, agg: Aggregate, measure: impl Into<String>) -> Self {
        self.measure = ReportMeasure::Aggregate(agg, measure.into());
        self
    }

    /// Row-axis attributes, in display order.
    pub fn row_axes(&self) -> &[String] {
        &self.rows
    }

    /// Column-axis attributes, in display order.
    pub fn column_axes(&self) -> &[String] {
        &self.cols
    }

    /// Equality conditions.
    pub fn equality_conditions(&self) -> &[(String, Value)] {
        &self.equals
    }

    /// Measure-range conditions (`name`, `lo`, `hi`).
    pub fn range_conditions(&self) -> &[(String, f64, f64)] {
        &self.between
    }

    /// The measure clause.
    pub fn measure_clause(&self) -> &ReportMeasure {
        &self.measure
    }

    /// Canonical fingerprint. Axis order stays significant (it fixes
    /// the pivot layout); filter conjunct order does not.
    pub fn fingerprint(&self) -> String {
        let mut conds: Vec<String> = self
            .equals
            .iter()
            .map(|(a, v)| format!("{a}={v:?}"))
            .collect();
        conds.extend(
            self.between
                .iter()
                .map(|(m, lo, hi)| format!("{m} in [{lo:?},{hi:?})")),
        );
        conds.sort();
        conds.dedup();
        format!(
            "report|rows={}|cols={}|where=[{}]|measure={:?}",
            self.rows.join(","),
            self.cols.join(","),
            conds.join(" && "),
            self.measure
        )
    }

    /// Translate into a `QueryBuilder` chain over `warehouse`.
    pub fn to_builder<'w>(&self, warehouse: &'w Warehouse) -> QueryBuilder<'w> {
        let mut qb = QueryBuilder::new(warehouse);
        for r in &self.rows {
            qb = qb.on_rows(r.clone());
        }
        for c in &self.cols {
            qb = qb.on_columns(c.clone());
        }
        for (a, v) in &self.equals {
            qb = qb.where_equals(a.clone(), v.clone());
        }
        for (m, lo, hi) in &self.between {
            qb = qb.where_measure_between(m.clone(), *lo, *hi);
        }
        match &self.measure {
            ReportMeasure::Count => qb.count(),
            ReportMeasure::CountDistinct(d) => qb.count_distinct(d.clone()),
            ReportMeasure::Aggregate(agg, m) => qb.aggregate(*agg, m.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_reflect_the_builder_calls() {
        let spec = ReportSpec::new()
            .on_rows("FBG_Band")
            .on_columns("Gender")
            .where_equals("DiabetesStatus", "yes")
            .where_measure_between("FBG", 5.5, 7.0)
            .aggregate(Aggregate::Avg, "BMI");
        assert_eq!(spec.row_axes(), ["FBG_Band".to_string()]);
        assert_eq!(spec.column_axes(), ["Gender".to_string()]);
        assert_eq!(spec.equality_conditions().len(), 1);
        assert_eq!(spec.range_conditions(), [("FBG".to_string(), 5.5, 7.0)]);
        assert_eq!(
            spec.measure_clause(),
            &ReportMeasure::Aggregate(Aggregate::Avg, "BMI".into())
        );
    }
}
