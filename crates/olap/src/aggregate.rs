//! Aggregates and mergeable cell accumulators.
//!
//! Cells store full accumulators rather than finalized numbers so that
//! roll-up (merging cells when an axis is removed) is exact for every
//! aggregate — including `Avg` (kept as sum + count) and
//! `DistinctCount` (kept as a value set until finalisation).

use clinical_types::Value;
use std::collections::HashSet;

/// What to aggregate for each cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeasureRef {
    /// Count fact rows.
    RowCount,
    /// A numeric measure column of the fact table.
    Measure(String),
    /// Distinct values of a degenerate column (e.g. distinct
    /// `PatientId`s — "number of patients" rather than attendances).
    DistinctDegenerate(String),
}

/// The aggregate function applied to the measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Row (or distinct-value) count.
    Count,
    /// Sum of valid measure values.
    Sum,
    /// Mean of valid measure values.
    Avg,
    /// Minimum valid measure value.
    Min,
    /// Maximum valid measure value.
    Max,
}

impl Aggregate {
    /// Parse an aggregate keyword (`COUNT`, `SUM`, …), case-insensitive.
    pub fn parse(s: &str) -> Option<Aggregate> {
        match s.to_ascii_uppercase().as_str() {
            "COUNT" => Some(Aggregate::Count),
            "SUM" => Some(Aggregate::Sum),
            "AVG" => Some(Aggregate::Avg),
            "MIN" => Some(Aggregate::Min),
            "MAX" => Some(Aggregate::Max),
            _ => None,
        }
    }
}

/// Mergeable per-cell accumulator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellStats {
    /// Fact rows routed to the cell.
    pub rows: u64,
    /// Rows with a valid (non-missing) measure value.
    pub valid: u64,
    /// Sum of valid values.
    pub sum: f64,
    /// Minimum valid value.
    pub min: f64,
    /// Maximum valid value.
    pub max: f64,
    /// Distinct degenerate values (only populated for
    /// [`MeasureRef::DistinctDegenerate`]).
    pub distinct: Option<HashSet<Value>>,
}

impl CellStats {
    /// Fresh accumulator; `track_distinct` allocates the value set.
    pub fn new(track_distinct: bool) -> Self {
        CellStats {
            distinct: track_distinct.then(HashSet::new),
            ..CellStats::default()
        }
    }

    /// Fold one fact row in: `measure` is the row's measure value (or
    /// `None` if missing / not applicable), `distinct_key` the row's
    /// degenerate value when distinct counting.
    pub fn push(&mut self, measure: Option<f64>, distinct_key: Option<&Value>) {
        self.rows += 1;
        if let Some(x) = measure {
            if self.valid == 0 {
                self.min = x;
                self.max = x;
            } else {
                if x < self.min {
                    self.min = x;
                }
                if x > self.max {
                    self.max = x;
                }
            }
            self.valid += 1;
            self.sum += x;
        }
        if let (Some(set), Some(key)) = (self.distinct.as_mut(), distinct_key) {
            set.insert(key.clone());
        }
    }

    /// Merge another accumulator in (roll-up).
    pub fn merge(&mut self, other: &CellStats) {
        self.rows += other.rows;
        if other.valid > 0 {
            if self.valid == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                if other.min < self.min {
                    self.min = other.min;
                }
                if other.max > self.max {
                    self.max = other.max;
                }
            }
            self.valid += other.valid;
            self.sum += other.sum;
        }
        if let (Some(mine), Some(theirs)) = (self.distinct.as_mut(), other.distinct.as_ref()) {
            mine.extend(theirs.iter().cloned());
        }
    }

    /// Finalize under an aggregate; `None` when the cell carries no
    /// usable value (e.g. `Avg` of zero valid rows).
    pub fn finalize(&self, agg: Aggregate, measure: &MeasureRef) -> Option<f64> {
        match (agg, measure) {
            (Aggregate::Count, MeasureRef::RowCount) => Some(self.rows as f64),
            (Aggregate::Count, MeasureRef::DistinctDegenerate(_)) => {
                self.distinct.as_ref().map(|s| s.len() as f64)
            }
            (Aggregate::Count, MeasureRef::Measure(_)) => Some(self.valid as f64),
            (Aggregate::Sum, _) => (self.valid > 0).then_some(self.sum),
            (Aggregate::Avg, _) => (self.valid > 0).then(|| self.sum / self.valid as f64),
            (Aggregate::Min, _) => (self.valid > 0).then_some(self.min),
            (Aggregate::Max, _) => (self.valid > 0).then_some(self.max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_tracks_all_statistics() {
        let mut c = CellStats::new(false);
        c.push(Some(5.0), None);
        c.push(None, None);
        c.push(Some(7.0), None);
        assert_eq!(c.rows, 3);
        assert_eq!(c.valid, 2);
        assert_eq!(c.sum, 12.0);
        assert_eq!(c.min, 5.0);
        assert_eq!(c.max, 7.0);
    }

    #[test]
    fn finalize_each_aggregate() {
        let mut c = CellStats::new(false);
        c.push(Some(4.0), None);
        c.push(Some(8.0), None);
        c.push(None, None);
        let m = MeasureRef::Measure("FBG".into());
        assert_eq!(
            c.finalize(Aggregate::Count, &MeasureRef::RowCount),
            Some(3.0)
        );
        assert_eq!(c.finalize(Aggregate::Count, &m), Some(2.0));
        assert_eq!(c.finalize(Aggregate::Sum, &m), Some(12.0));
        assert_eq!(c.finalize(Aggregate::Avg, &m), Some(6.0));
        assert_eq!(c.finalize(Aggregate::Min, &m), Some(4.0));
        assert_eq!(c.finalize(Aggregate::Max, &m), Some(8.0));
    }

    #[test]
    fn empty_cell_finalizes_to_none_for_value_aggregates() {
        let c = CellStats::new(false);
        let m = MeasureRef::Measure("FBG".into());
        assert_eq!(c.finalize(Aggregate::Avg, &m), None);
        assert_eq!(c.finalize(Aggregate::Min, &m), None);
        assert_eq!(
            c.finalize(Aggregate::Count, &MeasureRef::RowCount),
            Some(0.0)
        );
    }

    #[test]
    fn distinct_counting() {
        let mut c = CellStats::new(true);
        c.push(None, Some(&Value::Int(1)));
        c.push(None, Some(&Value::Int(2)));
        c.push(None, Some(&Value::Int(1)));
        let m = MeasureRef::DistinctDegenerate("PatientId".into());
        assert_eq!(c.finalize(Aggregate::Count, &m), Some(2.0));
    }

    #[test]
    fn merge_is_equivalent_to_sequential_pushes() {
        let values = [Some(1.0), None, Some(3.5), Some(-2.0), Some(9.0), None];
        let mut whole = CellStats::new(true);
        let mut left = CellStats::new(true);
        let mut right = CellStats::new(true);
        for (i, v) in values.iter().enumerate() {
            let key = Value::Int((i % 3) as i64);
            whole.push(*v, Some(&key));
            if i < 3 {
                left.push(*v, Some(&key));
            } else {
                right.push(*v, Some(&key));
            }
        }
        left.merge(&right);
        assert_eq!(left.rows, whole.rows);
        assert_eq!(left.valid, whole.valid);
        assert_eq!(left.sum, whole.sum);
        assert_eq!(left.min, whole.min);
        assert_eq!(left.max, whole.max);
        assert_eq!(left.distinct, whole.distinct);
    }

    #[test]
    fn merge_with_empty_side_is_identity() {
        let mut a = CellStats::new(false);
        a.push(Some(2.0), None);
        let before = a.clone();
        a.merge(&CellStats::new(false));
        assert_eq!(a, before);

        let mut empty = CellStats::new(false);
        empty.merge(&before);
        assert_eq!(empty.min, 2.0);
        assert_eq!(empty.valid, 1);
    }

    #[test]
    fn aggregate_parse() {
        assert_eq!(Aggregate::parse("count"), Some(Aggregate::Count));
        assert_eq!(Aggregate::parse("AVG"), Some(Aggregate::Avg));
        assert_eq!(Aggregate::parse("median"), None);
    }
}
