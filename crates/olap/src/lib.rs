#![deny(missing_docs)]

//! OLAP over the clinical data warehouse — the analytical half of the
//! paper's Reporting component (§IV), plus the Prediction-supporting
//! cube isolation used by Data Analytics.
//!
//! * [`aggregate`] — aggregate specifications and mergeable cell
//!   accumulators (count, distinct-count, sum, avg, min, max).
//! * [`cube`] — data cubes over the warehouse: grouped aggregation
//!   along any set of dimension attributes, with slice, dice and
//!   roll-up operators; hash- and sort-based build strategies and a
//!   parallel build for large fact tables.
//! * [`pivot`] — two-axis pivot views of a cube (the tabular outcome
//!   Fig. 4 shows in the BI Studio query area).
//! * [`builder`] — [`builder::QueryBuilder`]: the programmatic
//!   equivalent of Fig. 4's drag-and-drop query construction, with
//!   hierarchy-aware drill-down / roll-up.
//! * [`mdx`] — the MDX-like query language (§IV: "Multidimensional
//!   expressions (MDX), the query language for OLAP, can also be used
//!   for reporting"): lexer, parser and executor.
//! * [`report`] — owned, declarative [`report::ReportSpec`] requests
//!   that can queue and travel between threads.
//! * [`semantic`] — the semantic analyzer: validates MDX, cube and
//!   report requests against the `analyze` catalog before execution,
//!   and resolves each query shape's dimension footprint for
//!   cross-epoch result reuse.
//! * [`kernels`] — vectorized execution kernels: selection-bitmap
//!   filters, dictionary-coded group-id composition, fixed-width
//!   aggregate lanes and the morsel-driven work queue behind
//!   segmented cube builds.
//!
//! Cubes are *incrementally maintainable*: [`Cube::apply_delta`] folds
//! a warehouse [`warehouse::DeltaSummary`]'s appended fact rows into
//! the existing accumulators instead of rebuilding, exact for
//! count/sum/mean (and min/max under append-only deltas); distinct
//! counting and rewrites fall back to a full rebuild.

pub mod aggregate;
pub mod builder;
pub mod cube;
pub mod kernels;
pub mod mdx;
pub mod pivot;
pub mod report;
pub mod semantic;

pub use aggregate::{Aggregate, CellStats, MeasureRef};
pub use builder::QueryBuilder;
pub use cube::{BuildStrategy, Cube, CubeFilter, CubeSpec, ScanOptions, ScanStats};
pub use mdx::{execute_mdx, parse_mdx};
pub use pivot::PivotTable;
pub use report::{ReportMeasure, ReportSpec};
pub use semantic::{
    analyze_cube, analyze_mdx, analyze_mdx_str, analyze_report, footprint_cube, footprint_mdx,
    footprint_report,
};
