//! Programmatic query construction — the Fig. 4 interaction model.
//!
//! Microsoft BI Studio's drag-and-drop interface (paper Fig. 4) maps
//! one-to-one onto this builder: dragging an attribute into the query
//! area is [`QueryBuilder::on_rows`] / [`QueryBuilder::on_columns`],
//! removing it is [`QueryBuilder::remove`], and the drill-down /
//! roll-up arrows walk the dimension hierarchies declared in the star
//! schema ([`QueryBuilder::drill_down`] / [`QueryBuilder::roll_up`]).

use crate::aggregate::{Aggregate, MeasureRef};
use crate::cube::{Cube, CubeFilter, CubeSpec};
use crate::pivot::PivotTable;
use clinical_types::{Error, Result, Value};
use warehouse::Warehouse;

/// A composable OLAP query bound to a warehouse.
#[derive(Clone)]
pub struct QueryBuilder<'w> {
    warehouse: &'w Warehouse,
    rows: Vec<String>,
    cols: Vec<String>,
    filter: CubeFilter,
    agg: Aggregate,
    measure: MeasureRef,
}

impl<'w> QueryBuilder<'w> {
    /// New query over `warehouse`; defaults to a row count.
    pub fn new(warehouse: &'w Warehouse) -> Self {
        QueryBuilder {
            warehouse,
            rows: Vec::new(),
            cols: Vec::new(),
            filter: CubeFilter::all(),
            agg: Aggregate::Count,
            measure: MeasureRef::RowCount,
        }
    }

    /// Drag an attribute onto the row axis.
    pub fn on_rows(mut self, attribute: impl Into<String>) -> Self {
        self.rows.push(attribute.into());
        self
    }

    /// Drag an attribute onto the column axis.
    pub fn on_columns(mut self, attribute: impl Into<String>) -> Self {
        self.cols.push(attribute.into());
        self
    }

    /// Remove an attribute from whichever axis holds it.
    pub fn remove(mut self, attribute: &str) -> Self {
        self.rows.retain(|a| a != attribute);
        self.cols.retain(|a| a != attribute);
        self
    }

    /// Keep only rows where `attribute = value` (slicer).
    pub fn where_equals(mut self, attribute: impl Into<String>, value: impl Into<Value>) -> Self {
        self.filter = self.filter.equals(attribute, value);
        self
    }

    /// Keep only rows where the measure is in `[lo, hi)`.
    pub fn where_measure_between(mut self, measure: impl Into<String>, lo: f64, hi: f64) -> Self {
        self.filter = self.filter.measure_between(measure, lo, hi);
        self
    }

    /// Aggregate a numeric measure.
    pub fn aggregate(mut self, agg: Aggregate, measure: impl Into<String>) -> Self {
        self.agg = agg;
        self.measure = MeasureRef::Measure(measure.into());
        self
    }

    /// Count fact rows (the default).
    pub fn count(mut self) -> Self {
        self.agg = Aggregate::Count;
        self.measure = MeasureRef::RowCount;
        self
    }

    /// Count distinct values of a degenerate column (e.g. distinct
    /// patients instead of attendances).
    pub fn count_distinct(mut self, degenerate: impl Into<String>) -> Self {
        self.agg = Aggregate::Count;
        self.measure = MeasureRef::DistinctDegenerate(degenerate.into());
        self
    }

    /// Replace `attribute` on its axis with the next finer hierarchy
    /// level (Fig. 5: Age_Band → Age_SubGroup).
    pub fn drill_down(mut self, attribute: &str) -> Result<Self> {
        let finer = self.hierarchy_step(attribute, true)?;
        self.replace(attribute, finer);
        Ok(self)
    }

    /// Replace `attribute` with the next coarser hierarchy level.
    pub fn roll_up(mut self, attribute: &str) -> Result<Self> {
        let coarser = self.hierarchy_step(attribute, false)?;
        self.replace(attribute, coarser);
        Ok(self)
    }

    fn hierarchy_step(&self, attribute: &str, down: bool) -> Result<String> {
        let dim = self
            .warehouse
            .star()
            .dimension_of_attribute(attribute)
            .ok_or_else(|| Error::invalid(format!("no dimension owns `{attribute}`")))?;
        for h in &dim.hierarchies {
            let next = if down {
                h.drill_down_from(attribute)
            } else {
                h.roll_up_from(attribute)
            };
            if let Some(level) = next {
                return Ok(level.to_string());
            }
        }
        Err(Error::invalid(format!(
            "attribute `{attribute}` has no {} level in any hierarchy of `{}`",
            if down { "finer" } else { "coarser" },
            dim.name
        )))
    }

    fn replace(&mut self, from: &str, to: String) {
        for axis in self.rows.iter_mut().chain(self.cols.iter_mut()) {
            if axis == from {
                *axis = to.clone();
            }
        }
    }

    /// Build the underlying cube (axes = rows then columns).
    pub fn build_cube(&self) -> Result<Cube> {
        let axes: Vec<&str> = self
            .rows
            .iter()
            .chain(&self.cols)
            .map(String::as_str)
            .collect();
        if axes.is_empty() {
            return Err(Error::invalid("drag at least one attribute into the query"));
        }
        let spec = CubeSpec {
            axes: axes.into_iter().map(String::from).collect(),
            measure: self.measure.clone(),
            agg: self.agg,
            filter: self.filter.clone(),
            strategy: Default::default(),
        };
        Cube::build(self.warehouse, &spec)
    }

    /// Execute into a pivot table. Multiple attributes on one axis are
    /// combined into composite `a / b` headers.
    pub fn execute(&self) -> Result<PivotTable> {
        let cube = self.build_cube()?;
        if self.rows.is_empty() {
            return Err(Error::invalid("the row axis is empty"));
        }
        if self.cols.is_empty() {
            if self.rows.len() == 1 {
                return PivotTable::from_cube_1d(&cube, &self.rows[0]);
            }
            return composite_pivot(&cube, &self.rows, &[]);
        }
        if self.rows.len() == 1 && self.cols.len() == 1 {
            return PivotTable::from_cube(&cube, &self.rows[0], &self.cols[0]);
        }
        composite_pivot(&cube, &self.rows, &self.cols)
    }
}

/// Pivot with composite headers for multi-attribute axes.
fn composite_pivot(cube: &Cube, rows: &[String], cols: &[String]) -> Result<PivotTable> {
    let row_idx: Vec<usize> = rows
        .iter()
        .map(|a| cube.axis_index(a))
        .collect::<Result<_>>()?;
    let col_idx: Vec<usize> = cols
        .iter()
        .map(|a| cube.axis_index(a))
        .collect::<Result<_>>()?;

    let composite = |coords: &[Value], idx: &[usize]| -> Value {
        if idx.is_empty() {
            Value::from("all")
        } else if idx.len() == 1 {
            coords[idx[0]].clone()
        } else {
            Value::Text(
                idx.iter()
                    .map(|&i| coords[i].to_string())
                    .collect::<Vec<_>>()
                    .join(" / "),
            )
        }
    };

    let mut row_headers: Vec<Value> = Vec::new();
    let mut col_headers: Vec<Value> = Vec::new();
    let mut entries: Vec<(Value, Value, f64)> = Vec::new();
    for (coords, value) in cube.iter() {
        let r = composite(coords, &row_idx);
        let c = composite(coords, &col_idx);
        if !row_headers.contains(&r) {
            row_headers.push(r.clone());
        }
        if !col_headers.contains(&c) {
            col_headers.push(c.clone());
        }
        entries.push((r, c, value));
    }
    row_headers.sort();
    col_headers.sort();
    let mut cells = vec![vec![None; col_headers.len()]; row_headers.len()];
    for (r, c, v) in entries {
        let ri = row_headers.iter().position(|h| *h == r).expect("header");
        let ci = col_headers.iter().position(|h| *h == c).expect("header");
        cells[ri][ci] = Some(v);
    }
    Ok(PivotTable {
        row_axis: rows.join(" / "),
        col_axis: cols.join(" / "),
        row_headers,
        col_headers,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use discri::{generate, CohortConfig};
    use etl::TransformPipeline;
    use std::sync::OnceLock;
    use warehouse::LoadPlan;

    fn wh() -> &'static Warehouse {
        static WH: OnceLock<Warehouse> = OnceLock::new();
        WH.get_or_init(|| {
            let cohort = generate(&CohortConfig::small(41));
            let (table, _) = TransformPipeline::discri_default()
                .run(&cohort.attendances)
                .unwrap();
            Warehouse::load(&LoadPlan::discri_default(), &table).unwrap()
        })
    }

    #[test]
    fn fig4_style_query_family_history_by_age_and_gender() {
        let pivot = QueryBuilder::new(wh())
            .on_rows("Age_Band")
            .on_columns("Gender")
            .where_equals("FamilyHistoryDiabetes", true)
            .count()
            .execute()
            .unwrap();
        assert_eq!(pivot.col_headers.len(), 2); // F, M
        assert!(pivot.row_headers.len() >= 2);
        let total: f64 = pivot.row_totals().iter().sum();
        assert!(total > 0.0);
    }

    #[test]
    fn drill_down_follows_age_hierarchy() {
        let q = QueryBuilder::new(wh())
            .on_rows("Age_Band")
            .on_columns("Gender");
        let fine = q.clone().drill_down("Age_Band").unwrap();
        let coarse_pivot = q.execute().unwrap();
        let fine_pivot = fine.execute().unwrap();
        assert!(fine_pivot.row_headers.len() > coarse_pivot.row_headers.len());
        // Totals are preserved across granularity.
        let coarse_total: f64 = coarse_pivot.row_totals().iter().sum();
        let fine_total: f64 = fine_pivot.row_totals().iter().sum();
        assert!((coarse_total - fine_total).abs() < 1e-9);
    }

    #[test]
    fn roll_up_inverts_drill_down() {
        let q = QueryBuilder::new(wh()).on_rows("Age_SubGroup");
        let rolled = q.roll_up("Age_SubGroup").unwrap();
        let pivot = rolled.execute().unwrap();
        // Age_Band has at most 4 coarse groups.
        assert!(pivot.row_headers.len() <= 4);
    }

    #[test]
    fn drill_down_without_hierarchy_fails() {
        let err = QueryBuilder::new(wh())
            .on_rows("Gender")
            .drill_down("Gender")
            .err()
            .expect("drill-down without a hierarchy must fail");
        assert!(err.to_string().contains("no finer"));
    }

    #[test]
    fn remove_attribute_like_dragging_out() {
        let pivot = QueryBuilder::new(wh())
            .on_rows("Age_Band")
            .on_columns("Gender")
            .remove("Gender")
            .execute()
            .unwrap();
        assert_eq!(pivot.col_headers, vec![Value::from("all")]);
    }

    #[test]
    fn distinct_patient_counts_are_leq_attendance_counts() {
        let attendances = QueryBuilder::new(wh())
            .on_rows("DiabetesStatus")
            .count()
            .execute()
            .unwrap();
        let patients = QueryBuilder::new(wh())
            .on_rows("DiabetesStatus")
            .count_distinct("PatientId")
            .execute()
            .unwrap();
        for h in &attendances.row_headers {
            let a = attendances.get(h, &"all".into()).unwrap();
            let p = patients.get(h, &"all".into()).unwrap();
            assert!(p <= a, "{h}: {p} patients > {a} attendances");
        }
    }

    #[test]
    fn measure_aggregation_through_builder() {
        let pivot = QueryBuilder::new(wh())
            .on_rows("DiabetesStatus")
            .aggregate(Aggregate::Avg, "FBG")
            .execute()
            .unwrap();
        let yes = pivot.get(&"yes".into(), &"all".into()).unwrap();
        let no = pivot.get(&"no".into(), &"all".into()).unwrap();
        assert!(
            yes > no,
            "diabetic mean FBG {yes} must exceed non-diabetic {no}"
        );
    }

    #[test]
    fn composite_axes_render() {
        let pivot = QueryBuilder::new(wh())
            .on_rows("Age_Band")
            .on_rows("Gender")
            .on_columns("DiabetesStatus")
            .execute()
            .unwrap();
        assert!(pivot.row_axis.contains('/'));
        assert!(pivot
            .row_headers
            .iter()
            .any(|h| h.to_string().contains(" / ")));
    }

    #[test]
    fn empty_query_is_an_error() {
        assert!(QueryBuilder::new(wh()).execute().is_err());
    }
}
