//! Semantic analysis of OLAP queries against the star catalog.
//!
//! These are the AST-walking passes behind `analyze`'s diagnostic
//! framework: every query shape the serving layer accepts —
//! [`MdxQuery`], [`CubeSpec`], [`ReportSpec`] — is validated against a
//! [`Catalog`] before it is allowed to consume a worker slot. Checks
//! cover name resolution (`A0xx`, with did-you-mean suggestions),
//! condition typing (`A1xx`) and aggregation legality (`A2xx`); see
//! `analyze::explain` for the full code table.

use crate::aggregate::{Aggregate, MeasureRef};
use crate::cube::CubeSpec;
use crate::mdx::{AxisSet, Condition, MdxQuery, MeasureClause, QuerySpans};
use crate::report::{ReportMeasure, ReportSpec};
use analyze::{Catalog, Code, ColumnKind, Diagnostic, Diagnostics, QueryFootprint};
use clinical_types::{Span, Value};

/// Attach `span` unless it is the empty default (no span table).
fn spanned(d: Diagnostic, span: Span) -> Diagnostic {
    if span == Span::default() {
        d
    } else {
        d.with_span(span)
    }
}

fn with_suggestion(catalog: &Catalog, name: &str, d: Diagnostic) -> Diagnostic {
    match catalog.suggest(name) {
        Some(s) => d.with_suggestion(s),
        None => d,
    }
}

/// Validate an axis grouping attribute; returns the attribute the
/// query effectively groups on (the finer level for drill-downs).
fn check_axis_attribute(
    catalog: &Catalog,
    attr: &str,
    span: Span,
    diags: &mut Diagnostics,
) -> Option<String> {
    match catalog.kind(attr) {
        None => {
            let d = Diagnostic::error(
                Code::A002UnknownAxisAttribute,
                format!("unknown axis attribute `{attr}`"),
            );
            diags.push(spanned(with_suggestion(catalog, attr, d), span));
            None
        }
        Some(ColumnKind::Measure) | Some(ColumnKind::Degenerate) => {
            diags.push(spanned(
                Diagnostic::error(
                    Code::A006AxisNotDimensionAttribute,
                    format!(
                        "`{attr}` is a fact column, not a dimension attribute; \
                         axes group on categorical attributes"
                    ),
                ),
                span,
            ));
            None
        }
        Some(ColumnKind::Attribute { .. }) => Some(attr.to_string()),
    }
}

/// Warn when an equality literal was never observed in the
/// attribute's loaded domain (skipped when the domain is unknown).
fn check_domain(catalog: &Catalog, attr: &str, literal: &str, span: Span, diags: &mut Diagnostics) {
    if let Some(domain) = catalog.domain(attr) {
        if !domain.contains(literal) {
            diags.push(spanned(
                Diagnostic::warning(
                    Code::A103LiteralOutsideDomain,
                    format!("`{literal}` was never observed in `{attr}` at the current epoch"),
                ),
                span,
            ));
        }
    }
}

fn check_equality(
    catalog: &Catalog,
    column: &str,
    literal: &str,
    column_span: Span,
    literal_span: Span,
    diags: &mut Diagnostics,
) {
    match catalog.kind(column) {
        None => {
            let d = Diagnostic::error(
                Code::A004UnknownConditionColumn,
                format!("condition references unknown column `{column}`"),
            );
            diags.push(spanned(with_suggestion(catalog, column, d), column_span));
        }
        Some(ColumnKind::Measure) => diags.push(spanned(
            Diagnostic::error(
                Code::A100EqualityOnMeasure,
                format!(
                    "equality condition on numeric measure `{column}`; \
                     use `[{column}] BETWEEN lo AND hi`"
                ),
            ),
            column_span,
        )),
        Some(ColumnKind::Degenerate) => diags.push(spanned(
            Diagnostic::error(
                Code::A100EqualityOnMeasure,
                format!("equality condition on degenerate fact column `{column}` is not supported"),
            ),
            column_span,
        )),
        Some(ColumnKind::Attribute { .. }) => {
            check_domain(catalog, column, literal, literal_span, diags);
        }
    }
}

fn check_range(
    catalog: &Catalog,
    column: &str,
    lo: f64,
    hi: f64,
    column_span: Span,
    literal_span: Span,
    diags: &mut Diagnostics,
) {
    match catalog.kind(column) {
        None => {
            let d = Diagnostic::error(
                Code::A004UnknownConditionColumn,
                format!("condition references unknown column `{column}`"),
            );
            diags.push(spanned(with_suggestion(catalog, column, d), column_span));
        }
        Some(ColumnKind::Attribute { .. }) => diags.push(spanned(
            Diagnostic::error(
                Code::A101RangeOnCategorical,
                format!(
                    "range condition on categorical attribute `{column}`; \
                     use `[{column}] = 'value'`"
                ),
            ),
            column_span,
        )),
        Some(ColumnKind::Degenerate) => diags.push(spanned(
            Diagnostic::error(
                Code::A101RangeOnCategorical,
                format!("range condition on degenerate fact column `{column}` is not supported"),
            ),
            column_span,
        )),
        Some(ColumnKind::Measure) => {
            if !lo.is_finite() || !hi.is_finite() {
                diags.push(spanned(
                    Diagnostic::error(
                        Code::A104NonFiniteBound,
                        format!("non-finite BETWEEN bound on `{column}` ({lo} .. {hi})"),
                    ),
                    literal_span,
                ));
            } else if lo > hi {
                diags.push(spanned(
                    Diagnostic::error(
                        Code::A102EmptyRange,
                        format!("empty range on `{column}`: lower bound {lo} exceeds upper {hi}"),
                    ),
                    literal_span,
                ));
            }
        }
    }
}

/// Shared aggregation-legality checks: the aggregate target must be a
/// measure (`A003`/`A204`), distinct counts need a degenerate column
/// (`A005`/`A201`), and SUM of a non-additive measure may not roll
/// across the cardinality dimension (`A200`).
fn check_aggregation(
    catalog: &Catalog,
    agg: Aggregate,
    target: Option<&str>,
    distinct: Option<&str>,
    grouping: &[String],
    span: Span,
    diags: &mut Diagnostics,
) {
    if let Some(col) = distinct {
        match catalog.kind(col) {
            None => {
                let d = Diagnostic::error(
                    Code::A005UnknownDistinctColumn,
                    format!("COUNT(DISTINCT …) references unknown column `{col}`"),
                );
                diags.push(spanned(with_suggestion(catalog, col, d), span));
            }
            Some(ColumnKind::Degenerate) => {}
            Some(_) => diags.push(spanned(
                Diagnostic::error(
                    Code::A201DistinctOnNonDegenerate,
                    format!(
                        "COUNT(DISTINCT `{col}`) needs a degenerate fact column \
                         such as PatientId"
                    ),
                ),
                span,
            )),
        }
    }
    if let Some(m) = target {
        match catalog.kind(m) {
            None => {
                let d =
                    Diagnostic::error(Code::A003UnknownMeasure, format!("unknown measure `{m}`"));
                diags.push(spanned(with_suggestion(catalog, m, d), span));
            }
            Some(ColumnKind::Attribute { .. }) | Some(ColumnKind::Degenerate) => {
                diags.push(spanned(
                    Diagnostic::error(
                        Code::A204AggregateTargetNotMeasure,
                        format!("aggregate target `{m}` is not a numeric measure"),
                    ),
                    span,
                ));
            }
            Some(ColumnKind::Measure) => {
                if agg == Aggregate::Sum && !catalog.is_additive_measure(m) {
                    if let Some(card) = grouping
                        .iter()
                        .find(|a| catalog.is_cardinality_attribute(a))
                    {
                        diags.push(spanned(
                            Diagnostic::error(
                                Code::A200SumAcrossCardinality,
                                format!(
                                    "SUM of non-additive measure `{m}` grouped on \
                                     cardinality attribute `{card}` double-counts \
                                     patients across visits; use AVG instead"
                                ),
                            ),
                            span,
                        ));
                    }
                }
            }
        }
    }
}

/// Flag attributes appearing on more than one axis (`A203`).
fn check_duplicate_axes(grouping: &[String], spans: &[Span], diags: &mut Diagnostics) {
    for (i, a) in grouping.iter().enumerate() {
        if grouping[..i].contains(a) {
            diags.push(spanned(
                Diagnostic::error(
                    Code::A203DuplicateAxis,
                    format!("attribute `{a}` appears on more than one axis"),
                ),
                spans.get(i).copied().unwrap_or_default(),
            ));
        }
    }
}

/// Validate a parsed MDX query. `spans` comes from
/// [`crate::mdx::parse_mdx_spanned`]; pass `&QuerySpans::default()`
/// when the query text is gone.
pub fn analyze_mdx(catalog: &Catalog, query: &MdxQuery, spans: &QuerySpans) -> Diagnostics {
    let mut diags = Diagnostics::default();

    if query.cube != catalog.fact_name() {
        let d = Diagnostic::error(
            Code::A001UnknownCube,
            format!(
                "unknown cube `[{}]` (the warehouse exposes `[{}]`)",
                query.cube,
                catalog.fact_name()
            ),
        )
        .with_suggestion(catalog.fact_name());
        diags.push(spanned(d, spans.cube));
    }

    // Axes: resolve names and drill-downs, collecting the effective
    // grouping attributes for the aggregation checks.
    let mut grouping = Vec::new();
    let mut grouping_spans = Vec::new();
    for (axis, span) in [(&query.columns, spans.columns), (&query.rows, spans.rows)] {
        let attr = axis.set.attribute();
        let resolved = check_axis_attribute(catalog, attr, span, &mut diags);
        match &axis.set {
            AxisSet::Members(_) => {
                if let Some(a) = resolved {
                    grouping.push(a);
                    grouping_spans.push(span);
                }
            }
            AxisSet::Explicit(a, members) => {
                if let Some(eff) = resolved {
                    grouping.push(eff);
                    grouping_spans.push(span);
                }
                for m in members {
                    check_domain(catalog, a, m, span, &mut diags);
                }
            }
            AxisSet::Children { parent, member } => {
                if resolved.is_some() {
                    match catalog.finer_level(parent) {
                        Some(child) => {
                            grouping.push(child.to_string());
                            grouping_spans.push(span);
                            check_domain(catalog, parent, member, span, &mut diags);
                        }
                        None => diags.push(spanned(
                            Diagnostic::error(
                                Code::A202NoFinerLevel,
                                format!(
                                    "`[{parent}].[{member}].CHILDREN` needs a finer \
                                     hierarchy level under `{parent}`"
                                ),
                            ),
                            span,
                        )),
                    }
                }
            }
        }
    }
    check_duplicate_axes(&grouping, &grouping_spans, &mut diags);

    for (i, condition) in query.conditions.iter().enumerate() {
        let cs = spans.conditions.get(i).copied().unwrap_or_default();
        match condition {
            Condition::AttributeEquals(attr, value) => {
                check_equality(catalog, attr, value, cs.column, cs.literal, &mut diags);
            }
            Condition::MeasureBetween(m, lo, hi) => {
                check_range(catalog, m, *lo, *hi, cs.column, cs.literal, &mut diags);
            }
        }
    }

    let measure_span = spans.measure.unwrap_or_default();
    match &query.measure {
        MeasureClause::CountRows => {}
        MeasureClause::CountDistinct(col) => check_aggregation(
            catalog,
            Aggregate::Count,
            None,
            Some(col),
            &grouping,
            measure_span,
            &mut diags,
        ),
        MeasureClause::Aggregate(agg, m) => check_aggregation(
            catalog,
            *agg,
            Some(m),
            None,
            &grouping,
            measure_span,
            &mut diags,
        ),
    }

    diags
}

/// Parse and validate an MDX string in one step. Parse errors come
/// back as `Err` (with a caret snippet in the message); semantic
/// findings come back in the `Ok` report, with the query text
/// attached so `Display` renders carets.
pub fn analyze_mdx_str(catalog: &Catalog, text: &str) -> clinical_types::Result<Diagnostics> {
    let (query, spans) = crate::mdx::parse_mdx_spanned(text)?;
    let mut diags = analyze_mdx(catalog, &query, &spans);
    diags.query = Some(text.to_string());
    Ok(diags)
}

/// Validate a cube specification.
pub fn analyze_cube(catalog: &Catalog, spec: &CubeSpec) -> Diagnostics {
    let mut diags = Diagnostics::default();
    if spec.axes.is_empty() {
        diags.push(Diagnostic::error(
            Code::A205NoAxes,
            "a cube needs at least one axis",
        ));
    }
    let mut grouping = Vec::new();
    for attr in &spec.axes {
        if let Some(a) = check_axis_attribute(catalog, attr, Span::default(), &mut diags) {
            grouping.push(a);
        }
    }
    check_duplicate_axes(&grouping, &[], &mut diags);

    for (attr, values) in spec.filter.attribute_conditions() {
        for value in values {
            let literal = match value {
                Value::Text(s) => s.clone(),
                other => other.to_string(),
            };
            check_equality(
                catalog,
                attr,
                &literal,
                Span::default(),
                Span::default(),
                &mut diags,
            );
        }
    }
    for (m, lo, hi) in spec.filter.measure_conditions() {
        check_range(
            catalog,
            m,
            *lo,
            *hi,
            Span::default(),
            Span::default(),
            &mut diags,
        );
    }

    let (target, distinct) = match &spec.measure {
        MeasureRef::RowCount => (None, None),
        MeasureRef::Measure(m) => (Some(m.as_str()), None),
        MeasureRef::DistinctDegenerate(d) => (None, Some(d.as_str())),
    };
    check_aggregation(
        catalog,
        spec.agg,
        target,
        distinct,
        &grouping,
        Span::default(),
        &mut diags,
    );
    diags
}

/// Validate a report specification.
pub fn analyze_report(catalog: &Catalog, spec: &ReportSpec) -> Diagnostics {
    let mut diags = Diagnostics::default();
    if spec.row_axes().is_empty() {
        diags.push(Diagnostic::error(
            Code::A205NoAxes,
            "a report needs at least one row-axis attribute",
        ));
    }
    let mut grouping = Vec::new();
    for attr in spec.row_axes().iter().chain(spec.column_axes()) {
        if let Some(a) = check_axis_attribute(catalog, attr, Span::default(), &mut diags) {
            grouping.push(a);
        }
    }
    check_duplicate_axes(&grouping, &[], &mut diags);

    for (attr, value) in spec.equality_conditions() {
        let literal = match value {
            Value::Text(s) => s.clone(),
            other => other.to_string(),
        };
        check_equality(
            catalog,
            attr,
            &literal,
            Span::default(),
            Span::default(),
            &mut diags,
        );
    }
    for (m, lo, hi) in spec.range_conditions() {
        check_range(
            catalog,
            m,
            *lo,
            *hi,
            Span::default(),
            Span::default(),
            &mut diags,
        );
    }

    let (agg, target, distinct) = match spec.measure_clause() {
        ReportMeasure::Count => (Aggregate::Count, None, None),
        ReportMeasure::CountDistinct(d) => (Aggregate::Count, None, Some(d.as_str())),
        ReportMeasure::Aggregate(agg, m) => (*agg, Some(m.as_str()), None),
    };
    check_aggregation(
        catalog,
        agg,
        target,
        distinct,
        &grouping,
        Span::default(),
        &mut diags,
    );
    diags
}

/// Dimension footprint of a parsed MDX query: every name the query
/// reads (axes, including the finer level a `CHILDREN` drill-down
/// resolves to, conditions, and the measure clause) resolved through
/// the catalog. A drill-down without a finer hierarchy level yields
/// [`QueryFootprint::conservative`].
pub fn footprint_mdx(catalog: &Catalog, query: &MdxQuery) -> QueryFootprint {
    let mut names: Vec<&str> = Vec::new();
    for axis in [&query.columns, &query.rows] {
        names.push(axis.set.attribute());
        if let AxisSet::Children { parent, .. } = &axis.set {
            match catalog.finer_level(parent) {
                Some(child) => names.push(child),
                None => return QueryFootprint::conservative(),
            }
        }
    }
    for condition in &query.conditions {
        match condition {
            Condition::AttributeEquals(attr, _) => names.push(attr),
            Condition::MeasureBetween(m, _, _) => names.push(m),
        }
    }
    match &query.measure {
        MeasureClause::CountRows => {}
        MeasureClause::CountDistinct(col) => names.push(col.as_str()),
        MeasureClause::Aggregate(_, m) => names.push(m.as_str()),
    }
    QueryFootprint::resolve(catalog, names)
}

/// Dimension footprint of a cube specification.
pub fn footprint_cube(catalog: &Catalog, spec: &CubeSpec) -> QueryFootprint {
    let mut names: Vec<&str> = spec.dimension_attributes().collect();
    names.extend(
        spec.filter
            .measure_conditions()
            .iter()
            .map(|(m, _, _)| m.as_str()),
    );
    match &spec.measure {
        MeasureRef::RowCount => {}
        MeasureRef::Measure(m) => names.push(m.as_str()),
        MeasureRef::DistinctDegenerate(d) => names.push(d.as_str()),
    }
    QueryFootprint::resolve(catalog, names)
}

/// Dimension footprint of a report specification.
pub fn footprint_report(catalog: &Catalog, spec: &ReportSpec) -> QueryFootprint {
    let mut names: Vec<&str> = spec
        .row_axes()
        .iter()
        .chain(spec.column_axes())
        .map(String::as_str)
        .collect();
    names.extend(spec.equality_conditions().iter().map(|(a, _)| a.as_str()));
    names.extend(spec.range_conditions().iter().map(|(m, _, _)| m.as_str()));
    match spec.measure_clause() {
        ReportMeasure::Count => {}
        ReportMeasure::CountDistinct(d) => names.push(d.as_str()),
        ReportMeasure::Aggregate(_, m) => names.push(m.as_str()),
    }
    QueryFootprint::resolve(catalog, names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::CubeFilter;
    use warehouse::discri_model;

    fn catalog() -> Catalog {
        Catalog::from_star(&discri_model())
    }

    fn mdx_codes(text: &str) -> Vec<&'static str> {
        analyze_mdx_str(&catalog(), text).expect("parses").codes()
    }

    #[test]
    fn valid_fig5_query_is_clean() {
        let codes = mdx_codes(
            "SELECT [Gender].MEMBERS ON COLUMNS, [Age_SubGroup].MEMBERS ON ROWS \
             FROM [Medical Measures] WHERE [DiabetesStatus] = 'yes' MEASURE COUNT(*)",
        );
        assert!(codes.is_empty(), "{codes:?}");
    }

    #[test]
    fn unknown_names_get_suggestions() {
        let diags = analyze_mdx_str(
            &catalog(),
            "SELECT [Gendr].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
             FROM [Medical Measures]",
        )
        .unwrap();
        let d = diags.find(Code::A002UnknownAxisAttribute).expect("A002");
        assert_eq!(d.suggestion.as_deref(), Some("Gender"));
        assert!(d.span.is_some(), "span should point at [Gendr]");
    }

    #[test]
    fn wrong_cube_suggests_the_fact() {
        let diags = analyze_mdx_str(
            &catalog(),
            "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS FROM [Wrong Cube]",
        )
        .unwrap();
        let d = diags.find(Code::A001UnknownCube).expect("A001");
        assert_eq!(d.suggestion.as_deref(), Some("Medical Measures"));
    }

    #[test]
    fn typing_rules_fire() {
        assert_eq!(
            mdx_codes(
                "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
                 FROM [Medical Measures] WHERE [FBG] = 'high'"
            ),
            vec!["A100"]
        );
        assert_eq!(
            mdx_codes(
                "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
                 FROM [Medical Measures] WHERE [Gender] BETWEEN 1 AND 2"
            ),
            vec!["A101"]
        );
        assert_eq!(
            mdx_codes(
                "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
                 FROM [Medical Measures] WHERE [FBG] BETWEEN 7 AND 5"
            ),
            vec!["A102"]
        );
    }

    #[test]
    fn aggregation_rules_fire() {
        // SUM of a clinical reading across the cardinality dimension.
        assert_eq!(
            mdx_codes(
                "SELECT [VisitKind].MEMBERS ON COLUMNS, [Gender].MEMBERS ON ROWS \
                 FROM [Medical Measures] MEASURE SUM([FBG])"
            ),
            vec!["A200"]
        );
        // The same SUM grouped off-cardinality is fine.
        assert!(mdx_codes(
            "SELECT [FBG_Band].MEMBERS ON COLUMNS, [Gender].MEMBERS ON ROWS \
             FROM [Medical Measures] MEASURE SUM([FBG])"
        )
        .is_empty());
        // Additive measures may SUM across cardinality.
        assert!(mdx_codes(
            "SELECT [VisitKind].MEMBERS ON COLUMNS, [Gender].MEMBERS ON ROWS \
             FROM [Medical Measures] MEASURE SUM([ExerciseMinutesPerWeek])"
        )
        .is_empty());
        assert_eq!(
            mdx_codes(
                "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
                 FROM [Medical Measures] MEASURE COUNT(DISTINCT [Gender])"
            ),
            vec!["A201"]
        );
        assert_eq!(
            mdx_codes(
                "SELECT [Gender].MEMBERS ON COLUMNS, [Gender].[F].CHILDREN ON ROWS \
                 FROM [Medical Measures]"
            ),
            vec!["A202"]
        );
        assert_eq!(
            mdx_codes(
                "SELECT [Gender].MEMBERS ON COLUMNS, [Gender].MEMBERS ON ROWS \
                 FROM [Medical Measures]"
            ),
            vec!["A203"]
        );
        assert_eq!(
            mdx_codes(
                "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
                 FROM [Medical Measures] MEASURE AVG([Gender])"
            ),
            vec!["A204"]
        );
    }

    #[test]
    fn drilldown_grouping_uses_the_finer_level() {
        // [Age_Band].[60-80].CHILDREN effectively groups on
        // Age_SubGroup, so pairing it with Age_SubGroup.MEMBERS is a
        // duplicate axis.
        assert_eq!(
            mdx_codes(
                "SELECT [Age_SubGroup].MEMBERS ON COLUMNS, \
                 [Age_Band].[60-80].CHILDREN ON ROWS FROM [Medical Measures]"
            ),
            vec!["A203"]
        );
    }

    #[test]
    fn cube_and_report_specs_are_checked_too() {
        let c = catalog();
        let bad_cube = CubeSpec::count(vec!["Gender", "NoSuchAttr"])
            .with_filter(CubeFilter::all().measure_between("Gender", 0.0, 1.0));
        let codes = analyze_cube(&c, &bad_cube).codes();
        assert!(codes.contains(&"A002"), "{codes:?}");
        assert!(codes.contains(&"A101"), "{codes:?}");

        let bad_report = ReportSpec::new()
            .on_rows("FBG_Bnad")
            .where_equals("FBG", "high")
            .count_distinct("Gender");
        let codes = analyze_report(&c, &bad_report).codes();
        assert!(codes.contains(&"A002"), "{codes:?}");
        assert!(codes.contains(&"A100"), "{codes:?}");
        assert!(codes.contains(&"A201"), "{codes:?}");

        assert_eq!(
            analyze_cube(&c, &CubeSpec::count(vec![])).codes(),
            vec!["A205"]
        );
        assert_eq!(
            analyze_report(&c, &ReportSpec::new().count()).codes(),
            vec!["A205"]
        );
    }

    #[test]
    fn footprints_resolve_dimensions_per_query_shape() {
        let c = catalog();
        let (query, _) = crate::mdx::parse_mdx_spanned(
            "SELECT [Gender].MEMBERS ON COLUMNS, [Age_SubGroup].MEMBERS ON ROWS \
             FROM [Medical Measures] WHERE [DiabetesStatus] = 'yes' MEASURE AVG([FBG])",
        )
        .unwrap();
        let fp = footprint_mdx(&c, &query);
        assert!(!fp.is_conservative());
        assert!(fp.dimensions().contains("Personal Information"));
        assert!(fp.dimensions().contains("Medical Condition"));
        assert_eq!(fp.dimensions().len(), 2);

        // A drill-down reads both the parent and the finer level.
        let (query, _) = crate::mdx::parse_mdx_spanned(
            "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].[60-80].CHILDREN ON ROWS \
             FROM [Medical Measures]",
        )
        .unwrap();
        assert!(footprint_mdx(&c, &query)
            .dimensions()
            .contains("Personal Information"));

        // Unknown names degrade to conservatism, never staleness.
        let (query, _) = crate::mdx::parse_mdx_spanned(
            "SELECT [Nope].MEMBERS ON COLUMNS, [Gender].MEMBERS ON ROWS \
             FROM [Medical Measures]",
        )
        .unwrap();
        assert!(footprint_mdx(&c, &query).is_conservative());

        let spec =
            CubeSpec::count(vec!["FBG_Band"]).with_filter(CubeFilter::all().equals("Gender", "F"));
        let fp = footprint_cube(&c, &spec);
        assert!(fp.dimensions().contains("Fasting Bloods"));
        assert!(fp.dimensions().contains("Personal Information"));

        let report = ReportSpec::new()
            .on_rows("Gender")
            .count_distinct("PatientId");
        let fp = footprint_report(&c, &report);
        assert_eq!(fp.dimensions().len(), 1);
        assert!(!fp.is_conservative());
    }

    #[test]
    fn domain_warnings_need_a_loaded_warehouse() {
        // Schema-only catalog: no domains, no A103.
        let diags = analyze_mdx_str(
            &catalog(),
            "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
             FROM [Medical Measures] WHERE [Gender] = 'Purple'",
        )
        .unwrap();
        assert!(diags.is_empty(), "{diags}");
    }
}
