//! Two-axis pivot views of a cube.
//!
//! Fig. 4's query area renders a two-axis table (e.g. family history
//! of diabetes by age group and gender); [`PivotTable`] is that
//! artefact: ordered row and column headers plus a dense cell matrix.

use crate::cube::Cube;
use clinical_types::{Result, Value};

/// A dense two-axis view of a cube (one axis may be synthetic "all").
#[derive(Debug, Clone, PartialEq)]
pub struct PivotTable {
    /// Name of the row axis.
    pub row_axis: String,
    /// Name of the column axis (empty string for a one-axis pivot).
    pub col_axis: String,
    /// Row header values, sorted.
    pub row_headers: Vec<Value>,
    /// Column header values, sorted (singleton `"all"` for one-axis).
    pub col_headers: Vec<Value>,
    /// `cells[r][c]` — `None` when the coordinate has no data.
    pub cells: Vec<Vec<Option<f64>>>,
}

impl PivotTable {
    /// Pivot a two-axis cube into a table (`row_axis` × `col_axis`).
    pub fn from_cube(cube: &Cube, row_axis: &str, col_axis: &str) -> Result<PivotTable> {
        let ri = cube.axis_index(row_axis)?;
        let ci = cube.axis_index(col_axis)?;
        let row_headers = cube.axis_values(row_axis)?;
        let col_headers = cube.axis_values(col_axis)?;
        let mut cells = vec![vec![None; col_headers.len()]; row_headers.len()];
        for (coords, value) in cube.iter() {
            let r = row_headers
                .iter()
                .position(|v| *v == coords[ri])
                .expect("row header exists");
            let c = col_headers
                .iter()
                .position(|v| *v == coords[ci])
                .expect("col header exists");
            cells[r][c] = Some(value);
        }
        Ok(PivotTable {
            row_axis: row_axis.to_string(),
            col_axis: col_axis.to_string(),
            row_headers,
            col_headers,
            cells,
        })
    }

    /// One-axis pivot: rows from `axis`, a single "all" column.
    pub fn from_cube_1d(cube: &Cube, axis: &str) -> Result<PivotTable> {
        let ri = cube.axis_index(axis)?;
        let row_headers = cube.axis_values(axis)?;
        let mut cells = vec![vec![None]; row_headers.len()];
        for (coords, value) in cube.iter() {
            let r = row_headers
                .iter()
                .position(|v| *v == coords[ri])
                .expect("row header exists");
            cells[r][0] = Some(value);
        }
        Ok(PivotTable {
            row_axis: axis.to_string(),
            col_axis: String::new(),
            row_headers,
            col_headers: vec![Value::from("all")],
            cells,
        })
    }

    /// Cell by header values.
    pub fn get(&self, row: &Value, col: &Value) -> Option<f64> {
        let r = self.row_headers.iter().position(|v| v == row)?;
        let c = self.col_headers.iter().position(|v| v == col)?;
        self.cells[r][c]
    }

    /// Row sums (missing cells contribute 0, all-missing rows yield 0).
    pub fn row_totals(&self) -> Vec<f64> {
        self.cells
            .iter()
            .map(|row| row.iter().flatten().sum())
            .collect()
    }

    /// Column sums.
    pub fn col_totals(&self) -> Vec<f64> {
        (0..self.col_headers.len())
            .map(|c| self.cells.iter().filter_map(|row| row[c]).sum())
            .collect()
    }

    /// Drop rows whose every cell is empty (MDX `NON EMPTY` on rows).
    pub fn drop_empty_rows(&self) -> PivotTable {
        let keep: Vec<usize> = (0..self.row_headers.len())
            .filter(|&r| self.cells[r].iter().any(Option::is_some))
            .collect();
        PivotTable {
            row_axis: self.row_axis.clone(),
            col_axis: self.col_axis.clone(),
            row_headers: keep.iter().map(|&r| self.row_headers[r].clone()).collect(),
            col_headers: self.col_headers.clone(),
            cells: keep.iter().map(|&r| self.cells[r].clone()).collect(),
        }
    }

    /// Drop columns whose every cell is empty (MDX `NON EMPTY` on
    /// columns).
    pub fn drop_empty_columns(&self) -> PivotTable {
        let keep: Vec<usize> = (0..self.col_headers.len())
            .filter(|&c| self.cells.iter().any(|row| row[c].is_some()))
            .collect();
        PivotTable {
            row_axis: self.row_axis.clone(),
            col_axis: self.col_axis.clone(),
            row_headers: self.row_headers.clone(),
            col_headers: keep.iter().map(|&c| self.col_headers[c].clone()).collect(),
            cells: self
                .cells
                .iter()
                .map(|row| keep.iter().map(|&c| row[c]).collect())
                .collect(),
        }
    }

    /// Render as fixed-width text (header row, then one line per row).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = Vec::with_capacity(self.col_headers.len() + 1);
        let row_label_width = self
            .row_headers
            .iter()
            .map(|h| h.to_string().len())
            .chain([self.row_axis.len()])
            .max()
            .unwrap_or(4);
        widths.push(row_label_width);
        for (c, h) in self.col_headers.iter().enumerate() {
            let data_w = self
                .cells
                .iter()
                .filter_map(|row| row[c].map(|v| format!("{v:.1}").len()))
                .max()
                .unwrap_or(1);
            widths.push(data_w.max(h.to_string().len()));
        }

        let mut out = String::new();
        out.push_str(&format!("{:<w$}", self.row_axis, w = widths[0]));
        for (c, h) in self.col_headers.iter().enumerate() {
            out.push_str(&format!("  {:>w$}", h.to_string(), w = widths[c + 1]));
        }
        out.push('\n');
        for (r, h) in self.row_headers.iter().enumerate() {
            out.push_str(&format!("{:<w$}", h.to_string(), w = widths[0]));
            for c in 0..self.col_headers.len() {
                match self.cells[r][c] {
                    Some(v) => out.push_str(&format!("  {:>w$.1}", v, w = widths[c + 1])),
                    None => out.push_str(&format!("  {:>w$}", "-", w = widths[c + 1])),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::CubeSpec;
    use clinical_types::{DataType, FieldDef, Record, Schema, Table};
    use warehouse::{DimensionDef, FactDef, LoadPlan, StarSchema, Warehouse};

    fn cube() -> Cube {
        let star = StarSchema::new(
            FactDef::new("F", vec![], vec![]),
            vec![DimensionDef::new("D", vec!["A", "B"])],
        )
        .unwrap();
        let schema = Schema::new(vec![
            FieldDef::nullable("A", DataType::Text),
            FieldDef::nullable("B", DataType::Text),
        ])
        .unwrap();
        let rows = vec![
            vec!["x".into(), "p".into()],
            vec!["x".into(), "p".into()],
            vec!["x".into(), "q".into()],
            vec!["y".into(), "q".into()],
        ];
        let table = Table::from_rows(schema, rows.into_iter().map(Record::new).collect()).unwrap();
        let wh = Warehouse::load(&LoadPlan::from_star(star), &table).unwrap();
        Cube::build(&wh, &CubeSpec::count(vec!["A", "B"])).unwrap()
    }

    #[test]
    fn pivot_places_cells_correctly() {
        let p = PivotTable::from_cube(&cube(), "A", "B").unwrap();
        assert_eq!(p.get(&"x".into(), &"p".into()), Some(2.0));
        assert_eq!(p.get(&"x".into(), &"q".into()), Some(1.0));
        assert_eq!(p.get(&"y".into(), &"p".into()), None);
        assert_eq!(p.get(&"y".into(), &"q".into()), Some(1.0));
    }

    #[test]
    fn totals() {
        let p = PivotTable::from_cube(&cube(), "A", "B").unwrap();
        assert_eq!(p.row_totals(), vec![3.0, 1.0]);
        assert_eq!(p.col_totals(), vec![2.0, 2.0]);
    }

    #[test]
    fn transpose_by_swapping_axes() {
        let c = cube();
        let p = PivotTable::from_cube(&c, "B", "A").unwrap();
        assert_eq!(p.get(&"p".into(), &"x".into()), Some(2.0));
        assert_eq!(p.row_headers.len(), 2);
    }

    #[test]
    fn one_dimensional_pivot() {
        let c = cube().roll_up("B").unwrap();
        let p = PivotTable::from_cube_1d(&c, "A").unwrap();
        assert_eq!(p.get(&"x".into(), &"all".into()), Some(3.0));
        assert_eq!(p.get(&"y".into(), &"all".into()), Some(1.0));
    }

    #[test]
    fn render_produces_aligned_rows() {
        let p = PivotTable::from_cube(&cube(), "A", "B").unwrap();
        let text = p.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 rows
        assert!(lines[0].contains('p') && lines[0].contains('q'));
        assert!(lines[1].starts_with('x'));
        assert!(lines[2].contains('-')); // the empty (y,p) cell
    }

    #[test]
    fn drop_empty_rows_and_columns() {
        let p = PivotTable {
            row_axis: "R".into(),
            col_axis: "C".into(),
            row_headers: vec![Value::from("a"), Value::from("b")],
            col_headers: vec![Value::from("x"), Value::from("y")],
            cells: vec![vec![Some(1.0), None], vec![None, None]],
        };
        let rows = p.drop_empty_rows();
        assert_eq!(rows.row_headers, vec![Value::from("a")]);
        assert_eq!(rows.cells.len(), 1);
        let cols = p.drop_empty_columns();
        assert_eq!(cols.col_headers, vec![Value::from("x")]);
        assert_eq!(cols.cells[0], vec![Some(1.0)]);
        // Chaining both yields the dense core.
        let dense = p.drop_empty_rows().drop_empty_columns();
        assert_eq!(dense.cells, vec![vec![Some(1.0)]]);
    }

    #[test]
    fn unknown_axis_is_an_error() {
        assert!(PivotTable::from_cube(&cube(), "A", "Z").is_err());
        assert!(PivotTable::from_cube_1d(&cube(), "Z").is_err());
    }
}
