//! Deterministic synthetic cohort generation.
//!
//! All of the distributional targets come from Section V of the paper
//! (see the crate docs). The generator is organised in two stages:
//! first the per-patient latent state ([`crate::Patient`]), then the
//! per-attendance measurement rows. Every stochastic choice flows from
//! a single seeded [`StdRng`], so a `(seed, config)` pair fully
//! determines the cohort.

use crate::attributes::{attribute_catalogue, cohort_schema, first_panel_index, AttributeSpec};
use crate::config::CohortConfig;
use crate::patient::{DiseasePhase, Gender, Patient};
use clinical_types::{Date, Record, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

/// A generated cohort: the patient roster (latent ground truth) plus
/// the wide raw attendance table (273 columns, one row per visit).
///
/// "Raw" means the table still contains the injected missing values
/// and erroneous measurements; the ETL crate is responsible for
/// cleaning it, exactly as §V.A of the paper describes.
#[derive(Debug, Clone)]
pub struct Cohort {
    /// Configuration the cohort was generated from.
    pub config: CohortConfig,
    /// Latent per-patient ground truth.
    pub patients: Vec<Patient>,
    /// Raw attendance table (one row per visit).
    pub attendances: Table,
}

impl Cohort {
    /// Number of attendances (rows of the wide table).
    pub fn n_attendances(&self) -> usize {
        self.attendances.len()
    }

    /// Patient by 1-based id.
    pub fn patient(&self, id: u32) -> Option<&Patient> {
        self.patients.get((id as usize).checked_sub(1)?)
    }
}

/// Generate a cohort from `config`. Deterministic in `config.seed`.
pub fn generate(config: &CohortConfig) -> Cohort {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = cohort_schema();
    let catalogue = attribute_catalogue();
    let index: HashMap<&str, usize> = catalogue
        .iter()
        .enumerate()
        .map(|(i, a)| (a.name.as_str(), i))
        .collect();

    let patients: Vec<Patient> = (0..config.n_patients)
        .map(|i| gen_patient(i as u32 + 1, config, &mut rng))
        .collect();

    let mut table = Table::new(schema.clone());
    for p in &patients {
        let visits = gen_visit_plan(p, config, &mut rng);
        for v in &visits {
            let row = gen_row(p, v, config, &catalogue, &index, &schema, &mut rng);
            table.push_unchecked(Record::new(row));
        }
    }
    Cohort {
        config: config.clone(),
        patients,
        attendances: table,
    }
}

/// One planned visit with its resolved latent phase.
#[derive(Debug, Clone, Copy)]
struct Visit {
    visit_no: u32,
    date: Date,
    phase: DiseasePhase,
    /// Years since this patient first reached [`DiseasePhase::Diabetic`],
    /// if they have.
    diabetic_for_years: Option<f64>,
}

// ---------------------------------------------------------------------------
// RNG helpers (rand ships uniform only; Box–Muller gives us normals).
// ---------------------------------------------------------------------------

fn normal(rng: &mut StdRng, mean: f64, sd: f64) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + sd * z
}

fn normal_clipped(rng: &mut StdRng, mean: f64, sd: f64, lo: f64, hi: f64) -> f64 {
    normal(rng, mean, sd).clamp(lo, hi)
}

fn lognormal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

// ---------------------------------------------------------------------------
// Patient-level generation.
// ---------------------------------------------------------------------------

/// Probability that a patient of mid-programme age `age` and gender `g`
/// is (or becomes) diabetic during the programme. Encodes the Fig. 5
/// shape: see crate docs.
pub fn diabetes_probability(age: f64, gender: Gender) -> f64 {
    // The boost/suppression windows are offset from the visible
    // figure bands because risk is assigned at the patient's
    // mid-programme age while Fig. 5 counts attendances by age at
    // visit: a patient contributes visits roughly ±3 years around the
    // assignment age, so each window is pulled ~1–2 years early and a
    // counter-suppression keeps spill-over out of the adjacent band.
    match gender {
        Gender::Male => {
            let mut p = 0.04 + 0.26 * sigmoid((age - 60.0) / 8.0);
            if (69.0..74.0).contains(&age) {
                p *= 1.8; // males dominate the 70–75 sub-group…
            } else if (74.0..79.0).contains(&age) {
                p *= 0.7; // …but not 75–80
            }
            p.min(0.85)
        }
        Gender::Female => {
            let mut p = 0.04 + 0.26 * sigmoid((age - 63.0) / 8.0);
            if (68.0..73.0).contains(&age) {
                p *= 0.6; // minority in 70–75
            } else if (73.0..78.0).contains(&age) {
                p *= 1.9; // females are the majority in 75–80
            } else if age >= 78.0 {
                p *= 0.35; // …and the proportion drops substantially over 78
            }
            p.min(0.85)
        }
    }
}

/// Probability of hypertension by mid-programme age.
pub fn hypertension_probability(age: f64) -> f64 {
    (0.08 + 0.50 * sigmoid((age - 58.0) / 9.0)).min(0.9)
}

/// Band weights over years-since-HT-diagnosis: `<2, 2–5, 5–10, 10–20, >20`.
/// Encodes the Fig. 6 dip of the 5–10 band in the 70–80 age range.
pub fn ht_years_band_weights(age: f64) -> [f64; 5] {
    // The dip window is wider than the visible 70–80 figure band and
    // the 2–5 weight is also reduced, because years-since-diagnosis
    // drifts upward across a patient's visits: a "2–5" assignment at
    // entry crosses into "5–10" two visits later, and a patient whose
    // mid-programme age is 81 still contributes early visits to the
    // 75–80 sub-group.
    if (69.0..83.0).contains(&age) {
        [0.42, 0.14, 0.04, 0.24, 0.16]
    } else {
        [0.22, 0.26, 0.24, 0.20, 0.08]
    }
}

fn gen_patient(id: u32, config: &CohortConfig, rng: &mut StdRng) -> Patient {
    let gender = if rng.random::<f64>() < 0.55 {
        Gender::Female
    } else {
        Gender::Male
    };
    // Screening cohorts skew older: mean 62, sd 12, clipped to [25, 92].
    let entry_age = normal_clipped(rng, 62.0, 12.0, 25.0, 92.0);
    let mid_age = entry_age + 2.0;

    let subclinical_neuropathy = rng.random::<f64>() < 0.12;
    let mut p_diab = diabetes_probability(mid_age, gender);
    if subclinical_neuropathy {
        // The latent driver of the §V insight: neuropathy precedes and
        // predicts diabetes.
        p_diab = (p_diab * 2.2).min(0.85);
    }
    let ever_diabetic = rng.random::<f64>() < p_diab;

    let (entry_phase, progression_rate) = if ever_diabetic {
        let r: f64 = rng.random();
        let phase = if r < 0.55 {
            DiseasePhase::Diabetic
        } else if r < 0.85 {
            DiseasePhase::PreDiabetic
        } else {
            DiseasePhase::Normal
        };
        (phase, 0.35)
    } else {
        let phase = if rng.random::<f64>() < 0.80 {
            DiseasePhase::Normal
        } else {
            DiseasePhase::PreDiabetic
        };
        // Non-diabetics may drift Normal → PreDiabetic but never cross
        // into Diabetic (the generator enforces the cap per-visit).
        (phase, 0.05)
    };

    let hypertensive = rng.random::<f64>() < hypertension_probability(mid_age);
    let entry_year =
        config.start_year + rng.random_range(0..(config.end_year - config.start_year).max(1));
    let ht_diagnosis_year = if hypertensive {
        let w = ht_years_band_weights(mid_age);
        let band = sample_weighted(rng, &w);
        // Years before entry, uniform within the chosen band.
        let years_before: f64 = match band {
            0 => rng.random_range(0.0..2.0),
            1 => rng.random_range(2.0..5.0),
            2 => rng.random_range(5.0..10.0),
            3 => rng.random_range(10.0..20.0),
            _ => rng.random_range(20.0..35.0),
        };
        Some(entry_year - years_before.round() as i32)
    } else {
        None
    };

    let entry_date = Date::new(
        entry_year,
        rng.random_range(1..=12),
        rng.random_range(1..=28),
    )
    .expect("generated entry date is valid");
    let birth_year = entry_year - entry_age.round() as i32;
    let birth_date = Date::new(
        birth_year,
        rng.random_range(1..=12),
        rng.random_range(1..=28),
    )
    .expect("generated birth date is valid");

    let family_history_diabetes = rng.random::<f64>() < if ever_diabetic { 0.45 } else { 0.18 };

    Patient {
        id,
        gender,
        birth_date,
        entry_date,
        family_history_diabetes,
        family_history_cvd: rng.random::<f64>() < 0.22,
        education_years: rng.random_range(6..=18),
        smoker: rng.random::<f64>() < 0.17,
        entry_phase,
        progression_rate,
        subclinical_neuropathy,
        hypertensive,
        ht_diagnosis_year,
        bmi_baseline: normal_clipped(
            rng,
            if ever_diabetic { 30.0 } else { 26.5 },
            4.0,
            17.0,
            48.0,
        ),
        on_medication: ever_diabetic && rng.random::<f64>() < 0.65,
        exercise_level: rng.random_range(0..=7),
    }
}

fn sample_weighted(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.random::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

// ---------------------------------------------------------------------------
// Visit planning.
// ---------------------------------------------------------------------------

fn gen_visit_plan(p: &Patient, config: &CohortConfig, rng: &mut StdRng) -> Vec<Visit> {
    // 1 + Geometric(1/mean) visits, capped.
    let p_stop = 1.0 / config.mean_visits.max(1.0);
    let mut n = 1usize;
    while n < config.max_visits && rng.random::<f64>() > p_stop {
        n += 1;
    }

    // The first attendance is the patient's entry date — the same one
    // gen_patient used to anchor ages and diagnosis years.
    let mut date = p.entry_date;

    let end = Date::new(config.end_year, 12, 31).expect("end date valid");
    let mut phase = p.entry_phase;
    let mut diabetic_since: Option<Date> = if phase == DiseasePhase::Diabetic {
        // Entered already diabetic: diagnosed 0–10 years before entry.
        Some(date.plus_days(-(rng.random_range(0..3650) as i64)))
    } else {
        None
    };

    let mut visits = Vec::with_capacity(n);
    for visit_no in 1..=n as u32 {
        let diabetic_for_years =
            diabetic_since.map(|since| (date.days_since(since) as f64 / 365.25).max(0.0));
        visits.push(Visit {
            visit_no,
            date,
            phase,
            diabetic_for_years,
        });

        // Advance roughly one year (±60 days) and maybe progress.
        let gap = 365 + rng.random_range(-60..=60);
        let next = date.plus_days(gap as i64);
        if next > end {
            break;
        }
        date = next;
        if rng.random::<f64>() < p.progression_rate {
            phase = match phase {
                DiseasePhase::Normal => DiseasePhase::PreDiabetic,
                DiseasePhase::PreDiabetic => {
                    // Only ever-diabetic patients may cross into Diabetic.
                    if p.progression_rate > 0.2 {
                        DiseasePhase::Diabetic
                    } else {
                        DiseasePhase::PreDiabetic
                    }
                }
                DiseasePhase::Diabetic => DiseasePhase::Diabetic,
            };
            if phase == DiseasePhase::Diabetic && diabetic_since.is_none() {
                diabetic_since = Some(date);
            }
        }
    }
    visits
}

// ---------------------------------------------------------------------------
// Per-visit measurement generation.
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn gen_row(
    p: &Patient,
    v: &Visit,
    config: &CohortConfig,
    catalogue: &[AttributeSpec],
    index: &HashMap<&str, usize>,
    schema: &Schema,
    rng: &mut StdRng,
) -> Vec<Value> {
    let mut row = vec![Value::Null; schema.len()];
    let set = |row: &mut Vec<Value>, name: &str, value: Value| {
        row[*index.get(name).expect("attribute in catalogue")] = value;
    };
    let age = p.age_on(v.date);
    let diabetic = v.phase == DiseasePhase::Diabetic;
    let neuropathic = p.subclinical_neuropathy || (diabetic && rng.random::<f64>() < 0.5);

    // Identity.
    set(&mut row, "PatientId", Value::Int(i64::from(p.id)));
    set(&mut row, "VisitNo", Value::Int(i64::from(v.visit_no)));
    set(&mut row, "TestDate", Value::Date(v.date));

    // Personal information.
    set(&mut row, "Gender", Value::Text(p.gender.code().into()));
    set(&mut row, "Age", Value::Int(i64::from(age)));
    set(
        &mut row,
        "FamilyHistoryDiabetes",
        Value::Bool(p.family_history_diabetes),
    );
    set(
        &mut row,
        "FamilyHistoryCVD",
        Value::Bool(p.family_history_cvd),
    );
    set(
        &mut row,
        "EducationYears",
        Value::Int(i64::from(p.education_years)),
    );
    set(&mut row, "Smoker", Value::Bool(p.smoker));

    // Medical condition.
    set(
        &mut row,
        "DiabetesStatus",
        Value::Text(if diabetic { "yes".into() } else { "no".into() }),
    );
    if let Some(years) = v.diabetic_for_years {
        set(
            &mut row,
            "DiabetesDurationYears",
            Value::Float(round1(years)),
        );
    }
    set(
        &mut row,
        "HypertensionStatus",
        Value::Text(if p.hypertensive {
            "yes".into()
        } else {
            "no".into()
        }),
    );
    if let Some(dy) = p.ht_diagnosis_year {
        let years = (v.date.year() - dy).max(0) as f64 + f64::from(v.date.month()) / 12.0;
        set(&mut row, "DiagnosticHTYears", Value::Float(round1(years)));
    }
    let on_med = p.on_medication && diabetic;
    set(&mut row, "OnGlucoseMedication", Value::Bool(on_med));
    let med_count = i64::from(on_med) + i64::from(p.hypertensive) + rng.random_range(0..2);
    set(&mut row, "MedicationCount", Value::Int(med_count));

    // Fasting bloods. Medicated diabetics sit in the controlled
    // mid-range — the load-bearing piece of the §V reflex+glucose
    // insight (mid FBG alone looks benign; with absent reflexes it is
    // highly predictive).
    let fbg = match (v.phase, on_med) {
        (DiseasePhase::Normal, _) => normal_clipped(rng, 5.0, 0.4, 3.6, 6.0),
        (DiseasePhase::PreDiabetic, _) => normal_clipped(rng, 6.3, 0.45, 5.2, 7.4),
        (DiseasePhase::Diabetic, true) => normal_clipped(rng, 6.4, 0.6, 5.3, 8.0),
        (DiseasePhase::Diabetic, false) => normal_clipped(rng, 8.9, 1.4, 7.0, 16.0),
    };
    set(&mut row, "FBG", Value::Float(round1(fbg)));
    set(
        &mut row,
        "HbA1c",
        Value::Float(round1(4.5 + 0.45 * fbg + normal(rng, 0.0, 0.3))),
    );
    let tc = normal_clipped(rng, if diabetic { 5.6 } else { 5.1 }, 0.9, 2.5, 9.5);
    let hdl = normal_clipped(rng, if diabetic { 1.15 } else { 1.4 }, 0.3, 0.5, 3.0);
    set(&mut row, "TotalCholesterol", Value::Float(round1(tc)));
    set(&mut row, "HDL", Value::Float(round2(hdl)));
    set(
        &mut row,
        "LDL",
        Value::Float(round1((tc - hdl - 0.5).max(0.5))),
    );
    set(
        &mut row,
        "Triglycerides",
        Value::Float(round1(normal_clipped(
            rng,
            if diabetic { 2.1 } else { 1.4 },
            0.6,
            0.3,
            6.0,
        ))),
    );
    let creat = normal_clipped(rng, if diabetic { 95.0 } else { 80.0 }, 18.0, 40.0, 220.0);
    set(&mut row, "Creatinine", Value::Float(round1(creat)));
    set(
        &mut row,
        "EGFR",
        Value::Float(round1(
            (12000.0 / creat - f64::from(age) * 0.4).clamp(8.0, 120.0),
        )),
    );
    set(
        &mut row,
        "Urea",
        Value::Float(round1(normal_clipped(rng, 6.0, 1.6, 2.0, 20.0))),
    );
    set(
        &mut row,
        "UricAcid",
        Value::Float(round2(normal_clipped(rng, 0.32, 0.07, 0.1, 0.7))),
    );
    set(
        &mut row,
        "CRP",
        Value::Float(round1(
            lognormal(rng, if diabetic { 1.2 } else { 0.7 }, 0.6).min(80.0),
        )),
    );

    // Limb health. Neuropathy (latent or diabetic) ablates reflexes.
    let reflex = |rng: &mut StdRng, neuropathic: bool| -> &'static str {
        let r: f64 = rng.random();
        if neuropathic {
            if r < 0.72 {
                "absent"
            } else if r < 0.92 {
                "reduced"
            } else {
                "present"
            }
        } else if r < 0.05 {
            "absent"
        } else if r < 0.18 {
            "reduced"
        } else {
            "present"
        }
    };
    set(
        &mut row,
        "KneeReflexRight",
        Value::Text(reflex(rng, neuropathic).into()),
    );
    set(
        &mut row,
        "KneeReflexLeft",
        Value::Text(reflex(rng, neuropathic).into()),
    );
    set(
        &mut row,
        "AnkleReflexRight",
        Value::Text(reflex(rng, neuropathic).into()),
    );
    set(
        &mut row,
        "AnkleReflexLeft",
        Value::Text(reflex(rng, neuropathic).into()),
    );
    set(
        &mut row,
        "MonofilamentScore",
        Value::Int(if neuropathic {
            rng.random_range(2..=7)
        } else {
            rng.random_range(7..=10)
        }),
    );
    set(
        &mut row,
        "VibrationPerception",
        Value::Float(round1(normal_clipped(
            rng,
            if neuropathic { 14.0 } else { 7.0 },
            3.0,
            0.0,
            50.0,
        ))),
    );
    set(
        &mut row,
        "FootPulses",
        Value::Text(
            if rng.random::<f64>() < if diabetic { 0.25 } else { 0.06 } {
                "diminished".into()
            } else {
                "normal".into()
            },
        ),
    );
    set(
        &mut row,
        "AnkleBrachialIndex",
        Value::Float(round2(normal_clipped(
            rng,
            if diabetic { 0.95 } else { 1.08 },
            0.12,
            0.4,
            1.4,
        ))),
    );

    // Exercise routine.
    let sessions = i64::from(p.exercise_level);
    set(&mut row, "ExerciseSessionsPerWeek", Value::Int(sessions));
    set(
        &mut row,
        "ExerciseMinutesPerWeek",
        Value::Float(round1(
            sessions as f64 * normal_clipped(rng, 38.0, 10.0, 10.0, 90.0),
        )),
    );
    let activity = match p.exercise_level {
        0 => "none",
        1..=2 => "walking",
        3..=4 => "mixed",
        5..=6 => "gym",
        _ => "sport",
    };
    set(&mut row, "ActivityType", Value::Text(activity.into()));
    set(
        &mut row,
        "SedentaryHoursPerDay",
        Value::Float(round1(normal_clipped(
            rng,
            9.0 - 0.5 * sessions as f64,
            1.5,
            2.0,
            16.0,
        ))),
    );

    // Blood pressure.
    let (sbp_m, dbp_m) = if p.hypertensive {
        (151.0, 92.0)
    } else {
        (126.0, 75.0)
    };
    let sbp = normal_clipped(rng, sbp_m, 11.0, 85.0, 220.0);
    let dbp = normal_clipped(rng, dbp_m, 8.0, 45.0, 130.0);
    set(&mut row, "LyingSBPAverage", Value::Float(round1(sbp)));
    set(&mut row, "LyingDBPAverage", Value::Float(round1(dbp)));
    // Autonomic neuropathy produces an orthostatic drop.
    let drop = if neuropathic {
        normal_clipped(rng, 22.0, 8.0, 0.0, 60.0)
    } else {
        normal_clipped(rng, 6.0, 4.0, -5.0, 30.0)
    };
    set(&mut row, "StandingSBP", Value::Float(round1(sbp - drop)));
    set(
        &mut row,
        "StandingDBP",
        Value::Float(round1(dbp - drop * 0.4)),
    );
    set(
        &mut row,
        "RestingHeartRate",
        Value::Float(round1(normal_clipped(
            rng,
            if neuropathic { 78.0 } else { 70.0 },
            9.0,
            40.0,
            130.0,
        ))),
    );
    set(&mut row, "OrthostaticSBPDrop", Value::Float(round1(drop)));

    // ECG / Ewing battery. Cardiovascular autonomic neuropathy blunts
    // the Ewing ratios and heart-rate variability.
    set(
        &mut row,
        "QRSDuration",
        Value::Float(round1(normal_clipped(rng, 96.0, 10.0, 60.0, 180.0))),
    );
    let qt = normal_clipped(rng, 395.0, 22.0, 300.0, 520.0);
    set(&mut row, "QTInterval", Value::Float(round1(qt)));
    set(
        &mut row,
        "QTc",
        Value::Float(round1(
            qt + if neuropathic { 18.0 } else { 0.0 } + normal(rng, 10.0, 8.0),
        )),
    );
    set(
        &mut row,
        "PRInterval",
        Value::Float(round1(normal_clipped(rng, 162.0, 18.0, 90.0, 320.0))),
    );
    set(
        &mut row,
        "SDNN",
        Value::Float(round1(normal_clipped(
            rng,
            if neuropathic { 26.0 } else { 48.0 },
            10.0,
            3.0,
            150.0,
        ))),
    );
    set(
        &mut row,
        "EwingHRRatio3015",
        Value::Float(round2(normal_clipped(
            rng,
            if neuropathic { 1.0 } else { 1.12 },
            0.06,
            0.8,
            1.5,
        ))),
    );
    set(
        &mut row,
        "EwingValsalvaRatio",
        Value::Float(round2(normal_clipped(
            rng,
            if neuropathic { 1.12 } else { 1.35 },
            0.12,
            0.8,
            2.2,
        ))),
    );
    set(
        &mut row,
        "EwingHandGrip",
        Value::Float(round1(normal_clipped(
            rng,
            if neuropathic { 11.0 } else { 17.0 },
            4.0,
            0.0,
            40.0,
        ))),
    );
    set(
        &mut row,
        "EwingDeepBreathingHRV",
        Value::Float(round1(normal_clipped(
            rng,
            if neuropathic { 9.0 } else { 19.0 },
            5.0,
            0.0,
            50.0,
        ))),
    );

    // Anthropometry.
    let bmi = (p.bmi_baseline + normal(rng, 0.0, 0.8)).clamp(15.0, 55.0);
    let height = normal_clipped(
        rng,
        match p.gender {
            Gender::Female => 162.0,
            Gender::Male => 176.0,
        },
        7.0,
        140.0,
        205.0,
    );
    let weight = bmi * (height / 100.0).powi(2);
    set(&mut row, "BMI", Value::Float(round1(bmi)));
    set(&mut row, "WeightKg", Value::Float(round1(weight)));
    set(&mut row, "HeightCm", Value::Float(round1(height)));
    let waist = normal_clipped(rng, 2.6 * bmi + 20.0, 6.0, 55.0, 160.0);
    let hip = normal_clipped(rng, waist + 8.0, 5.0, 60.0, 170.0);
    set(&mut row, "WaistCm", Value::Float(round1(waist)));
    set(&mut row, "HipCm", Value::Float(round1(hip)));
    set(&mut row, "WaistHipRatio", Value::Float(round2(waist / hip)));

    // Panel biomarkers: log-normal panels, a subset weakly correlated
    // with glycaemic phase so wide-feature mining has signal to find.
    let phase_idx = match v.phase {
        DiseasePhase::Normal => 0.0,
        DiseasePhase::PreDiabetic => 1.0,
        DiseasePhase::Diabetic => 2.0,
    };
    for (i, spec) in catalogue.iter().enumerate().skip(first_panel_index()) {
        let k = i - first_panel_index();
        let mu = 0.3 + (k % 17) as f64 * 0.2;
        let mut val = lognormal(rng, mu, 0.35);
        if k.is_multiple_of(7) {
            val *= 1.0 + 0.18 * phase_idx;
        }
        row[*index.get(spec.name.as_str()).expect("panel attr")] = Value::Float(round2(val));
    }

    // Missing-value injection (nullable attributes only), with the
    // age-dependent extra for the hand-grip test, then error injection.
    inject_missing_and_errors(&mut row, catalogue, config, age, rng);
    row
}

fn inject_missing_and_errors(
    row: &mut [Value],
    catalogue: &[AttributeSpec],
    config: &CohortConfig,
    age: i32,
    rng: &mut StdRng,
) {
    for (i, spec) in catalogue.iter().enumerate() {
        if !spec.nullable {
            continue;
        }
        let mut p_missing = config.missing_rate * spec.missing_multiplier;
        if spec.name == "EwingHandGrip" && age > 70 {
            // §V: "procedures such as the hand grip test cannot be
            // applied to the elderly".
            p_missing += 0.45;
        }
        if rng.random::<f64>() < p_missing {
            row[i] = Value::Null;
            continue;
        }
        // Occasionally corrupt a numeric value (sign flip or a
        // magnitude error), exercising the ETL cleaning stage.
        if rng.random::<f64>() < config.error_rate {
            if let Value::Float(f) = row[i] {
                row[i] = if rng.random::<f64>() < 0.5 {
                    Value::Float(-f)
                } else {
                    Value::Float(f * 100.0)
                };
            } else if let Value::Int(n) = row[i] {
                row[i] = Value::Int(-n.abs() * 10);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cohort {
        generate(&CohortConfig::small(7))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&CohortConfig::small(9));
        let b = generate(&CohortConfig::small(9));
        assert_eq!(a.n_attendances(), b.n_attendances());
        for (ra, rb) in a.attendances.rows().iter().zip(b.attendances.rows()) {
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&CohortConfig::small(1));
        let b = generate(&CohortConfig::small(2));
        let same = a.n_attendances() == b.n_attendances()
            && a.attendances
                .rows()
                .iter()
                .zip(b.attendances.rows())
                .all(|(x, y)| x == y);
        assert!(!same);
    }

    #[test]
    fn default_scale_matches_paper() {
        let c = generate(&CohortConfig::default());
        assert_eq!(c.patients.len(), 900);
        // "over 2500 attendances of nearly 900 patients"
        assert!(
            c.n_attendances() > 2000 && c.n_attendances() < 3200,
            "attendances = {}",
            c.n_attendances()
        );
        assert_eq!(c.attendances.schema().len(), 273);
    }

    #[test]
    fn visit_numbers_are_sequential_per_patient() {
        let c = small();
        let mut last: std::collections::HashMap<i64, i64> = Default::default();
        for r in c.attendances.rows() {
            let pid = r[0].as_i64().unwrap();
            let vno = r[1].as_i64().unwrap();
            let prev = last.insert(pid, vno).unwrap_or(0);
            assert_eq!(vno, prev + 1, "patient {pid} visit numbering");
        }
    }

    #[test]
    fn visit_dates_increase_per_patient() {
        let c = small();
        let schema = c.attendances.schema();
        let di = schema.index_of("TestDate").unwrap();
        let mut last: std::collections::HashMap<i64, clinical_types::Date> = Default::default();
        for r in c.attendances.rows() {
            let pid = r[0].as_i64().unwrap();
            let d = r[di].as_date().unwrap();
            if let Some(prev) = last.insert(pid, d) {
                assert!(d > prev, "visits of patient {pid} out of order");
            }
        }
    }

    #[test]
    fn ages_are_plausible() {
        let c = small();
        for v in c.attendances.column("Age").unwrap() {
            let age = v.as_i64().unwrap();
            assert!((20..=100).contains(&age), "age {age}");
        }
    }

    #[test]
    fn phases_never_regress() {
        let c = small();
        let schema = c.attendances.schema();
        let si = schema.index_of("DiabetesStatus").unwrap();
        let mut seen: std::collections::HashMap<i64, bool> = Default::default();
        for r in c.attendances.rows() {
            let pid = r[0].as_i64().unwrap();
            let diabetic = r[si].as_str() == Some("yes");
            let was = seen.entry(pid).or_insert(false);
            if *was {
                assert!(diabetic, "patient {pid} regressed from diabetic");
            }
            *was = *was || diabetic;
        }
    }

    #[test]
    fn missing_values_present_but_bounded() {
        let c = small();
        let total = c.n_attendances() * c.attendances.schema().len();
        let nulls: usize = c
            .attendances
            .rows()
            .iter()
            .map(|r| r.values().iter().filter(|v| v.is_null()).count())
            .sum();
        let frac = nulls as f64 / total as f64;
        assert!(frac > 0.01 && frac < 0.25, "null fraction {frac}");
    }

    #[test]
    fn handgrip_missing_more_for_elderly() {
        let c = generate(&CohortConfig::default());
        let schema = c.attendances.schema();
        let ai = schema.index_of("Age").unwrap();
        let hi = schema.index_of("EwingHandGrip").unwrap();
        let (mut old_n, mut old_miss, mut young_n, mut young_miss) = (0u32, 0u32, 0u32, 0u32);
        for r in c.attendances.rows() {
            let age = r[ai].as_i64().unwrap();
            let missing = r[hi].is_null();
            if age > 70 {
                old_n += 1;
                old_miss += u32::from(missing);
            } else {
                young_n += 1;
                young_miss += u32::from(missing);
            }
        }
        let old_rate = f64::from(old_miss) / f64::from(old_n.max(1));
        let young_rate = f64::from(young_miss) / f64::from(young_n.max(1));
        assert!(
            old_rate > young_rate + 0.2,
            "elderly hand-grip missing {old_rate:.2} vs young {young_rate:.2}"
        );
    }

    #[test]
    fn medicated_diabetics_sit_in_mid_fbg_range() {
        let c = generate(&CohortConfig::default());
        let schema = c.attendances.schema();
        let fi = schema.index_of("FBG").unwrap();
        let si = schema.index_of("DiabetesStatus").unwrap();
        let mi = schema.index_of("OnGlucoseMedication").unwrap();
        let mut mid = 0u32;
        let mut n = 0u32;
        for r in c.attendances.rows() {
            if r[si].as_str() == Some("yes") && r[mi].as_bool() == Some(true) {
                if let Some(f) = r[fi].as_f64() {
                    if f > 0.0 && f < 50.0 {
                        n += 1;
                        if (5.5..7.0).contains(&f) {
                            mid += 1;
                        }
                    }
                }
            }
        }
        assert!(n > 50, "too few medicated diabetic visits: {n}");
        assert!(
            f64::from(mid) / f64::from(n) > 0.4,
            "only {mid}/{n} medicated diabetics in the 5.5–7 mid-range"
        );
    }

    #[test]
    fn erroneous_values_injected_at_low_rate() {
        let c = generate(&CohortConfig::default());
        // Negative FBG is impossible; some should exist pre-cleaning.
        let negatives = c
            .attendances
            .column("FBG")
            .unwrap()
            .filter_map(Value::as_f64)
            .filter(|f| *f < 0.0)
            .count();
        assert!(negatives > 0, "error injection produced no negative FBG");
        assert!(
            (negatives as f64) < 0.02 * c.n_attendances() as f64,
            "too many corrupted FBG values"
        );
    }

    #[test]
    fn diabetes_probability_encodes_fig5_shape() {
        // Males dominate at 72…
        assert!(
            diabetes_probability(72.0, Gender::Male)
                > diabetes_probability(72.0, Gender::Female) * 1.2
        );
        // …females dominate at 76…
        assert!(
            diabetes_probability(76.0, Gender::Female)
                > diabetes_probability(76.0, Gender::Male) * 1.2
        );
        // …and the female rate collapses past 78.
        assert!(
            diabetes_probability(80.0, Gender::Female)
                < diabetes_probability(76.0, Gender::Female) * 0.6
        );
    }

    #[test]
    fn ht_band_weights_dip_in_the_seventies() {
        let dip = ht_years_band_weights(74.0)[2];
        let normal = ht_years_band_weights(65.0)[2];
        assert!(dip < normal * 0.5);
    }
}
