//! Patient-level latent state.

use clinical_types::Date;
use std::fmt;

/// Biological sex as recorded by the screening programme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gender {
    /// Female participant.
    Female,
    /// Male participant.
    Male,
}

impl Gender {
    /// Single-letter code used in the attendance table (`"F"` / `"M"`).
    pub fn code(&self) -> &'static str {
        match self {
            Gender::Female => "F",
            Gender::Male => "M",
        }
    }
}

impl fmt::Display for Gender {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Glycaemic phase of a patient at a point in time.
///
/// This is the latent disease state behind the fasting-blood-glucose
/// measurements; the prediction component (§IV "Prediction") learns
/// the transition structure from the observed visits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DiseasePhase {
    /// Normoglycaemic.
    Normal,
    /// Impaired fasting glucose ("preDiabetic" in Table I's FBG scheme).
    PreDiabetic,
    /// Diabetic.
    Diabetic,
}

impl DiseasePhase {
    /// Stable label used in tables and as a classification target.
    pub fn label(&self) -> &'static str {
        match self {
            DiseasePhase::Normal => "Normal",
            DiseasePhase::PreDiabetic => "PreDiabetic",
            DiseasePhase::Diabetic => "Diabetic",
        }
    }

    /// All phases in progression order.
    pub fn all() -> [DiseasePhase; 3] {
        [
            DiseasePhase::Normal,
            DiseasePhase::PreDiabetic,
            DiseasePhase::Diabetic,
        ]
    }
}

impl fmt::Display for DiseasePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Latent, per-patient ground truth.
///
/// These fields drive every generated measurement; none of them except
/// the demographics are exposed to the pipeline directly, so rediscovering
/// them (e.g. the neuropathy → diabetes link) is a genuine mining task.
#[derive(Debug, Clone)]
pub struct Patient {
    /// Stable identifier, 1-based.
    pub id: u32,
    /// Biological sex.
    pub gender: Gender,
    /// Date of birth.
    pub birth_date: Date,
    /// Date of the patient's first screening attendance; anchors ages
    /// and diagnosis-year arithmetic for the whole visit sequence.
    pub entry_date: Date,
    /// Family history of diabetes (first-degree relative).
    pub family_history_diabetes: bool,
    /// Family history of cardiovascular disease.
    pub family_history_cvd: bool,
    /// Years of formal education (socio-economic covariate).
    pub education_years: u8,
    /// Smoker at entry.
    pub smoker: bool,
    /// Glycaemic phase at programme entry.
    pub entry_phase: DiseasePhase,
    /// Per-visit annual probability of progressing one phase.
    pub progression_rate: f64,
    /// Latent pre-clinical autonomic/peripheral neuropathy: drives
    /// absent reflexes *and* elevated diabetes risk (the §V insight).
    pub subclinical_neuropathy: bool,
    /// Hypertensive at any point during the programme.
    pub hypertensive: bool,
    /// Year hypertension was first diagnosed (if hypertensive).
    pub ht_diagnosis_year: Option<i32>,
    /// Baseline body-mass index.
    pub bmi_baseline: f64,
    /// On glucose-lowering medication from entry.
    pub on_medication: bool,
    /// Weekly exercise sessions (0–7), a protective covariate.
    pub exercise_level: u8,
}

impl Patient {
    /// Patient's age in whole years on `date`.
    pub fn age_on(&self, date: Date) -> i32 {
        date.years_since(self.birth_date)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gender_codes() {
        assert_eq!(Gender::Female.code(), "F");
        assert_eq!(Gender::Male.to_string(), "M");
    }

    #[test]
    fn phase_order_reflects_progression() {
        assert!(DiseasePhase::Normal < DiseasePhase::PreDiabetic);
        assert!(DiseasePhase::PreDiabetic < DiseasePhase::Diabetic);
        assert_eq!(DiseasePhase::all().len(), 3);
    }

    #[test]
    fn age_on_uses_calendar_years() {
        let p = Patient {
            id: 1,
            gender: Gender::Female,
            birth_date: Date::new(1950, 7, 1).unwrap(),
            entry_date: Date::new(2005, 3, 10).unwrap(),
            family_history_diabetes: false,
            family_history_cvd: false,
            education_years: 12,
            smoker: false,
            entry_phase: DiseasePhase::Normal,
            progression_rate: 0.05,
            subclinical_neuropathy: false,
            hypertensive: false,
            ht_diagnosis_year: None,
            bmi_baseline: 26.0,
            on_medication: false,
            exercise_level: 3,
        };
        assert_eq!(p.age_on(Date::new(2010, 6, 30).unwrap()), 59);
        assert_eq!(p.age_on(Date::new(2010, 7, 1).unwrap()), 60);
    }
}
