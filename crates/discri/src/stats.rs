//! Cohort summary statistics.
//!
//! Small, dependency-free descriptive statistics over the wide
//! attendance table. These are used by tests (to assert the embedded
//! Fig. 5 / Fig. 6 shapes actually hold in generated data) and by the
//! examples to print cohort overviews.

use crate::generator::Cohort;
use clinical_types::{Result, Value};
use std::collections::BTreeMap;

/// Descriptive statistics over a generated cohort.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortStats {
    /// Number of distinct patients that appear in the attendance table.
    pub n_patients: usize,
    /// Number of attendances.
    pub n_attendances: usize,
    /// Attendances by gender code.
    pub by_gender: BTreeMap<String, usize>,
    /// Count of attendances with `DiabetesStatus = yes` keyed by
    /// `(five-year age bucket start, gender code)`.
    pub diabetic_by_age5_gender: BTreeMap<(i64, String), usize>,
    /// Fraction of cells that are NULL.
    pub null_fraction: f64,
}

impl CohortStats {
    /// Compute statistics from a cohort.
    pub fn from_cohort(cohort: &Cohort) -> Result<Self> {
        let t = &cohort.attendances;
        let schema = t.schema();
        let pid = schema.index_of("PatientId")?;
        let age_i = schema.index_of("Age")?;
        let gender_i = schema.index_of("Gender")?;
        let status_i = schema.index_of("DiabetesStatus")?;

        let mut patients = std::collections::HashSet::new();
        let mut by_gender: BTreeMap<String, usize> = BTreeMap::new();
        let mut diabetic: BTreeMap<(i64, String), usize> = BTreeMap::new();
        let mut nulls = 0usize;
        for r in t.rows() {
            patients.insert(r[pid].as_i64().unwrap_or(-1));
            nulls += r.values().iter().filter(|v| v.is_null()).count();
            let gender = r[gender_i].as_str().unwrap_or("?").to_string();
            *by_gender.entry(gender.clone()).or_insert(0) += 1;
            if r[status_i].as_str() == Some("yes") {
                if let Some(age) = r[age_i].as_i64() {
                    let bucket = (age / 5) * 5;
                    *diabetic.entry((bucket, gender)).or_insert(0) += 1;
                }
            }
        }
        let total_cells = t.len() * schema.len();
        Ok(CohortStats {
            n_patients: patients.len(),
            n_attendances: t.len(),
            by_gender,
            diabetic_by_age5_gender: diabetic,
            null_fraction: if total_cells == 0 {
                0.0
            } else {
                nulls as f64 / total_cells as f64
            },
        })
    }

    /// Diabetic attendance count for a five-year bucket and gender.
    pub fn diabetic(&self, bucket: i64, gender: &str) -> usize {
        self.diabetic_by_age5_gender
            .get(&(bucket, gender.to_string()))
            .copied()
            .unwrap_or(0)
    }
}

/// Mean of a numeric column, ignoring nulls and non-numeric cells.
pub fn column_mean(cohort: &Cohort, name: &str) -> Result<Option<f64>> {
    let vals: Vec<f64> = cohort
        .attendances
        .column(name)?
        .filter_map(Value::as_f64)
        .collect();
    if vals.is_empty() {
        return Ok(None);
    }
    Ok(Some(vals.iter().sum::<f64>() / vals.len() as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CohortConfig;
    use crate::generator::generate;

    #[test]
    fn stats_cover_the_whole_cohort() {
        let c = generate(&CohortConfig::small(3));
        let s = CohortStats::from_cohort(&c).unwrap();
        assert_eq!(s.n_attendances, c.n_attendances());
        assert!(s.n_patients <= c.patients.len());
        assert!(s.n_patients > 0);
        let gender_total: usize = s.by_gender.values().sum();
        assert_eq!(gender_total, s.n_attendances);
    }

    #[test]
    fn fig5_shape_holds_at_default_scale() {
        // The headline reproduction check: the generated cohort must
        // exhibit the Fig. 5 gender crossover in the 70–80 decade.
        let c = generate(&CohortConfig::default());
        let s = CohortStats::from_cohort(&c).unwrap();
        let m_7075 = s.diabetic(70, "M");
        let f_7075 = s.diabetic(70, "F");
        let m_7580 = s.diabetic(75, "M");
        let f_7580 = s.diabetic(75, "F");
        assert!(
            m_7075 > f_7075,
            "males should dominate 70–75: M={m_7075} F={f_7075}"
        );
        assert!(
            f_7580 > m_7580,
            "females should dominate 75–80: F={f_7580} M={m_7580}"
        );
        // Female proportion collapses past 80 (the >78 drop).
        let f_80plus: usize = s
            .diabetic_by_age5_gender
            .iter()
            .filter(|((b, g), _)| *b >= 80 && g == "F")
            .map(|(_, n)| n)
            .sum();
        let m_80plus: usize = s
            .diabetic_by_age5_gender
            .iter()
            .filter(|((b, g), _)| *b >= 80 && g == "M")
            .map(|(_, n)| n)
            .sum();
        assert!(
            f_80plus < m_80plus,
            "female diabetics should fall behind males past 80: F={f_80plus} M={m_80plus}"
        );
    }

    #[test]
    fn fbg_mean_is_clinical() {
        let c = generate(&CohortConfig::small(5));
        let mean = column_mean(&c, "FBG").unwrap().unwrap();
        assert!(
            (4.0..8.0).contains(&mean),
            "cohort FBG mean {mean} outside clinical range"
        );
    }
}
