//! Cohort generation parameters.

/// Parameters for synthetic cohort generation.
///
/// The defaults reproduce the scale the paper reports for DiScRi:
/// ~900 patients, ~2500 attendances over ten years (2002–2012),
/// 273 attributes per attendance.
#[derive(Debug, Clone)]
pub struct CohortConfig {
    /// RNG seed — every run with the same seed produces the same cohort.
    pub seed: u64,
    /// Number of distinct patients.
    pub n_patients: usize,
    /// Expected attendances per patient (geometric-ish, min 1).
    pub mean_visits: f64,
    /// Maximum attendances for any single patient.
    pub max_visits: usize,
    /// First year of the screening programme.
    pub start_year: i32,
    /// Last year of the screening programme.
    pub end_year: i32,
    /// Probability that any individual nullable measurement is missing.
    /// Attribute-specific multipliers apply on top of this base rate.
    pub missing_rate: f64,
    /// Probability that a recorded numeric value is erroneous
    /// (impossible magnitude / wrong sign), exercising ETL cleaning.
    pub error_rate: f64,
}

impl Default for CohortConfig {
    fn default() -> Self {
        CohortConfig {
            // Chosen so the default-scale cohort realises the paper's
            // Fig. 4/5/6 shapes (which hold in expectation) with a
            // comfortable margin under this PRNG.
            seed: 180,
            n_patients: 900,
            mean_visits: 2.8,
            max_visits: 10,
            start_year: 2002,
            end_year: 2012,
            missing_rate: 0.06,
            error_rate: 0.004,
        }
    }
}

impl CohortConfig {
    /// A small cohort for fast unit tests.
    pub fn small(seed: u64) -> Self {
        CohortConfig {
            seed,
            n_patients: 120,
            mean_visits: 2.2,
            ..CohortConfig::default()
        }
    }

    /// Scale the cohort to roughly `n` attendances (used by the
    /// scaling benchmarks). Patient count is derived from the mean
    /// visit rate.
    pub fn scaled_to_visits(seed: u64, n: usize) -> Self {
        let base = CohortConfig::default();
        let patients = ((n as f64) / base.mean_visits).ceil().max(1.0) as usize;
        CohortConfig {
            seed,
            n_patients: patients,
            ..base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_scale() {
        let c = CohortConfig::default();
        assert_eq!(c.n_patients, 900);
        assert_eq!(c.end_year - c.start_year, 10);
        // 900 × 2.8 ≈ 2520 expected attendances ≈ the paper's "over 2500".
        assert!((c.n_patients as f64 * c.mean_visits - 2500.0).abs() < 100.0);
    }

    #[test]
    fn scaled_to_visits_derives_patient_count() {
        let c = CohortConfig::scaled_to_visits(1, 28_000);
        assert_eq!(c.n_patients, 10_000);
    }
}
