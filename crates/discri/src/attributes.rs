//! The 273-attribute catalogue of the synthetic DiScRi cohort.
//!
//! The paper reports "data on 273 attributes" per attendance. We model
//! the clinically load-bearing attributes explicitly (identity,
//! demographics, medical conditions, fasting bloods, limb health,
//! exercise, blood pressure, ECG / Ewing battery, anthropometry) and
//! fill the remainder with a generated biomarker panel — the paper
//! itself lists "pro-inflammatory markers, oxidative stress markers"
//! among the attribute families, which is exactly what wide screening
//! panels look like. The catalogue is the single source of truth for
//! the attendance-table schema: every generated row has one value per
//! catalogue entry, in catalogue order.

use clinical_types::{DataType, FieldDef, Schema};

/// Total number of attributes per attendance, as reported by the paper.
pub const TOTAL_ATTRIBUTES: usize = 273;

/// Dimension affinity of an attribute — mirrors the dimensions of the
/// paper's Fig. 3 dimensional model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttributeGroup {
    /// Identity / visit bookkeeping (fact keys + cardinality dimension).
    Identity,
    /// Personal information dimension (stable per patient).
    PersonalInformation,
    /// Medical condition dimension.
    MedicalCondition,
    /// Fasting bloods dimension (includes the biomarker panels).
    FastingBloods,
    /// Limb health dimension.
    LimbHealth,
    /// Exercise routine dimension.
    ExerciseRoutine,
    /// Blood pressure dimension.
    BloodPressure,
    /// ECG dimension (includes the Ewing battery).
    Ecg,
    /// Anthropometry — numeric measures that live on the fact table.
    Anthropometry,
}

impl AttributeGroup {
    /// Human-readable dimension name as used in Fig. 3.
    pub fn dimension_name(&self) -> &'static str {
        match self {
            AttributeGroup::Identity => "Cardinality",
            AttributeGroup::PersonalInformation => "Personal Information",
            AttributeGroup::MedicalCondition => "Medical Condition",
            AttributeGroup::FastingBloods => "Fasting Bloods",
            AttributeGroup::LimbHealth => "Limb Health",
            AttributeGroup::ExerciseRoutine => "Exercise Routine",
            AttributeGroup::BloodPressure => "Blood Pressure",
            AttributeGroup::Ecg => "ECG",
            AttributeGroup::Anthropometry => "Medical Measures",
        }
    }
}

/// One attribute of the attendance table.
#[derive(Debug, Clone)]
pub struct AttributeSpec {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// Dimension affinity.
    pub group: AttributeGroup,
    /// Whether the measurement may be missing.
    pub nullable: bool,
    /// Multiplier on the cohort base missing rate (e.g. the Ewing
    /// hand-grip test is frequently not attempted for elderly
    /// participants, per §V of the paper).
    pub missing_multiplier: f64,
}

impl AttributeSpec {
    fn new(
        name: &str,
        dtype: DataType,
        group: AttributeGroup,
        nullable: bool,
        missing_multiplier: f64,
    ) -> Self {
        AttributeSpec {
            name: name.to_string(),
            dtype,
            group,
            nullable,
            missing_multiplier,
        }
    }
}

/// Names of the explicitly modelled (non-panel) attributes, with types
/// and dimension affinities. Order defines column order.
fn core_attributes() -> Vec<AttributeSpec> {
    use AttributeGroup::*;
    use DataType::*;
    let a = AttributeSpec::new;
    vec![
        // Identity / cardinality.
        a("PatientId", Int, Identity, false, 0.0),
        a("VisitNo", Int, Identity, false, 0.0),
        a("TestDate", Date, Identity, false, 0.0),
        // Personal information.
        a("Gender", Text, PersonalInformation, false, 0.0),
        a("Age", Int, PersonalInformation, false, 0.0),
        a(
            "FamilyHistoryDiabetes",
            Bool,
            PersonalInformation,
            true,
            0.3,
        ),
        a("FamilyHistoryCVD", Bool, PersonalInformation, true, 0.3),
        a("EducationYears", Int, PersonalInformation, true, 0.5),
        a("Smoker", Bool, PersonalInformation, true, 0.3),
        // Medical condition.
        a("DiabetesStatus", Text, MedicalCondition, true, 0.1),
        a("DiabetesDurationYears", Float, MedicalCondition, true, 1.0),
        a("HypertensionStatus", Text, MedicalCondition, true, 0.1),
        a("DiagnosticHTYears", Float, MedicalCondition, true, 0.5),
        a("OnGlucoseMedication", Bool, MedicalCondition, true, 0.5),
        a("MedicationCount", Int, MedicalCondition, true, 0.5),
        // Fasting bloods.
        a("FBG", Float, FastingBloods, true, 1.0),
        a("HbA1c", Float, FastingBloods, true, 1.3),
        a("TotalCholesterol", Float, FastingBloods, true, 1.0),
        a("HDL", Float, FastingBloods, true, 1.0),
        a("LDL", Float, FastingBloods, true, 1.1),
        a("Triglycerides", Float, FastingBloods, true, 1.0),
        a("Creatinine", Float, FastingBloods, true, 1.0),
        a("EGFR", Float, FastingBloods, true, 1.0),
        a("Urea", Float, FastingBloods, true, 1.2),
        a("UricAcid", Float, FastingBloods, true, 1.2),
        a("CRP", Float, FastingBloods, true, 1.5),
        // Limb health.
        a("KneeReflexRight", Text, LimbHealth, true, 1.0),
        a("KneeReflexLeft", Text, LimbHealth, true, 1.0),
        a("AnkleReflexRight", Text, LimbHealth, true, 1.0),
        a("AnkleReflexLeft", Text, LimbHealth, true, 1.0),
        a("MonofilamentScore", Int, LimbHealth, true, 1.2),
        a("VibrationPerception", Float, LimbHealth, true, 1.2),
        a("FootPulses", Text, LimbHealth, true, 1.0),
        a("AnkleBrachialIndex", Float, LimbHealth, true, 1.5),
        // Exercise routine.
        a("ExerciseSessionsPerWeek", Int, ExerciseRoutine, true, 0.8),
        a("ExerciseMinutesPerWeek", Float, ExerciseRoutine, true, 1.0),
        a("ActivityType", Text, ExerciseRoutine, true, 1.0),
        a("SedentaryHoursPerDay", Float, ExerciseRoutine, true, 1.2),
        // Blood pressure.
        a("LyingSBPAverage", Float, BloodPressure, true, 0.8),
        a("LyingDBPAverage", Float, BloodPressure, true, 0.8),
        a("StandingSBP", Float, BloodPressure, true, 1.0),
        a("StandingDBP", Float, BloodPressure, true, 1.0),
        a("RestingHeartRate", Float, BloodPressure, true, 0.8),
        a("OrthostaticSBPDrop", Float, BloodPressure, true, 1.2),
        // ECG and Ewing battery.
        a("QRSDuration", Float, Ecg, true, 1.0),
        a("QTInterval", Float, Ecg, true, 1.0),
        a("QTc", Float, Ecg, true, 1.0),
        a("PRInterval", Float, Ecg, true, 1.0),
        a("SDNN", Float, Ecg, true, 1.3),
        a("EwingHRRatio3015", Float, Ecg, true, 1.5),
        a("EwingValsalvaRatio", Float, Ecg, true, 1.8),
        // The hand-grip test is often impossible for elderly
        // participants (arthritis) — very high missing multiplier,
        // further scaled with age by the generator.
        a("EwingHandGrip", Float, Ecg, true, 3.0),
        a("EwingDeepBreathingHRV", Float, Ecg, true, 1.5),
        // Anthropometry.
        a("BMI", Float, Anthropometry, true, 0.6),
        a("WeightKg", Float, Anthropometry, true, 0.6),
        a("HeightCm", Float, Anthropometry, true, 0.6),
        a("WaistCm", Float, Anthropometry, true, 1.0),
        a("HipCm", Float, Anthropometry, true, 1.0),
        a("WaistHipRatio", Float, Anthropometry, true, 1.0),
    ]
}

/// Number of biomarkers in each generated panel.
const INFLAMMATORY_PANEL: [&str; 8] = [
    "IL6",
    "IL1B",
    "IL10",
    "TNFa",
    "IFNg",
    "MCP1",
    "VEGF",
    "Fibrinogen",
];
const OXIDATIVE_PANEL: [&str; 6] = ["MDA", "8OHdG", "GSH", "SOD", "CAT", "TAC"];

/// Full 273-attribute catalogue: core attributes, the named biomarker
/// panels, then numbered panel attributes up to [`TOTAL_ATTRIBUTES`].
pub fn attribute_catalogue() -> Vec<AttributeSpec> {
    let mut cat = core_attributes();
    for name in INFLAMMATORY_PANEL {
        cat.push(AttributeSpec::new(
            &format!("Inflam_{name}"),
            DataType::Float,
            AttributeGroup::FastingBloods,
            true,
            1.5,
        ));
    }
    for name in OXIDATIVE_PANEL {
        cat.push(AttributeSpec::new(
            &format!("OxStress_{name}"),
            DataType::Float,
            AttributeGroup::FastingBloods,
            true,
            1.5,
        ));
    }
    let filler = TOTAL_ATTRIBUTES - cat.len();
    for i in 0..filler {
        cat.push(AttributeSpec::new(
            &format!("Biomarker_{:03}", i + 1),
            DataType::Float,
            AttributeGroup::FastingBloods,
            true,
            1.4,
        ));
    }
    debug_assert_eq!(cat.len(), TOTAL_ATTRIBUTES);
    cat
}

/// Schema of the wide attendance table, in catalogue order.
pub fn cohort_schema() -> Schema {
    let fields = attribute_catalogue()
        .into_iter()
        .map(|a| FieldDef {
            name: a.name,
            dtype: a.dtype,
            nullable: a.nullable,
        })
        .collect();
    Schema::new(fields).expect("catalogue has unique attribute names")
}

/// Index of the first generated (panel) attribute within the catalogue.
pub fn first_panel_index() -> usize {
    core_attributes().len()
}

/// Render the attribute catalogue as a data dictionary — the document
/// a screening programme publishes alongside its export so downstream
/// users know what each of the 273 columns means.
pub fn data_dictionary() -> String {
    let mut out = String::from("# DiScRi synthetic cohort — data dictionary\n\n");
    out.push_str("| # | Attribute | Type | Dimension | Nullable |\n");
    out.push_str("|---|---|---|---|---|\n");
    for (i, a) in attribute_catalogue().iter().enumerate() {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            i + 1,
            a.name,
            a.dtype,
            a.group.dimension_name(),
            if a.nullable { "yes" } else { "no" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalogue_has_exactly_273_attributes() {
        assert_eq!(attribute_catalogue().len(), TOTAL_ATTRIBUTES);
    }

    #[test]
    fn names_are_unique() {
        let cat = attribute_catalogue();
        let names: HashSet<&str> = cat.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names.len(), cat.len());
    }

    #[test]
    fn schema_matches_catalogue_order() {
        let cat = attribute_catalogue();
        let schema = cohort_schema();
        assert_eq!(schema.len(), TOTAL_ATTRIBUTES);
        for (spec, field) in cat.iter().zip(schema.fields()) {
            assert_eq!(spec.name, field.name);
            assert_eq!(spec.dtype, field.dtype);
        }
    }

    #[test]
    fn table_one_attributes_are_present() {
        // The attributes of the paper's Table I must exist.
        let schema = cohort_schema();
        for name in ["Age", "DiagnosticHTYears", "FBG", "LyingDBPAverage"] {
            assert!(schema.contains(name), "missing Table I attribute {name}");
        }
    }

    #[test]
    fn every_fig3_dimension_is_covered() {
        use AttributeGroup::*;
        let cat = attribute_catalogue();
        for g in [
            Identity,
            PersonalInformation,
            MedicalCondition,
            FastingBloods,
            LimbHealth,
            ExerciseRoutine,
            BloodPressure,
            Ecg,
            Anthropometry,
        ] {
            assert!(
                cat.iter().any(|a| a.group == g),
                "no attribute in group {g:?}"
            );
        }
    }

    #[test]
    fn data_dictionary_lists_all_attributes() {
        let dict = data_dictionary();
        // One markdown row per attribute, plus the header row (the
        // `|---|` separator doesn't match the `| ` prefix).
        let rows = dict.lines().filter(|l| l.starts_with("| ")).count();
        assert_eq!(rows, TOTAL_ATTRIBUTES + 1);
        assert!(dict.contains("| FBG | Float | Fasting Bloods | yes |"));
        assert!(dict.contains("| PatientId | Int | Cardinality | no |"));
    }

    #[test]
    fn identity_attributes_are_required() {
        let cat = attribute_catalogue();
        for a in cat.iter().filter(|a| a.group == AttributeGroup::Identity) {
            assert!(!a.nullable, "{} must be required", a.name);
        }
    }
}
