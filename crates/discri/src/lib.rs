#![warn(missing_docs)]

//! Synthetic DiScRi cohort generator.
//!
//! The paper's trial (Section V) runs over the Diabetes Screening
//! Complications Research Initiative (DiScRi) dataset: a regional
//! Australian screening programme with **273 attributes** recorded
//! over **~2500 attendances** of **~900 patients** across ten years.
//! That dataset is proprietary, so this crate generates a statistically
//! faithful synthetic stand-in (see DESIGN.md §2 for the substitution
//! argument). The generator is fully deterministic given a seed.
//!
//! The effects the paper reports are *built into* the generator so the
//! downstream DD-DGMS pipeline can rediscover them:
//!
//! * **Fig. 5 shape** — diabetes prevalence rises with age; males
//!   dominate the 70–75 sub-group, females the 75–80 sub-group, and the
//!   proportion of diabetic females drops substantially past 78.
//! * **Fig. 6 shape** — among hypertensives aged 70–80, the
//!   "5–10 years since diagnosis" band dips relative to neighbouring
//!   age groups.
//! * **§V insight (AWSum, ref [9])** — absent knee/ankle reflexes
//!   combined with a mid-range fasting blood glucose is strongly
//!   predictive of diabetes (latent pre-clinical neuropathy).
//! * **Time-course structure** — each patient follows a noisy
//!   monotone Normal → PreDiabetic → Diabetic phase trajectory across
//!   visits, giving the prediction component something to learn.
//!
//! The output is a wide [`clinical_types::Table`] (one row per
//! attendance, 273 columns) plus the typed [`Patient`] roster.

pub mod attributes;
pub mod config;
pub mod generator;
pub mod patient;
pub mod stats;

pub use attributes::{
    attribute_catalogue, cohort_schema, data_dictionary, AttributeGroup, AttributeSpec,
};
pub use config::CohortConfig;
pub use generator::{generate, Cohort};
pub use patient::{DiseasePhase, Gender, Patient};
pub use stats::CohortStats;
