//! Shared backend conformance suite.
//!
//! Every [`SegmentBackend`] implementation must pass [`run`] — the
//! in-tree backends do so from their unit tests, and an out-of-tree
//! backend can call it from its own tests to prove it honours the same
//! contract. Checks return `Err(String)` rather than panicking so the
//! suite itself stays free of panics (this crate is covered by the
//! repo-lint no-panic rule) and so a failure names the violated
//! clause.

use crate::backend::SegmentBackend;
use crate::segment::{ColumnSet, Segment};
use clinical_types::Value;

fn ensure(cond: bool, clause: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(format!("conformance violation: {clause}"))
    }
}

/// A small, fully populated segment fixture (two key columns, one
/// measure with a null, one degenerate column) used by the suite and
/// handy for backend unit tests.
pub fn sample_segment(id: u64) -> Segment {
    let assembled = Segment::assemble(
        id,
        vec![
            ("Visit".into(), vec![0, 0, 1, 1]),
            ("Personal".into(), vec![3, 4, 3, 5]),
        ],
        vec![(
            "FBG".into(),
            vec![5.5, 0.0, 7.25, 6.0],
            vec![true, false, true, true],
        )],
        vec![(
            "PatientId".into(),
            vec![
                Value::Int(1),
                Value::Int(2),
                Value::Int(1),
                Value::Text("x".into()),
            ],
        )],
    );
    match assembled {
        Ok(seg) => seg,
        // Unreachable: the fixture's columns are equal-length by
        // construction. Return an empty segment rather than panicking.
        Err(_) => Segment {
            meta: crate::segment::SegmentMeta {
                id,
                rows: 0,
                key_zones: vec![],
                measure_zones: vec![],
                degenerate_columns: vec![],
            },
            keys: vec![],
            measures: vec![],
            degenerates: vec![],
        },
    }
}

/// Run the full conformance suite against an empty backend. The
/// backend is left holding one segment (id 2) on success; callers own
/// cleanup of any underlying storage.
pub fn run<B: SegmentBackend + ?Sized>(backend: &B) -> Result<(), String> {
    ensure(!backend.kind().is_empty(), "kind() must be non-empty")?;
    let empty_list = backend.list().map_err(|e| e.to_string())?;
    ensure(empty_list.is_empty(), "fresh backend lists no segments")?;
    let empty_metas = backend.metas().map_err(|e| e.to_string())?;
    ensure(empty_metas.is_empty(), "fresh backend has no metas")?;

    let seg1 = sample_segment(1);
    let seg2 = sample_segment(2);
    backend
        .put(seg1.clone())
        .map_err(|e| format!("put segment 1: {e}"))?;
    backend
        .put(seg2)
        .map_err(|e| format!("put segment 2: {e}"))?;
    ensure(
        backend.put(sample_segment(1)).is_err(),
        "duplicate put must fail — segments are immutable",
    )?;

    let ids = backend.list().map_err(|e| e.to_string())?;
    ensure(ids == [1, 2], "list() returns sealed ids ascending")?;
    let metas = backend.metas().map_err(|e| e.to_string())?;
    let meta_ids: Vec<u64> = metas.iter().map(|m| m.id).collect();
    ensure(meta_ids == [1, 2], "metas() returns metas in id order")?;
    ensure(
        metas.first().map(|m| m == &seg1.meta) == Some(true),
        "metas() round-trips zone maps intact",
    )?;

    let full = backend
        .fetch(1, &ColumnSet::all())
        .map_err(|e| format!("fetch all columns: {e}"))?;
    ensure(
        *full == seg1,
        "fetch with ColumnSet::all() round-trips the segment",
    )?;

    let cols = ColumnSet::empty().with_key("Visit").with_measure("FBG");
    let partial = backend
        .fetch(1, &cols)
        .map_err(|e| format!("fetch column subset: {e}"))?;
    ensure(partial.meta == seg1.meta, "partial fetch keeps full meta")?;
    ensure(
        partial.key_column("Visit") == seg1.key_column("Visit"),
        "partial fetch materialises the requested key column",
    )?;
    ensure(
        partial.measure_column("FBG").map(|(v, _)| v) == seg1.measure_column("FBG").map(|(v, _)| v),
        "partial fetch materialises the requested measure column",
    )?;

    ensure(
        backend.fetch(99, &ColumnSet::all()).is_err(),
        "fetching an unknown id must fail",
    )?;
    backend
        .remove(1)
        .map_err(|e| format!("remove segment 1: {e}"))?;
    let ids = backend.list().map_err(|e| e.to_string())?;
    ensure(ids == [2], "removed segments disappear from list()")?;
    ensure(
        backend.remove(1).is_err(),
        "removing an unknown id must fail",
    )?;
    Ok(())
}
