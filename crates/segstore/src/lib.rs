//! Segmented columnar storage engine.
//!
//! The warehouse's fact table gains a second physical representation:
//! immutable, sorted columnar **segments** with per-segment per-column
//! zone maps, sitting behind the pluggable [`SegmentBackend`] trait.
//! A background compactor (in `warehouse`) folds the delta log into
//! fresh segments; the cube engine (in `olap`) scans segments in
//! parallel, consulting zone maps and the query footprint to skip
//! whole segments and columns.
//!
//! Layering, bottom-up:
//!
//! * [`zone`] — [`KeyZone`] / [`MeasureZone`] pruning summaries.
//! * [`segment`] — [`Segment`] / [`SegmentMeta`] / [`ColumnSet`].
//! * [`encode`] — CRC-framed byte format shared with the disk backend,
//!   mirroring the WAL v2 record framing.
//! * [`backend`] — the [`SegmentBackend`] trait plus
//!   [`MemoryBackend`] and [`DiskBackend`].
//! * [`conformance`] — the shared suite every backend must pass.

#![warn(missing_docs)]

pub mod backend;
pub mod conformance;
pub mod encode;
pub mod segment;
pub mod zone;

pub use backend::{DiskBackend, MemoryBackend, SegmentBackend};
pub use encode::{
    decode_segment, decode_segment_meta, encode_segment, SEGMENT_MAGIC, SEGMENT_VERSION,
};
pub use segment::{ColumnSet, KeyDictView, MeasureSlice, Segment, SegmentMeta, SegmentSlice};
pub use zone::{KeyZone, MeasureZone, DISTINCT_KEY_CAP};
