//! Immutable columnar segments.
//!
//! A [`Segment`] is a sealed, column-major copy of a contiguous batch
//! of fact rows: one surrogate-key column per dimension, null-aware
//! measure columns and inline degenerate columns. Its [`SegmentMeta`]
//! carries the per-column zone maps, so planners prune on metadata
//! alone and only fetch (and, for the disk backend, decode) the
//! segments and columns a query actually touches.

use crate::zone::{KeyZone, MeasureZone};
use clinical_types::{Error, Result, Value};
use std::collections::BTreeSet;

/// Metadata of one sealed segment: identity, row count and zone maps.
/// Small enough to keep resident for every segment; pruning never
/// touches the backend.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentMeta {
    /// Backend-unique segment id.
    pub id: u64,
    /// Number of rows sealed in the segment.
    pub rows: u64,
    /// One zone per dimension-key column, in column order.
    pub key_zones: Vec<KeyZone>,
    /// One zone per measure column, in column order.
    pub measure_zones: Vec<MeasureZone>,
    /// Names of the degenerate columns (no zones: arbitrary values).
    pub degenerate_columns: Vec<String>,
}

impl SegmentMeta {
    /// Zone of a dimension-key column.
    pub fn key_zone(&self, column: &str) -> Option<&KeyZone> {
        self.key_zones.iter().find(|z| z.column == column)
    }

    /// Zone of a measure column.
    pub fn measure_zone(&self, column: &str) -> Option<&MeasureZone> {
        self.measure_zones.iter().find(|z| z.column == column)
    }

    /// True when the segment carries a degenerate column `name`.
    pub fn has_degenerate(&self, name: &str) -> bool {
        self.degenerate_columns.iter().any(|c| c == name)
    }
}

/// A sealed columnar segment: metadata plus column data. Depending on
/// the [`crate::ColumnSet`] used at fetch time, only a subset of the
/// columns may be materialised — the meta always lists the full
/// schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Identity, row count and zone maps.
    pub meta: SegmentMeta,
    /// `(dimension name, surrogate keys)` columns.
    pub keys: Vec<(String, Vec<u32>)>,
    /// `(measure name, values, validity)` columns.
    pub measures: Vec<(String, Vec<f64>, Vec<bool>)>,
    /// `(name, values)` degenerate columns.
    pub degenerates: Vec<(String, Vec<Value>)>,
}

impl Segment {
    /// Seal a batch of columns into a segment, validating column
    /// lengths and computing the zone maps.
    pub fn assemble(
        id: u64,
        keys: Vec<(String, Vec<u32>)>,
        measures: Vec<(String, Vec<f64>, Vec<bool>)>,
        degenerates: Vec<(String, Vec<Value>)>,
    ) -> Result<Segment> {
        let rows = keys
            .first()
            .map(|(_, c)| c.len())
            .or_else(|| measures.first().map(|(_, v, _)| v.len()))
            .or_else(|| degenerates.first().map(|(_, v)| v.len()))
            .unwrap_or(0);
        for (name, col) in &keys {
            if col.len() != rows {
                return Err(column_length_error(name, col.len(), rows));
            }
        }
        for (name, values, valid) in &measures {
            if values.len() != rows || valid.len() != rows {
                return Err(column_length_error(name, values.len(), rows));
            }
        }
        for (name, col) in &degenerates {
            if col.len() != rows {
                return Err(column_length_error(name, col.len(), rows));
            }
        }
        let meta = SegmentMeta {
            id,
            rows: rows as u64,
            key_zones: keys
                .iter()
                .map(|(name, col)| KeyZone::from_keys(name.clone(), col))
                .collect(),
            measure_zones: measures
                .iter()
                .map(|(name, values, valid)| MeasureZone::from_values(name.clone(), values, valid))
                .collect(),
            degenerate_columns: degenerates.iter().map(|(n, _)| n.clone()).collect(),
        };
        Ok(Segment {
            meta,
            keys,
            measures,
            degenerates,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.meta.rows as usize
    }

    /// Materialised key column by dimension name.
    pub fn key_column(&self, name: &str) -> Option<&[u32]> {
        self.keys
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.as_slice())
    }

    /// Materialised measure column `(values, validity)` by name.
    pub fn measure_column(&self, name: &str) -> Option<(&[f64], &[bool])> {
        self.measures
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, v, ok)| (v.as_slice(), ok.as_slice()))
    }

    /// Materialised degenerate column by name.
    pub fn degenerate_column(&self, name: &str) -> Option<&[Value]> {
        self.degenerates
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.as_slice())
    }
}

fn column_length_error(name: &str, got: usize, want: usize) -> Error {
    Error::invalid(format!(
        "segment column `{name}` has {got} rows, expected {want}"
    ))
}

/// The set of columns a fetch must materialise. Backends may return a
/// superset (the in-memory backend always returns whole segments for
/// free); the disk backend decodes only what is requested, which is
/// how `analyze::QueryFootprint` column pruning reaches storage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnSet {
    everything: bool,
    keys: BTreeSet<String>,
    measures: BTreeSet<String>,
    degenerates: BTreeSet<String>,
}

impl ColumnSet {
    /// Every column in the segment.
    pub fn all() -> Self {
        ColumnSet {
            everything: true,
            ..ColumnSet::default()
        }
    }

    /// No data columns (metadata only).
    pub fn empty() -> Self {
        ColumnSet::default()
    }

    /// Request a dimension-key column.
    pub fn with_key(mut self, name: impl Into<String>) -> Self {
        self.keys.insert(name.into());
        self
    }

    /// Request a measure column.
    pub fn with_measure(mut self, name: impl Into<String>) -> Self {
        self.measures.insert(name.into());
        self
    }

    /// Request a degenerate column.
    pub fn with_degenerate(mut self, name: impl Into<String>) -> Self {
        self.degenerates.insert(name.into());
        self
    }

    /// True for [`ColumnSet::all`].
    pub fn wants_everything(&self) -> bool {
        self.everything
    }

    /// Is key column `name` requested?
    pub fn wants_key(&self, name: &str) -> bool {
        self.everything || self.keys.contains(name)
    }

    /// Is measure column `name` requested?
    pub fn wants_measure(&self, name: &str) -> bool {
        self.everything || self.measures.contains(name)
    }

    /// Is degenerate column `name` requested?
    pub fn wants_degenerate(&self, name: &str) -> bool {
        self.everything || self.degenerates.contains(name)
    }

    /// Requested key-column names (empty when `everything`).
    pub fn key_names(&self) -> impl Iterator<Item = &str> {
        self.keys.iter().map(String::as_str)
    }

    /// Requested measure-column names (empty when `everything`).
    pub fn measure_names(&self) -> impl Iterator<Item = &str> {
        self.measures.iter().map(String::as_str)
    }

    /// Requested degenerate-column names (empty when `everything`).
    pub fn degenerate_names(&self) -> impl Iterator<Item = &str> {
        self.degenerates.iter().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub fn sample_segment(id: u64) -> Segment {
        Segment::assemble(
            id,
            vec![
                ("Visit".into(), vec![0, 0, 1, 1]),
                ("Personal".into(), vec![3, 4, 3, 5]),
            ],
            vec![(
                "FBG".into(),
                vec![5.5, 0.0, 7.25, 6.0],
                vec![true, false, true, true],
            )],
            vec![(
                "PatientId".into(),
                vec![
                    Value::Int(1),
                    Value::Int(2),
                    Value::Int(1),
                    Value::Text("x".into()),
                ],
            )],
        )
        .unwrap()
    }

    #[test]
    fn assemble_computes_zones() {
        let seg = sample_segment(7);
        assert_eq!(seg.meta.id, 7);
        assert_eq!(seg.rows(), 4);
        let visit = seg.meta.key_zone("Visit").unwrap();
        assert_eq!((visit.min, visit.max), (0, 1));
        let fbg = seg.meta.measure_zone("FBG").unwrap();
        assert_eq!(fbg.range, Some((5.5, 7.25)));
        assert_eq!(fbg.null_count, 1);
        assert!(seg.meta.has_degenerate("PatientId"));
        assert!(!seg.meta.has_degenerate("Nope"));
    }

    #[test]
    fn assemble_rejects_ragged_columns() {
        let err = Segment::assemble(
            0,
            vec![("A".into(), vec![1, 2]), ("B".into(), vec![1])],
            vec![],
            vec![],
        )
        .unwrap_err();
        assert!(err.to_string().contains("`B`"));
    }

    #[test]
    fn column_lookup_by_name() {
        let seg = sample_segment(0);
        assert_eq!(seg.key_column("Personal").unwrap(), &[3, 4, 3, 5]);
        assert!(seg.key_column("Nope").is_none());
        let (values, valid) = seg.measure_column("FBG").unwrap();
        assert_eq!(values.len(), 4);
        assert!(!valid[1]);
        assert_eq!(seg.degenerate_column("PatientId").unwrap().len(), 4);
    }

    #[test]
    fn column_set_membership() {
        let all = ColumnSet::all();
        assert!(all.wants_key("anything") && all.wants_measure("x") && all.wants_degenerate("y"));
        let some = ColumnSet::empty().with_key("Visit").with_measure("FBG");
        assert!(some.wants_key("Visit"));
        assert!(!some.wants_key("Personal"));
        assert!(some.wants_measure("FBG"));
        assert!(!some.wants_degenerate("PatientId"));
    }
}
