//! Immutable columnar segments.
//!
//! A [`Segment`] is a sealed, column-major copy of a contiguous batch
//! of fact rows: one surrogate-key column per dimension, null-aware
//! measure columns and inline degenerate columns. Its [`SegmentMeta`]
//! carries the per-column zone maps, so planners prune on metadata
//! alone and only fetch (and, for the disk backend, decode) the
//! segments and columns a query actually touches.

use crate::zone::{KeyZone, MeasureZone};
use clinical_types::{Error, Result, Value};
use std::collections::BTreeSet;
use std::ops::Range;

/// Metadata of one sealed segment: identity, row count and zone maps.
/// Small enough to keep resident for every segment; pruning never
/// touches the backend.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentMeta {
    /// Backend-unique segment id.
    pub id: u64,
    /// Number of rows sealed in the segment.
    pub rows: u64,
    /// One zone per dimension-key column, in column order.
    pub key_zones: Vec<KeyZone>,
    /// One zone per measure column, in column order.
    pub measure_zones: Vec<MeasureZone>,
    /// Names of the degenerate columns (no zones: arbitrary values).
    pub degenerate_columns: Vec<String>,
}

impl SegmentMeta {
    /// Zone of a dimension-key column.
    pub fn key_zone(&self, column: &str) -> Option<&KeyZone> {
        self.key_zones.iter().find(|z| z.column == column)
    }

    /// Zone of a measure column.
    pub fn measure_zone(&self, column: &str) -> Option<&MeasureZone> {
        self.measure_zones.iter().find(|z| z.column == column)
    }

    /// True when the segment carries a degenerate column `name`.
    pub fn has_degenerate(&self, name: &str) -> bool {
        self.degenerate_columns.iter().any(|c| c == name)
    }

    /// Dictionary view of one dimension-key column: the surrogate-key
    /// domain evidence the zone map carries, packaged for kernel
    /// planners that size lookup tables or group-id spaces from it.
    pub fn key_dictionary(&self, column: &str) -> Option<KeyDictView<'_>> {
        self.key_zone(column).map(|zone| KeyDictView { zone })
    }
}

/// A read-only dictionary view over one sealed key column, derived
/// from its [`KeyZone`]: which surrogate keys the segment can contain,
/// and how large a dense lookup table over them must be.
///
/// ```
/// use segstore::Segment;
///
/// let seg = Segment::assemble(
///     1,
///     vec![("Visit".into(), vec![2, 5, 2, 9])],
///     vec![],
///     vec![],
/// )?;
/// let dict = seg.meta.key_dictionary("Visit").expect("sealed column");
/// assert_eq!(dict.domain(), 10); // keys fit 0..10
/// assert_eq!(dict.present().collect::<Vec<_>>(), vec![2, 5, 9]);
/// # Ok::<(), clinical_types::Error>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct KeyDictView<'a> {
    zone: &'a KeyZone,
}

impl KeyDictView<'_> {
    /// Exclusive upper bound of the surrogate-key domain: every key in
    /// the column is `< domain()`. 0 for an empty column.
    pub fn domain(&self) -> u32 {
        if self.zone.min > self.zone.max {
            0 // empty column sentinel (min = u32::MAX, max = 0)
        } else {
            self.zone.max.saturating_add(1)
        }
    }

    /// Smallest key present (`None` for an empty column).
    pub fn min_key(&self) -> Option<u32> {
        (self.zone.min <= self.zone.max).then_some(self.zone.min)
    }

    /// The distinct keys provably present, ascending. Exact when the
    /// zone kept its distinct set (at most
    /// [`crate::DISTINCT_KEY_CAP`] keys); otherwise every key of
    /// `min..=max` is yielded as a conservative superset.
    pub fn present(&self) -> impl Iterator<Item = u32> + '_ {
        let exact = self.zone.distinct.as_deref();
        let range = (exact.is_none() && self.zone.min <= self.zone.max)
            .then_some(self.zone.min..=self.zone.max);
        exact
            .map(|keys| keys.iter().copied())
            .into_iter()
            .flatten()
            .chain(range.into_iter().flatten())
    }

    /// True when [`KeyDictView::present`] is the exact distinct set
    /// rather than a min..=max superset.
    pub fn is_exact(&self) -> bool {
        self.zone.distinct.is_some()
    }
}

/// A sealed columnar segment: metadata plus column data. Depending on
/// the [`crate::ColumnSet`] used at fetch time, only a subset of the
/// columns may be materialised — the meta always lists the full
/// schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Identity, row count and zone maps.
    pub meta: SegmentMeta,
    /// `(dimension name, surrogate keys)` columns.
    pub keys: Vec<(String, Vec<u32>)>,
    /// `(measure name, values, validity)` columns.
    pub measures: Vec<(String, Vec<f64>, Vec<bool>)>,
    /// `(name, values)` degenerate columns.
    pub degenerates: Vec<(String, Vec<Value>)>,
}

impl Segment {
    /// Seal a batch of columns into a segment, validating column
    /// lengths and computing the zone maps.
    pub fn assemble(
        id: u64,
        keys: Vec<(String, Vec<u32>)>,
        measures: Vec<(String, Vec<f64>, Vec<bool>)>,
        degenerates: Vec<(String, Vec<Value>)>,
    ) -> Result<Segment> {
        let rows = keys
            .first()
            .map(|(_, c)| c.len())
            .or_else(|| measures.first().map(|(_, v, _)| v.len()))
            .or_else(|| degenerates.first().map(|(_, v)| v.len()))
            .unwrap_or(0);
        for (name, col) in &keys {
            if col.len() != rows {
                return Err(column_length_error(name, col.len(), rows));
            }
        }
        for (name, values, valid) in &measures {
            if values.len() != rows || valid.len() != rows {
                return Err(column_length_error(name, values.len(), rows));
            }
        }
        for (name, col) in &degenerates {
            if col.len() != rows {
                return Err(column_length_error(name, col.len(), rows));
            }
        }
        let meta = SegmentMeta {
            id,
            rows: rows as u64,
            key_zones: keys
                .iter()
                .map(|(name, col)| KeyZone::from_keys(name.clone(), col))
                .collect(),
            measure_zones: measures
                .iter()
                .map(|(name, values, valid)| MeasureZone::from_values(name.clone(), values, valid))
                .collect(),
            degenerate_columns: degenerates.iter().map(|(n, _)| n.clone()).collect(),
        };
        Ok(Segment {
            meta,
            keys,
            measures,
            degenerates,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.meta.rows as usize
    }

    /// Materialised key column by dimension name.
    pub fn key_column(&self, name: &str) -> Option<&[u32]> {
        self.keys
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.as_slice())
    }

    /// Materialised measure column `(values, validity)` by name.
    pub fn measure_column(&self, name: &str) -> Option<(&[f64], &[bool])> {
        self.measures
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, v, ok)| (v.as_slice(), ok.as_slice()))
    }

    /// Materialised degenerate column by name.
    pub fn degenerate_column(&self, name: &str) -> Option<&[Value]> {
        self.degenerates
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.as_slice())
    }

    /// Typed zero-copy view of a contiguous row range — the unit a
    /// morsel-driven scan hands to its kernels. Errors when `rows`
    /// exceeds the sealed row count.
    ///
    /// ```
    /// use segstore::Segment;
    ///
    /// let seg = Segment::assemble(
    ///     0,
    ///     vec![("Visit".into(), vec![0, 0, 1, 1])],
    ///     vec![("FBG".into(), vec![5.0, 6.0, 7.0, 8.0], vec![true; 4])],
    ///     vec![],
    /// )?;
    /// let slice = seg.slice(1..3)?;
    /// assert_eq!(slice.key_slice("Visit"), Some(&[0, 1][..]));
    /// assert_eq!(slice.measure_slice("FBG").expect("column").values, &[6.0, 7.0]);
    /// # Ok::<(), clinical_types::Error>(())
    /// ```
    pub fn slice(&self, rows: Range<usize>) -> Result<SegmentSlice<'_>> {
        if rows.start > rows.end || rows.end > self.rows() {
            return Err(Error::invalid(format!(
                "slice {}..{} out of bounds for a {}-row segment",
                rows.start,
                rows.end,
                self.rows()
            )));
        }
        Ok(SegmentSlice {
            segment: self,
            rows,
        })
    }

    /// [`Segment::slice`] over every sealed row.
    pub fn full_slice(&self) -> SegmentSlice<'_> {
        SegmentSlice {
            rows: 0..self.rows(),
            segment: self,
        }
    }
}

/// One measure column over a row range: parallel value and validity
/// slices (`values[i]` is meaningful only where `valid[i]`).
#[derive(Debug, Clone, Copy)]
pub struct MeasureSlice<'a> {
    /// Measure values (garbage where invalid).
    pub values: &'a [f64],
    /// Per-row validity.
    pub valid: &'a [bool],
}

/// A typed view of a contiguous row range of a [`Segment`]: dense
/// column slices resolved by name, all exactly `len()` rows long.
/// Vectorized kernels consume these instead of whole segments, so a
/// morsel scheduler can hand out sub-segment work items without
/// copying columns.
#[derive(Debug, Clone)]
pub struct SegmentSlice<'a> {
    segment: &'a Segment,
    rows: Range<usize>,
}

impl<'a> SegmentSlice<'a> {
    /// Rows in the view.
    pub fn len(&self) -> usize {
        self.rows.end - self.rows.start
    }

    /// True when the view covers no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The viewed row range within the segment.
    pub fn rows(&self) -> Range<usize> {
        self.rows.clone()
    }

    /// The segment this view borrows from.
    pub fn segment(&self) -> &'a Segment {
        self.segment
    }

    /// Dense surrogate-key slice of one dimension column.
    pub fn key_slice(&self, name: &str) -> Option<&'a [u32]> {
        self.segment
            .key_column(name)
            .and_then(|col| col.get(self.rows.clone()))
    }

    /// Value + validity slices of one measure column.
    pub fn measure_slice(&self, name: &str) -> Option<MeasureSlice<'a>> {
        let (values, valid) = self.segment.measure_column(name)?;
        Some(MeasureSlice {
            values: values.get(self.rows.clone())?,
            valid: valid.get(self.rows.clone())?,
        })
    }

    /// Slice of one degenerate column.
    pub fn degenerate_slice(&self, name: &str) -> Option<&'a [Value]> {
        self.segment
            .degenerate_column(name)
            .and_then(|col| col.get(self.rows.clone()))
    }
}

fn column_length_error(name: &str, got: usize, want: usize) -> Error {
    Error::invalid(format!(
        "segment column `{name}` has {got} rows, expected {want}"
    ))
}

/// The set of columns a fetch must materialise. Backends may return a
/// superset (the in-memory backend always returns whole segments for
/// free); the disk backend decodes only what is requested, which is
/// how `analyze::QueryFootprint` column pruning reaches storage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnSet {
    everything: bool,
    keys: BTreeSet<String>,
    measures: BTreeSet<String>,
    degenerates: BTreeSet<String>,
}

impl ColumnSet {
    /// Every column in the segment.
    pub fn all() -> Self {
        ColumnSet {
            everything: true,
            ..ColumnSet::default()
        }
    }

    /// No data columns (metadata only).
    pub fn empty() -> Self {
        ColumnSet::default()
    }

    /// Request a dimension-key column.
    pub fn with_key(mut self, name: impl Into<String>) -> Self {
        self.keys.insert(name.into());
        self
    }

    /// Request a measure column.
    pub fn with_measure(mut self, name: impl Into<String>) -> Self {
        self.measures.insert(name.into());
        self
    }

    /// Request a degenerate column.
    pub fn with_degenerate(mut self, name: impl Into<String>) -> Self {
        self.degenerates.insert(name.into());
        self
    }

    /// True for [`ColumnSet::all`].
    pub fn wants_everything(&self) -> bool {
        self.everything
    }

    /// Is key column `name` requested?
    pub fn wants_key(&self, name: &str) -> bool {
        self.everything || self.keys.contains(name)
    }

    /// Is measure column `name` requested?
    pub fn wants_measure(&self, name: &str) -> bool {
        self.everything || self.measures.contains(name)
    }

    /// Is degenerate column `name` requested?
    pub fn wants_degenerate(&self, name: &str) -> bool {
        self.everything || self.degenerates.contains(name)
    }

    /// Requested key-column names (empty when `everything`).
    pub fn key_names(&self) -> impl Iterator<Item = &str> {
        self.keys.iter().map(String::as_str)
    }

    /// Requested measure-column names (empty when `everything`).
    pub fn measure_names(&self) -> impl Iterator<Item = &str> {
        self.measures.iter().map(String::as_str)
    }

    /// Requested degenerate-column names (empty when `everything`).
    pub fn degenerate_names(&self) -> impl Iterator<Item = &str> {
        self.degenerates.iter().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub fn sample_segment(id: u64) -> Segment {
        Segment::assemble(
            id,
            vec![
                ("Visit".into(), vec![0, 0, 1, 1]),
                ("Personal".into(), vec![3, 4, 3, 5]),
            ],
            vec![(
                "FBG".into(),
                vec![5.5, 0.0, 7.25, 6.0],
                vec![true, false, true, true],
            )],
            vec![(
                "PatientId".into(),
                vec![
                    Value::Int(1),
                    Value::Int(2),
                    Value::Int(1),
                    Value::Text("x".into()),
                ],
            )],
        )
        .unwrap()
    }

    #[test]
    fn assemble_computes_zones() {
        let seg = sample_segment(7);
        assert_eq!(seg.meta.id, 7);
        assert_eq!(seg.rows(), 4);
        let visit = seg.meta.key_zone("Visit").unwrap();
        assert_eq!((visit.min, visit.max), (0, 1));
        let fbg = seg.meta.measure_zone("FBG").unwrap();
        assert_eq!(fbg.range, Some((5.5, 7.25)));
        assert_eq!(fbg.null_count, 1);
        assert!(seg.meta.has_degenerate("PatientId"));
        assert!(!seg.meta.has_degenerate("Nope"));
    }

    #[test]
    fn assemble_rejects_ragged_columns() {
        let err = Segment::assemble(
            0,
            vec![("A".into(), vec![1, 2]), ("B".into(), vec![1])],
            vec![],
            vec![],
        )
        .unwrap_err();
        assert!(err.to_string().contains("`B`"));
    }

    #[test]
    fn column_lookup_by_name() {
        let seg = sample_segment(0);
        assert_eq!(seg.key_column("Personal").unwrap(), &[3, 4, 3, 5]);
        assert!(seg.key_column("Nope").is_none());
        let (values, valid) = seg.measure_column("FBG").unwrap();
        assert_eq!(values.len(), 4);
        assert!(!valid[1]);
        assert_eq!(seg.degenerate_column("PatientId").unwrap().len(), 4);
    }

    #[test]
    fn slice_views_are_range_restricted() {
        let seg = sample_segment(1);
        let slice = seg.slice(1..3).unwrap();
        assert_eq!(slice.len(), 2);
        assert!(!slice.is_empty());
        assert_eq!(slice.key_slice("Visit").unwrap(), &[0, 1]);
        assert_eq!(slice.key_slice("Nope"), None);
        let fbg = slice.measure_slice("FBG").unwrap();
        assert_eq!(fbg.values, &[0.0, 7.25]);
        assert_eq!(fbg.valid, &[false, true]);
        assert_eq!(slice.degenerate_slice("PatientId").unwrap().len(), 2);
        let full = seg.full_slice();
        assert_eq!(full.len(), seg.rows());
        assert_eq!(full.rows(), 0..4);
        assert!(seg.slice(2..9).is_err());
        assert!(seg.slice(0..4).is_ok());
        assert!(seg.slice(4..4).unwrap().is_empty());
    }

    #[test]
    fn key_dictionary_exposes_domain_and_present_keys() {
        let seg = sample_segment(2);
        let dict = seg.meta.key_dictionary("Personal").unwrap();
        assert_eq!(dict.domain(), 6);
        assert_eq!(dict.min_key(), Some(3));
        assert!(dict.is_exact());
        assert_eq!(dict.present().collect::<Vec<_>>(), vec![3, 4, 5]);
        assert!(seg.meta.key_dictionary("Nope").is_none());

        // Past the distinct cap the view degrades to a min..=max superset.
        let keys: Vec<u32> = (10..200).collect();
        let big = Segment::assemble(3, vec![("Big".into(), keys)], vec![], vec![]).unwrap();
        let dict = big.meta.key_dictionary("Big").unwrap();
        assert!(!dict.is_exact());
        assert_eq!(dict.domain(), 200);
        assert_eq!(dict.present().count(), 190);

        let empty = Segment::assemble(4, vec![("E".into(), vec![])], vec![], vec![]).unwrap();
        let dict = empty.meta.key_dictionary("E").unwrap();
        assert_eq!(dict.domain(), 0);
        assert_eq!(dict.min_key(), None);
        assert_eq!(dict.present().count(), 0);
    }

    #[test]
    fn column_set_membership() {
        let all = ColumnSet::all();
        assert!(all.wants_key("anything") && all.wants_measure("x") && all.wants_degenerate("y"));
        let some = ColumnSet::empty().with_key("Visit").with_measure("FBG");
        assert!(some.wants_key("Visit"));
        assert!(!some.wants_key("Personal"));
        assert!(some.wants_measure("FBG"));
        assert!(!some.wants_degenerate("PatientId"));
    }
}
