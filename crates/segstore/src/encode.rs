//! Segment file encoding.
//!
//! Mirrors the WAL v2 framing discipline (`oltp::wal`): a magic +
//! version header followed by self-delimiting records, each carrying a
//! trailing CRC-32 over its body. Where the WAL frames row operations,
//! a segment file frames *columns*:
//!
//! ```text
//! [0xD5 'S' 'G'] [version u8]
//! record := [kind u8] [name_len u16 LE] [name] [payload_len u32 LE] [payload] [crc32 u32 LE]
//! ```
//!
//! The CRC covers everything from `kind` through the payload, so any
//! byte flip — header fields included — is detected, exactly like the
//! WAL's per-record checksums. Unlike the WAL (where a torn tail is
//! expected and silently truncated on recovery), a segment is sealed
//! atomically: *any* framing or checksum defect makes the whole file
//! unreadable, surfacing as a typed error.
//!
//! Record kinds: `0` meta (zone maps; always first), `1` key column
//! (fixed-width `u32` LE), `2` measure column (validity bitmap +
//! fixed-width `f64` LE), `3` degenerate column (chunks of the
//! self-describing `oltp::encoding` row codec). Readers skip —
//! but still checksum — records for columns outside the requested
//! [`ColumnSet`], which is what makes footprint-driven column pruning
//! an I/O saving on the disk backend.

use crate::segment::{ColumnSet, Segment, SegmentMeta};
use crate::zone::{KeyZone, MeasureZone};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use clinical_types::{Error, Record, Result, Value};
use oltp::encoding::{crc32, decode_row, encode_row};

/// Magic prefix of a segment file.
pub const SEGMENT_MAGIC: [u8; 3] = [0xD5, b'S', b'G'];
/// Current segment-format version.
pub const SEGMENT_VERSION: u8 = 1;

const KIND_META: u8 = 0;
const KIND_KEY: u8 = 1;
const KIND_MEASURE: u8 = 2;
const KIND_DEGENERATE: u8 = 3;

/// Rows per degenerate-column chunk: comfortably under the row
/// codec's `u16` value-count header.
const DEGENERATE_CHUNK_ROWS: usize = 32_000;

fn corrupt(what: impl std::fmt::Display) -> Error {
    Error::invalid(format!("corrupt segment: {what}"))
}

fn put_name(buf: &mut BytesMut, name: &str) {
    buf.put_u16_le(name.len() as u16);
    buf.put_slice(name.as_bytes());
}

fn put_record(out: &mut BytesMut, kind: u8, name: &str, payload: &[u8]) {
    let mut body = BytesMut::with_capacity(1 + 2 + name.len() + 4 + payload.len());
    body.put_u8(kind);
    put_name(&mut body, name);
    body.put_u32_le(payload.len() as u32);
    body.put_slice(payload);
    let crc = crc32(&body);
    out.put_slice(&body);
    out.put_u32_le(crc);
}

fn meta_payload(meta: &SegmentMeta) -> BytesMut {
    let mut buf = BytesMut::new();
    buf.put_u64_le(meta.id);
    buf.put_u64_le(meta.rows);
    buf.put_u16_le(meta.key_zones.len() as u16);
    for z in &meta.key_zones {
        put_name(&mut buf, &z.column);
        buf.put_u32_le(z.min);
        buf.put_u32_le(z.max);
        match &z.distinct {
            Some(d) => {
                buf.put_u8(1);
                buf.put_u16_le(d.len() as u16);
                for k in d {
                    buf.put_u32_le(*k);
                }
            }
            None => buf.put_u8(0),
        }
    }
    buf.put_u16_le(meta.measure_zones.len() as u16);
    for z in &meta.measure_zones {
        put_name(&mut buf, &z.column);
        match z.range {
            Some((mn, mx)) => {
                buf.put_u8(1);
                buf.put_f64_le(mn);
                buf.put_f64_le(mx);
            }
            None => buf.put_u8(0),
        }
        buf.put_u64_le(z.null_count);
    }
    buf.put_u16_le(meta.degenerate_columns.len() as u16);
    for name in &meta.degenerate_columns {
        put_name(&mut buf, name);
    }
    buf
}

/// Encode a segment into its framed byte representation.
pub fn encode_segment(segment: &Segment) -> Bytes {
    let mut out = BytesMut::new();
    out.put_slice(&SEGMENT_MAGIC);
    out.put_u8(SEGMENT_VERSION);
    put_record(&mut out, KIND_META, "", &meta_payload(&segment.meta));
    for (name, keys) in &segment.keys {
        let mut payload = BytesMut::with_capacity(keys.len() * 4);
        for k in keys {
            payload.put_u32_le(*k);
        }
        put_record(&mut out, KIND_KEY, name, &payload);
    }
    for (name, values, valid) in &segment.measures {
        let mut payload = BytesMut::with_capacity(valid.len().div_ceil(8) + values.len() * 8);
        let mut bitmap = vec![0u8; valid.len().div_ceil(8)];
        for (i, ok) in valid.iter().enumerate() {
            if *ok {
                bitmap[i / 8] |= 1 << (i % 8);
            }
        }
        payload.put_slice(&bitmap);
        for v in values {
            payload.put_f64_le(*v);
        }
        put_record(&mut out, KIND_MEASURE, name, &payload);
    }
    for (name, values) in &segment.degenerates {
        let mut payload = BytesMut::new();
        for chunk in values.chunks(DEGENERATE_CHUNK_ROWS) {
            let encoded = encode_row(&Record::new(chunk.to_vec()));
            payload.put_u32_le(encoded.len() as u32);
            payload.put_slice(&encoded);
        }
        put_record(&mut out, KIND_DEGENERATE, name, &payload);
    }
    out.freeze()
}

fn take_name(buf: &mut Bytes) -> Result<String> {
    if buf.remaining() < 2 {
        return Err(corrupt("truncated name length"));
    }
    let len = buf.get_u16_le() as usize;
    if buf.remaining() < len {
        return Err(corrupt("truncated name"));
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| corrupt("name is not UTF-8"))
}

fn decode_meta_payload(mut buf: Bytes) -> Result<SegmentMeta> {
    if buf.remaining() < 16 {
        return Err(corrupt("meta record too short"));
    }
    let id = buf.get_u64_le();
    let rows = buf.get_u64_le();
    if buf.remaining() < 2 {
        return Err(corrupt("meta truncated before key zones"));
    }
    let n_keys = buf.get_u16_le();
    let mut key_zones = Vec::with_capacity(n_keys as usize);
    for _ in 0..n_keys {
        let column = take_name(&mut buf)?;
        if buf.remaining() < 9 {
            return Err(corrupt("truncated key zone"));
        }
        let min = buf.get_u32_le();
        let max = buf.get_u32_le();
        let distinct = match buf.get_u8() {
            0 => None,
            1 => {
                if buf.remaining() < 2 {
                    return Err(corrupt("truncated distinct set"));
                }
                let n = buf.get_u16_le() as usize;
                if buf.remaining() < n * 4 {
                    return Err(corrupt("truncated distinct keys"));
                }
                Some((0..n).map(|_| buf.get_u32_le()).collect())
            }
            other => return Err(corrupt(format!("bad distinct flag {other}"))),
        };
        key_zones.push(KeyZone {
            column,
            min,
            max,
            distinct,
        });
    }
    if buf.remaining() < 2 {
        return Err(corrupt("meta truncated before measure zones"));
    }
    let n_measures = buf.get_u16_le();
    let mut measure_zones = Vec::with_capacity(n_measures as usize);
    for _ in 0..n_measures {
        let column = take_name(&mut buf)?;
        if buf.remaining() < 1 {
            return Err(corrupt("truncated measure zone"));
        }
        let range = match buf.get_u8() {
            0 => None,
            1 => {
                if buf.remaining() < 16 {
                    return Err(corrupt("truncated measure range"));
                }
                Some((buf.get_f64_le(), buf.get_f64_le()))
            }
            other => return Err(corrupt(format!("bad range flag {other}"))),
        };
        if buf.remaining() < 8 {
            return Err(corrupt("truncated null count"));
        }
        let null_count = buf.get_u64_le();
        measure_zones.push(MeasureZone {
            column,
            range,
            null_count,
        });
    }
    if buf.remaining() < 2 {
        return Err(corrupt("meta truncated before degenerate names"));
    }
    let n_deg = buf.get_u16_le();
    let mut degenerate_columns = Vec::with_capacity(n_deg as usize);
    for _ in 0..n_deg {
        degenerate_columns.push(take_name(&mut buf)?);
    }
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes in meta record"));
    }
    Ok(SegmentMeta {
        id,
        rows,
        key_zones,
        measure_zones,
        degenerate_columns,
    })
}

fn decode_key_payload(mut buf: Bytes, rows: usize) -> Result<Vec<u32>> {
    if buf.remaining() != rows * 4 {
        return Err(corrupt("key column size mismatch"));
    }
    Ok((0..rows).map(|_| buf.get_u32_le()).collect())
}

fn decode_measure_payload(mut buf: Bytes, rows: usize) -> Result<(Vec<f64>, Vec<bool>)> {
    let bitmap_len = rows.div_ceil(8);
    if buf.remaining() != bitmap_len + rows * 8 {
        return Err(corrupt("measure column size mismatch"));
    }
    let bitmap = buf.copy_to_bytes(bitmap_len);
    let valid: Vec<bool> = (0..rows)
        .map(|i| bitmap[i / 8] & (1 << (i % 8)) != 0)
        .collect();
    let values: Vec<f64> = (0..rows).map(|_| buf.get_f64_le()).collect();
    Ok((values, valid))
}

fn decode_degenerate_payload(mut buf: Bytes, rows: usize) -> Result<Vec<Value>> {
    let mut values: Vec<Value> = Vec::with_capacity(rows);
    while buf.has_remaining() {
        if buf.remaining() < 4 {
            return Err(corrupt("truncated degenerate chunk header"));
        }
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < len {
            return Err(corrupt("truncated degenerate chunk"));
        }
        let chunk = buf.copy_to_bytes(len);
        let record = decode_row(&chunk).map_err(corrupt)?;
        values.extend(record.values().iter().cloned());
    }
    if values.len() != rows {
        return Err(corrupt("degenerate column size mismatch"));
    }
    Ok(values)
}

/// Decode a framed segment, materialising (at least) the columns in
/// `columns`. Every record — wanted or not — is CRC-verified, so a
/// single flipped byte anywhere in the file is detected regardless of
/// which columns the caller asked for.
pub fn decode_segment(bytes: &[u8], columns: &ColumnSet) -> Result<Segment> {
    let mut buf = Bytes::from(bytes);
    if buf.remaining() < 4 {
        return Err(corrupt("missing header"));
    }
    let magic = buf.copy_to_bytes(3);
    if magic[..] != SEGMENT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = buf.get_u8();
    if version != SEGMENT_VERSION {
        return Err(corrupt(format!("unsupported version {version}")));
    }

    let mut meta: Option<SegmentMeta> = None;
    let mut keys: Vec<(String, Vec<u32>)> = Vec::new();
    let mut measures: Vec<(String, Vec<f64>, Vec<bool>)> = Vec::new();
    let mut degenerates: Vec<(String, Vec<Value>)> = Vec::new();

    while buf.has_remaining() {
        if buf.remaining() < 3 {
            return Err(corrupt("truncated record header"));
        }
        let body_start = buf.clone();
        let kind = buf.get_u8();
        let name = take_name(&mut buf)?;
        if buf.remaining() < 4 {
            return Err(corrupt("truncated payload length"));
        }
        let payload_len = buf.get_u32_le() as usize;
        if buf.remaining() < payload_len + 4 {
            return Err(corrupt("truncated record"));
        }
        let payload = buf.copy_to_bytes(payload_len);
        let stored_crc = buf.get_u32_le();
        let body_len = 1 + 2 + name.len() + 4 + payload_len;
        let body = body_start.slice(0..body_len);
        if crc32(&body) != stored_crc {
            return Err(corrupt(format!("checksum mismatch in record `{name}`")));
        }

        match kind {
            KIND_META => {
                if meta.is_some() {
                    return Err(corrupt("duplicate meta record"));
                }
                meta = Some(decode_meta_payload(payload)?);
            }
            KIND_KEY | KIND_MEASURE | KIND_DEGENERATE => {
                let rows = match &meta {
                    Some(m) => m.rows as usize,
                    None => return Err(corrupt("column record before meta")),
                };
                match kind {
                    KIND_KEY if columns.wants_key(&name) => {
                        keys.push((name, decode_key_payload(payload, rows)?));
                    }
                    KIND_MEASURE if columns.wants_measure(&name) => {
                        let (values, valid) = decode_measure_payload(payload, rows)?;
                        measures.push((name, values, valid));
                    }
                    KIND_DEGENERATE if columns.wants_degenerate(&name) => {
                        degenerates.push((name, decode_degenerate_payload(payload, rows)?));
                    }
                    _ => {} // checksummed above, decoding skipped
                }
            }
            other => return Err(corrupt(format!("unknown record kind {other}"))),
        }
    }

    let meta = meta.ok_or_else(|| corrupt("no meta record"))?;
    for want in columns.key_names() {
        if meta.key_zone(want).is_some() && !keys.iter().any(|(n, _)| n == want) {
            return Err(corrupt(format!("key column `{want}` missing from file")));
        }
    }
    for want in columns.measure_names() {
        if meta.measure_zone(want).is_some() && !measures.iter().any(|(n, _, _)| n == want) {
            return Err(corrupt(format!(
                "measure column `{want}` missing from file"
            )));
        }
    }
    for want in columns.degenerate_names() {
        if meta.has_degenerate(want) && !degenerates.iter().any(|(n, _)| n == want) {
            return Err(corrupt(format!(
                "degenerate column `{want}` missing from file"
            )));
        }
    }
    Ok(Segment {
        meta,
        keys,
        measures,
        degenerates,
    })
}

/// Decode only the metadata of a framed segment (still verifying
/// every record's checksum).
pub fn decode_segment_meta(bytes: &[u8]) -> Result<SegmentMeta> {
    decode_segment(bytes, &ColumnSet::empty()).map(|s| s.meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Segment {
        Segment::assemble(
            42,
            vec![
                ("Visit".into(), vec![0, 0, 1, 2]),
                ("Personal".into(), vec![9, 9, 8, 7]),
            ],
            vec![(
                "FBG".into(),
                vec![5.5, 0.0, 7.25, 6.0],
                vec![true, false, true, true],
            )],
            vec![(
                "PatientId".into(),
                vec![
                    Value::Int(1),
                    Value::Null,
                    Value::Text("µ — naïve".into()),
                    Value::Bool(true),
                ],
            )],
        )
        .unwrap()
    }

    #[test]
    fn full_round_trip() {
        let seg = sample();
        let bytes = encode_segment(&seg);
        let back = decode_segment(&bytes, &ColumnSet::all()).unwrap();
        assert_eq!(back, seg);
    }

    #[test]
    fn meta_only_round_trip() {
        let seg = sample();
        let meta = decode_segment_meta(&encode_segment(&seg)).unwrap();
        assert_eq!(meta, seg.meta);
    }

    #[test]
    fn partial_fetch_materialises_only_requested_columns() {
        let seg = sample();
        let bytes = encode_segment(&seg);
        let cols = ColumnSet::empty().with_key("Visit").with_measure("FBG");
        let partial = decode_segment(&bytes, &cols).unwrap();
        assert_eq!(partial.meta, seg.meta);
        assert!(partial.key_column("Visit").is_some());
        assert!(partial.key_column("Personal").is_none());
        assert!(partial.measure_column("FBG").is_some());
        assert!(partial.degenerate_column("PatientId").is_none());
    }

    #[test]
    fn requesting_a_column_the_segment_lacks_is_tolerated() {
        // The meta doesn't list it, so "missing" is not corruption —
        // the caller sees an absent column, mirroring the in-memory
        // backend's behaviour.
        let seg = sample();
        let bytes = encode_segment(&seg);
        let cols = ColumnSet::empty().with_key("NotThere");
        let out = decode_segment(&bytes, &cols).unwrap();
        assert!(out.key_column("NotThere").is_none());
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode_segment(&sample());
        for cut in [0, 2, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_segment(&bytes[..cut], &ColumnSet::all()).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn any_single_byte_flip_is_detected(offset in 0usize..4096, bit in 0u8..8) {
            let bytes = encode_segment(&sample()).to_vec();
            let offset = offset % bytes.len();
            let mut tampered = bytes.clone();
            tampered[offset] ^= 1 << bit;
            let decoded = decode_segment(&tampered, &ColumnSet::all());
            prop_assert!(
                decoded.is_err(),
                "flip at byte {} bit {} went undetected",
                offset,
                bit
            );
        }
    }
}
