//! Pluggable segment backends.
//!
//! The [`SegmentBackend`] trait is the storage boundary of the
//! segmented warehouse: everything above it (compaction planning,
//! zone-map pruning, per-segment scans) is backend-agnostic. Two
//! implementations ship:
//!
//! * [`MemoryBackend`] — segments live as shared [`Arc`]s in a map;
//!   fetch is a pointer clone. The default, and the baseline the scan
//!   bench compares the disk backend against.
//! * [`DiskBackend`] — one CRC-framed file per segment (see
//!   [`crate::encode`]), written temp-file-then-rename so a crash
//!   mid-seal never leaves a torn segment visible; at worst an
//!   orphaned `.tmp` survives, which [`DiskBackend::open`] ignores and
//!   vacuuming removes. Fetching decodes only the requested columns,
//!   and decoded segments are memoised (immutability makes the cache
//!   trivially coherent) so repeat scans skip the file read entirely.
//!
//! Both backends honour the same contract, enforced by the shared
//! [`crate::conformance`] suite: `put` rejects duplicate ids, `fetch`
//! returns at least the requested columns, unknown ids are typed
//! errors, and `list`/`metas` enumerate in id order.

use crate::encode::{decode_segment, decode_segment_meta, encode_segment};
use crate::segment::{ColumnSet, Segment, SegmentMeta};
use clinical_types::{Error, Result};
use obs::{LockRank, RankedMutex};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Injected faults surface as ordinary invalid-input errors, the same
/// convention the warehouse and WAL use.
fn map_fault(e: fault::FaultError) -> Error {
    Error::invalid(e.to_string())
}

fn map_io(context: &str, e: std::io::Error) -> Error {
    Error::invalid(format!("{context}: {e}"))
}

/// Storage for sealed, immutable segments.
///
/// Implementations must be shareable across threads (`Send + Sync`):
/// the warehouse hands one `Arc<dyn SegmentBackend>` to concurrent
/// cube builds while the compactor seals new segments into it.
pub trait SegmentBackend: Send + Sync + fmt::Debug {
    /// Seal a segment. Fails if `segment.meta.id` is already present —
    /// segments are immutable, never overwritten.
    fn put(&self, segment: Segment) -> Result<()>;

    /// Fetch a sealed segment, materialising at least the columns in
    /// `columns` (backends may return more; the in-memory backend
    /// always returns the whole segment).
    fn fetch(&self, id: u64, columns: &ColumnSet) -> Result<Arc<Segment>>;

    /// Metadata of every sealed segment, in id order.
    fn metas(&self) -> Result<Vec<SegmentMeta>>;

    /// Ids of every sealed segment, ascending.
    fn list(&self) -> Result<Vec<u64>>;

    /// Delete a sealed segment (compaction garbage collection).
    fn remove(&self, id: u64) -> Result<()>;

    /// Human-readable backend kind (`"memory"` / `"disk"`).
    fn kind(&self) -> &'static str;
}

/// In-memory backend: the default for freshly loaded warehouses.
pub struct MemoryBackend {
    segments: RankedMutex<HashMap<u64, Arc<Segment>>>,
}

impl Default for MemoryBackend {
    fn default() -> Self {
        MemoryBackend {
            segments: RankedMutex::new(
                LockRank::SegmentSet,
                "segstore.memory.segments",
                HashMap::new(),
            ),
        }
    }
}

impl MemoryBackend {
    /// Empty in-memory backend.
    pub fn new() -> Self {
        MemoryBackend::default()
    }
}

impl fmt::Debug for MemoryBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryBackend")
            .field("segments", &self.segments.lock().len())
            .finish()
    }
}

impl SegmentBackend for MemoryBackend {
    fn put(&self, segment: Segment) -> Result<()> {
        fault::point("segstore.put").map_err(map_fault)?;
        let mut map = self.segments.lock();
        let id = segment.meta.id;
        if map.contains_key(&id) {
            return Err(Error::invalid(format!("segment {id} already sealed")));
        }
        map.insert(id, Arc::new(segment));
        Ok(())
    }

    fn fetch(&self, id: u64, _columns: &ColumnSet) -> Result<Arc<Segment>> {
        self.segments
            .lock()
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::invalid(format!("unknown segment {id}")))
    }

    fn metas(&self) -> Result<Vec<SegmentMeta>> {
        let map = self.segments.lock();
        let mut metas: Vec<SegmentMeta> = map.values().map(|s| s.meta.clone()).collect();
        metas.sort_by_key(|m| m.id);
        Ok(metas)
    }

    fn list(&self) -> Result<Vec<u64>> {
        let mut ids: Vec<u64> = self.segments.lock().keys().copied().collect();
        ids.sort_unstable();
        Ok(ids)
    }

    fn remove(&self, id: u64) -> Result<()> {
        self.segments
            .lock()
            .remove(&id)
            .map(|_| ())
            .ok_or_else(|| Error::invalid(format!("unknown segment {id}")))
    }

    fn kind(&self) -> &'static str {
        "memory"
    }
}

/// On-disk backend: one CRC-framed file per segment under a directory.
///
/// Sealed segments are immutable, so decoded segments are memoised in
/// a read-through cache: the first fetch pays the file read + CRC
/// check, repeat fetches are a pointer clone (`remove` invalidates).
/// A cached decode is reused only when it covers the requested
/// [`ColumnSet`]; otherwise the whole segment is decoded once and the
/// cache upgraded.
pub struct DiskBackend {
    dir: PathBuf,
    cache: RankedMutex<HashMap<u64, Arc<Segment>>>,
}

/// Fresh (empty) decode cache for a disk backend.
fn disk_cache() -> RankedMutex<HashMap<u64, Arc<Segment>>> {
    RankedMutex::new(LockRank::SegmentSet, "segstore.disk.cache", HashMap::new())
}

/// Does a decoded segment materialise every column `want` asks for?
fn covers(seg: &Segment, want: &ColumnSet) -> bool {
    let has_key = |n: &str| seg.keys.iter().any(|(k, _)| k == n);
    let has_measure = |n: &str| seg.measures.iter().any(|(k, _, _)| k == n);
    let has_degenerate = |n: &str| seg.degenerates.iter().any(|(k, _)| k == n);
    if want.wants_everything() {
        seg.meta.key_zones.iter().all(|z| has_key(&z.column))
            && seg
                .meta
                .measure_zones
                .iter()
                .all(|z| has_measure(&z.column))
            && seg
                .meta
                .degenerate_columns
                .iter()
                .all(|c| has_degenerate(c))
    } else {
        want.key_names().all(has_key)
            && want.measure_names().all(has_measure)
            && want.degenerate_names().all(has_degenerate)
    }
}

impl DiskBackend {
    /// Create the directory (if needed) and open a backend over it.
    pub fn create(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| map_io("create segment dir", e))?;
        Ok(DiskBackend {
            dir,
            cache: disk_cache(),
        })
    }

    /// Open an existing segment directory (e.g. after a restart).
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        if !dir.is_dir() {
            return Err(Error::invalid(format!(
                "segment dir {} does not exist",
                dir.display()
            )));
        }
        Ok(DiskBackend {
            dir,
            cache: disk_cache(),
        })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, id: u64) -> PathBuf {
        self.dir.join(format!("seg_{id:016x}.seg"))
    }

    fn id_of(name: &str) -> Option<u64> {
        let hex = name.strip_prefix("seg_")?.strip_suffix(".seg")?;
        u64::from_str_radix(hex, 16).ok()
    }

    fn read(&self, id: u64) -> Result<Vec<u8>> {
        std::fs::read(self.path_of(id)).map_err(|e| map_io(&format!("read segment {id}"), e))
    }
}

impl fmt::Debug for DiskBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiskBackend")
            .field("dir", &self.dir)
            .finish()
    }
}

impl SegmentBackend for DiskBackend {
    fn put(&self, segment: Segment) -> Result<()> {
        fault::point("segstore.put").map_err(map_fault)?;
        let id = segment.meta.id;
        let path = self.path_of(id);
        if path.exists() {
            return Err(Error::invalid(format!("segment {id} already sealed")));
        }
        let bytes = encode_segment(&segment);
        // Temp-file-then-rename: readers either see the whole sealed
        // file or none of it, mirroring the WAL's torn-tail discipline
        // at file granularity.
        let tmp = self.dir.join(format!("seg_{id:016x}.tmp"));
        std::fs::write(&tmp, &bytes).map_err(|e| map_io("write segment", e))?;
        std::fs::rename(&tmp, &path).map_err(|e| map_io("seal segment", e))?;
        Ok(())
    }

    fn fetch(&self, id: u64, columns: &ColumnSet) -> Result<Arc<Segment>> {
        if let Some(cached) = self.cache.lock().get(&id) {
            if covers(cached, columns) {
                return Ok(Arc::clone(cached));
            }
        }
        let bytes = self.read(id)?;
        let first_decode = !self.cache.lock().contains_key(&id);
        // A coverage miss means two readers want different column
        // subsets: upgrade to a full decode once rather than thrash.
        let want = if first_decode {
            columns.clone()
        } else {
            ColumnSet::all()
        };
        let segment = Arc::new(decode_segment(&bytes, &want)?);
        self.cache.lock().insert(id, Arc::clone(&segment));
        Ok(segment)
    }

    fn metas(&self) -> Result<Vec<SegmentMeta>> {
        let mut metas = Vec::new();
        for id in self.list()? {
            metas.push(decode_segment_meta(&self.read(id)?)?);
        }
        Ok(metas)
    }

    fn list(&self) -> Result<Vec<u64>> {
        let entries = std::fs::read_dir(&self.dir).map_err(|e| map_io("list segment dir", e))?;
        let mut ids = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| map_io("list segment dir", e))?;
            if let Some(id) = Self::id_of(&entry.file_name().to_string_lossy()) {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    fn remove(&self, id: u64) -> Result<()> {
        self.cache.lock().remove(&id);
        std::fs::remove_file(self.path_of(id))
            .map_err(|e| map_io(&format!("remove segment {id}"), e))
    }

    fn kind(&self) -> &'static str {
        "disk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("segstore_test_{tag}_{}_{seq}", std::process::id()))
    }

    #[test]
    fn memory_backend_passes_conformance() {
        conformance::run(&MemoryBackend::new()).unwrap();
    }

    #[test]
    fn disk_backend_passes_conformance() {
        let dir = temp_dir("conformance");
        conformance::run(&DiskBackend::create(&dir).unwrap()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_backend_survives_reopen() {
        let dir = temp_dir("reopen");
        let seg = conformance::sample_segment(3);
        {
            let backend = DiskBackend::create(&dir).unwrap();
            backend.put(seg.clone()).unwrap();
        }
        let reopened = DiskBackend::open(&dir).unwrap();
        assert_eq!(reopened.list().unwrap(), vec![3]);
        let back = reopened.fetch(3, &ColumnSet::all()).unwrap();
        assert_eq!(*back, seg);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_backend_open_requires_the_directory() {
        assert!(DiskBackend::open(temp_dir("missing")).is_err());
    }

    #[test]
    fn disk_backend_detects_corrupted_files() {
        let dir = temp_dir("corrupt");
        let backend = DiskBackend::create(&dir).unwrap();
        backend.put(conformance::sample_segment(1)).unwrap();
        let path = backend.path_of(1);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(backend.fetch(1, &ColumnSet::all()).is_err());
        assert!(backend.metas().is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn put_failpoint_fails_both_backends() {
        let _lock = fault::test_support::fault_lock();
        let _guard = fault::arm(
            "segstore.put",
            fault::Trigger::Always,
            fault::FaultKind::Error,
        );
        assert!(MemoryBackend::new()
            .put(conformance::sample_segment(1))
            .is_err());
        let dir = temp_dir("fault");
        let disk = DiskBackend::create(&dir).unwrap();
        assert!(disk.put(conformance::sample_segment(1)).is_err());
        assert!(disk.list().unwrap().is_empty(), "no torn file left behind");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
