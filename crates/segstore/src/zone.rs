//! Zone maps: per-segment, per-column summaries consulted *before*
//! a segment is fetched, so pruned segments are never read or decoded.
//!
//! Two flavours match the two physical column kinds:
//!
//! * [`KeyZone`] — over a dimension's surrogate-key column: min/max
//!   key plus, when the segment holds few distinct keys (the common
//!   case after sort-then-cut compaction), the exact distinct-key set,
//!   which turns range pruning into exact membership pruning.
//! * [`MeasureZone`] — over a measure column: min/max of the *valid*
//!   (non-null, non-NaN) values plus the null count. A `[lo, hi)`
//!   measure filter can only match inside the valid range, so a
//!   disjoint zone proves the whole segment irrelevant.

use std::collections::BTreeSet;

/// Above this many distinct keys a [`KeyZone`] degrades to min/max
/// only, bounding zone-map size per segment.
pub const DISTINCT_KEY_CAP: usize = 64;

/// Zone map over one dimension-key column of a segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyZone {
    /// Dimension name this zone summarises.
    pub column: String,
    /// Smallest surrogate key present (`> max` for an empty column).
    pub min: u32,
    /// Largest surrogate key present.
    pub max: u32,
    /// Exact sorted distinct-key set when it fits
    /// [`DISTINCT_KEY_CAP`]; `None` means "min/max only".
    pub distinct: Option<Vec<u32>>,
}

impl KeyZone {
    /// Summarise a key column.
    pub fn from_keys(column: impl Into<String>, keys: &[u32]) -> Self {
        let mut min = u32::MAX;
        let mut max = 0u32;
        let mut set: BTreeSet<u32> = BTreeSet::new();
        for &k in keys {
            min = min.min(k);
            max = max.max(k);
            if set.len() <= DISTINCT_KEY_CAP {
                set.insert(k);
            }
        }
        let distinct =
            (!keys.is_empty() && set.len() <= DISTINCT_KEY_CAP).then(|| set.into_iter().collect());
        KeyZone {
            column: column.into(),
            min,
            max,
            distinct,
        }
    }

    /// Could the column contain `key`?
    pub fn may_contain(&self, key: u32) -> bool {
        if key < self.min || key > self.max {
            return false;
        }
        match &self.distinct {
            Some(d) => d.binary_search(&key).is_ok(),
            None => true,
        }
    }

    /// Could the column contain *any* of `allowed`? False proves the
    /// segment holds no row passing an `attribute IN …` filter on this
    /// dimension.
    pub fn may_contain_any(&self, allowed: &BTreeSet<u32>) -> bool {
        if self.min > self.max {
            return false; // empty column
        }
        match &self.distinct {
            Some(d) => d.iter().any(|k| allowed.contains(k)),
            None => allowed.range(self.min..=self.max).next().is_some(),
        }
    }
}

/// Zone map over one measure column of a segment.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureZone {
    /// Measure name this zone summarises.
    pub column: String,
    /// `(min, max)` over valid finite values; `None` when the segment
    /// holds no comparable value (all null / all NaN / empty).
    pub range: Option<(f64, f64)>,
    /// Number of rows whose measurement is missing.
    pub null_count: u64,
}

impl MeasureZone {
    /// Summarise a measure column (`values[i]` meaningful only where
    /// `valid[i]`).
    pub fn from_values(column: impl Into<String>, values: &[f64], valid: &[bool]) -> Self {
        let mut range: Option<(f64, f64)> = None;
        let mut null_count = 0u64;
        for (v, ok) in values.iter().zip(valid) {
            if !*ok {
                null_count += 1;
                continue;
            }
            if v.is_nan() {
                continue; // incomparable; rows with NaN fail every range filter
            }
            range = Some(match range {
                Some((mn, mx)) => (mn.min(*v), mx.max(*v)),
                None => (*v, *v),
            });
        }
        MeasureZone {
            column: column.into(),
            range,
            null_count,
        }
    }

    /// Could any row pass a `measure in [lo, hi)` filter? Rows with a
    /// missing or NaN measurement never pass, so `None` range means no.
    pub fn may_overlap(&self, lo: f64, hi: f64) -> bool {
        match self.range {
            Some((mn, mx)) => mx >= lo && mn < hi,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_zone_tracks_min_max_and_distinct() {
        let z = KeyZone::from_keys("Visit", &[4, 9, 4, 7]);
        assert_eq!((z.min, z.max), (4, 9));
        assert_eq!(z.distinct.as_deref(), Some(&[4, 7, 9][..]));
        assert!(z.may_contain(7));
        assert!(!z.may_contain(5), "distinct set prunes inside the range");
        assert!(!z.may_contain(10));
        let allowed: BTreeSet<u32> = [5, 6].into_iter().collect();
        assert!(!z.may_contain_any(&allowed));
        let hit: BTreeSet<u32> = [6, 9].into_iter().collect();
        assert!(z.may_contain_any(&hit));
    }

    #[test]
    fn key_zone_degrades_past_the_distinct_cap() {
        let keys: Vec<u32> = (0..200).collect();
        let z = KeyZone::from_keys("Big", &keys);
        assert!(z.distinct.is_none());
        assert!(z.may_contain(150));
        assert!(!z.may_contain(201));
        let inside: BTreeSet<u32> = [150].into_iter().collect();
        assert!(z.may_contain_any(&inside));
        let outside: BTreeSet<u32> = [500].into_iter().collect();
        assert!(!z.may_contain_any(&outside));
    }

    #[test]
    fn empty_key_zone_contains_nothing() {
        let z = KeyZone::from_keys("Empty", &[]);
        assert!(!z.may_contain(0));
        assert!(!z.may_contain_any(&[0, 1].into_iter().collect()));
    }

    #[test]
    fn measure_zone_skips_nulls_and_nans() {
        let z = MeasureZone::from_values(
            "FBG",
            &[5.0, 0.0, f64::NAN, 9.5],
            &[true, false, true, true],
        );
        assert_eq!(z.range, Some((5.0, 9.5)));
        assert_eq!(z.null_count, 1);
        assert!(z.may_overlap(9.0, 12.0));
        assert!(z.may_overlap(1.0, 5.1));
        assert!(!z.may_overlap(10.0, 20.0));
        assert!(!z.may_overlap(1.0, 5.0), "[lo, hi) is half-open");
    }

    #[test]
    fn all_null_measure_zone_never_overlaps() {
        let z = MeasureZone::from_values("M", &[0.0, 0.0], &[false, false]);
        assert_eq!(z.range, None);
        assert!(!z.may_overlap(f64::MIN, f64::MAX));
    }
}
