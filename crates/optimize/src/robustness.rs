//! Aggregate robustness validation.
//!
//! Given a base cube query (axes + measure), the validator perturbs
//! the dimensional context: for every *control* attribute it (a) adds
//! the attribute as an extra axis and rolls it back up, and (b)
//! restricts the query to each of the control attribute's members and
//! re-ranks. A finding like "cell X has the highest count" is
//! *robust* when X stays at (or near) the top under all
//! perturbations — the paper's "optimal aggregates would be
//! consistent regardless of the changes to dimensions".

use clinical_types::{Error, Result, Value};
use olap::{Cube, CubeSpec};
use warehouse::Warehouse;

/// Result of validating one aggregate query.
#[derive(Debug, Clone)]
pub struct RobustnessReport {
    /// The top cell of the base query.
    pub top_cell: Vec<Value>,
    /// Its base value.
    pub top_value: f64,
    /// Perturbations in which the same cell stayed top.
    pub consistent: usize,
    /// Perturbations in which it stayed within the top `tolerance_rank`.
    pub near_consistent: usize,
    /// Total perturbations executed.
    pub total_perturbations: usize,
    /// Per-perturbation detail: `(description, top cell under it)`.
    pub details: Vec<(String, Vec<Value>)>,
}

impl RobustnessReport {
    /// Fraction of perturbations that kept the cell on top.
    pub fn consistency(&self) -> f64 {
        if self.total_perturbations == 0 {
            1.0
        } else {
            self.consistent as f64 / self.total_perturbations as f64
        }
    }

    /// Robust at `threshold` (e.g. 0.8)?
    pub fn is_robust(&self, threshold: f64) -> bool {
        self.consistency() >= threshold
    }
}

/// Ranked cells (descending by value) of a cube.
fn ranked_cells(cube: &Cube) -> Vec<(Vec<Value>, f64)> {
    let mut cells: Vec<(Vec<Value>, f64)> = cube.iter().map(|(k, v)| (k.clone(), v)).collect();
    cells.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
    cells
}

/// Rank of `cell` in a ranking (0-based), if present.
fn rank_of(ranking: &[(Vec<Value>, f64)], cell: &[Value]) -> Option<usize> {
    ranking.iter().position(|(k, _)| k == cell)
}

/// Validate the top aggregate of `base` under perturbation by the
/// given `control` attributes. `tolerance_rank` counts "still in the
/// top k" as near-consistent.
pub fn validate_aggregate(
    warehouse: &Warehouse,
    base: &CubeSpec,
    controls: &[&str],
    tolerance_rank: usize,
) -> Result<RobustnessReport> {
    let base_cube = Cube::build(warehouse, base)?;
    let ranking = ranked_cells(&base_cube);
    let (top_cell, top_value) = ranking
        .first()
        .cloned()
        .ok_or_else(|| Error::invalid("base query produced no cells"))?;

    let mut consistent = 0usize;
    let mut near = 0usize;
    let mut total = 0usize;
    let mut details = Vec::new();

    for control in controls {
        if base.axes.iter().any(|a| a == control) {
            return Err(Error::invalid(format!(
                "control attribute `{control}` is already a base axis"
            )));
        }

        // Perturbation (a): add the control as an axis, roll it up
        // again — the aggregate must survive the round trip.
        let mut spec = base.clone();
        spec.axes.push((*control).to_string());
        let expanded = Cube::build(warehouse, &spec)?;
        let rolled = expanded.roll_up(control)?;
        let r = ranked_cells(&rolled);
        record(
            &mut consistent,
            &mut near,
            &mut total,
            &mut details,
            format!("add+rollup {control}"),
            &r,
            &top_cell,
            tolerance_rank,
        );

        // Perturbation (b): restrict to each member of the control.
        let members = expanded.axis_values(control)?;
        for member in members {
            let sliced = expanded.slice(control, &member)?;
            let r = ranked_cells(&sliced);
            if r.is_empty() {
                continue; // empty stratum carries no evidence
            }
            record(
                &mut consistent,
                &mut near,
                &mut total,
                &mut details,
                format!("{control} = {member}"),
                &r,
                &top_cell,
                tolerance_rank,
            );
        }
    }

    Ok(RobustnessReport {
        top_cell,
        top_value,
        consistent,
        near_consistent: near,
        total_perturbations: total,
        details,
    })
}

#[allow(clippy::too_many_arguments)]
fn record(
    consistent: &mut usize,
    near: &mut usize,
    total: &mut usize,
    details: &mut Vec<(String, Vec<Value>)>,
    description: String,
    ranking: &[(Vec<Value>, f64)],
    top_cell: &[Value],
    tolerance_rank: usize,
) {
    *total += 1;
    match rank_of(ranking, top_cell) {
        Some(0) => {
            *consistent += 1;
            *near += 1;
        }
        Some(r) if r < tolerance_rank => {
            *near += 1;
        }
        _ => {}
    }
    if let Some((cell, _)) = ranking.first() {
        details.push((description, cell.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clinical_types::{DataType, FieldDef, Record, Schema, Table};
    use warehouse::{DimensionDef, FactDef, LoadPlan, StarSchema};

    /// A warehouse where "Band=X" dominates counts in every stratum of
    /// Control (robust), while "Shaky" flips with Control (fragile).
    fn wh() -> Warehouse {
        let star = StarSchema::new(
            FactDef::new("F", vec![], vec![]),
            vec![DimensionDef::new("D", vec!["Band", "Shaky", "Control"])],
        )
        .unwrap();
        let schema = Schema::new(vec![
            FieldDef::nullable("Band", DataType::Text),
            FieldDef::nullable("Shaky", DataType::Text),
            FieldDef::nullable("Control", DataType::Text),
        ])
        .unwrap();
        let mut rows: Vec<Record> = Vec::new();
        let mut push = |band: &str, shaky: &str, control: &str, n: usize| {
            for _ in 0..n {
                rows.push(Record::new(vec![band.into(), shaky.into(), control.into()]));
            }
        };
        // X dominates in both strata of Control.
        push("X", "p", "a", 30);
        push("X", "q", "b", 25);
        push("Y", "p", "a", 10);
        push("Y", "q", "b", 10);
        // Both Shaky members occur in both strata, but p wins stratum
        // a (40 vs 5) while q wins stratum b (35 vs 5).
        push("Y", "q", "a", 5);
        push("Y", "p", "b", 5);
        let table = Table::from_rows(schema, rows).unwrap();
        Warehouse::load(&LoadPlan::from_star(star), &table).unwrap()
    }

    #[test]
    fn robust_aggregate_survives_perturbation() {
        let report =
            validate_aggregate(&wh(), &CubeSpec::count(vec!["Band"]), &["Control"], 2).unwrap();
        assert_eq!(report.top_cell, vec![Value::from("X")]);
        assert_eq!(report.top_value, 55.0);
        assert_eq!(report.total_perturbations, 3); // rollup + 2 strata
        assert_eq!(report.consistent, 3);
        assert!(report.is_robust(0.99));
    }

    #[test]
    fn fragile_aggregate_is_flagged() {
        let report =
            validate_aggregate(&wh(), &CubeSpec::count(vec!["Shaky"]), &["Control"], 1).unwrap();
        // Base: p has 40, q has 35 → top is p; but stratum b flips to q.
        assert_eq!(report.top_cell, vec![Value::from("p")]);
        assert!(report.consistent < report.total_perturbations);
        assert!(!report.is_robust(0.99));
    }

    #[test]
    fn near_consistency_counts_top_k() {
        let report =
            validate_aggregate(&wh(), &CubeSpec::count(vec!["Shaky"]), &["Control"], 2).unwrap();
        // p is either top or second everywhere (only two members).
        assert_eq!(report.near_consistent, report.total_perturbations);
    }

    #[test]
    fn control_equal_to_axis_rejected() {
        assert!(validate_aggregate(&wh(), &CubeSpec::count(vec!["Band"]), &["Band"], 1).is_err());
    }

    #[test]
    fn details_describe_each_perturbation() {
        let report =
            validate_aggregate(&wh(), &CubeSpec::count(vec!["Band"]), &["Control"], 1).unwrap();
        assert_eq!(report.details.len(), 3);
        assert!(report.details[0].0.contains("add+rollup"));
        assert!(report.details[1].0.contains("Control ="));
    }

    #[test]
    fn works_on_the_discri_cohort() {
        let cohort = discri::generate(&discri::CohortConfig::small(71));
        let (table, _) = etl::TransformPipeline::discri_default()
            .run(&cohort.attendances)
            .unwrap();
        let wh = Warehouse::load(&LoadPlan::discri_default(), &table).unwrap();
        let report = validate_aggregate(
            &wh,
            &CubeSpec::count(vec!["FBG_Band"]),
            &["Gender", "VisitKind"],
            2,
        )
        .unwrap();
        assert!(report.total_perturbations >= 4);
        // The dominant FBG band in a screening cohort is a population
        // property, not a gender artefact: expect high consistency.
        assert!(report.consistency() > 0.5, "{report:?}");
    }
}
