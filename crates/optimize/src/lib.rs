#![warn(missing_docs)]

//! Decision Optimisation — §IV of the paper:
//!
//! *"Decision optimization is partially the validation of the outcomes
//! obtained from prediction and reporting features. Given the
//! dimensions in a warehouse are independent to each other, outcomes
//! can be reviewed by removing existing or adding further dimensions.
//! Optimal aggregates would be consistent regardless of the changes to
//! dimensions."*
//!
//! * [`robustness`] — exactly that validation: re-rank the top
//!   aggregate cells of a query while control dimensions are added and
//!   removed, and score how stable the ranking is.
//! * [`regimen`] — the strategic-user half (*"optimising treatment
//!   regimen that have the best individual outcomes … within the
//!   economic constraints of the current health care system"*):
//!   exhaustive search over a discrete regimen space against an
//!   empirical, warehouse-derived risk table with per-regimen costs
//!   and a budget constraint.

pub mod regimen;
pub mod robustness;

pub use regimen::{Regimen, RegimenOptimiser, RegimenOutcome};
pub use robustness::{validate_aggregate, RobustnessReport};
