//! Strategic treatment-regimen optimisation.
//!
//! §II of the paper describes the strategic user as seeking
//! *"treatment regimen that have the best individual outcomes by
//! reducing disease progression … within the economic constraints of
//! the current health care system"*. This module implements that
//! search over a small discrete regimen space:
//!
//! * glucose-lowering **medication** (on / off), and
//! * a prescribed **exercise band** (none / moderate / high),
//!
//! scoring each regimen by the *empirical* risk of poor glycaemic
//! control (`FBG_Band = "Diabetic"`) among warehouse attendances whose
//! covariates match the regimen, and optimising risk subject to an
//! annual budget. The risk table is data-driven — read straight off
//! the warehouse — which is the "data-driven decision guidance" loop:
//! the warehouse both produces the evidence and receives the outcome.

use clinical_types::{Error, Result};
use warehouse::Warehouse;

/// Exercise prescription bands over `ExerciseSessionsPerWeek`.
const EXERCISE_BANDS: [(usize, &str, std::ops::Range<i64>); 3] =
    [(0, "none", 0..2), (1, "moderate", 2..5), (2, "high", 5..8)];

/// One candidate regimen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Regimen {
    /// Glucose-lowering medication prescribed.
    pub medication: bool,
    /// Exercise band index (0 = none, 1 = moderate, 2 = high).
    pub exercise_band: usize,
}

impl Regimen {
    /// Human-readable label.
    pub fn describe(&self) -> String {
        format!(
            "medication={}, exercise={}",
            if self.medication { "yes" } else { "no" },
            EXERCISE_BANDS[self.exercise_band].1
        )
    }

    /// All six regimens.
    pub fn all() -> Vec<Regimen> {
        let mut out = Vec::with_capacity(6);
        for medication in [false, true] {
            for band in 0..EXERCISE_BANDS.len() {
                out.push(Regimen {
                    medication,
                    exercise_band: band,
                });
            }
        }
        out
    }
}

/// A regimen with its empirical outcome and cost.
#[derive(Debug, Clone, PartialEq)]
pub struct RegimenOutcome {
    /// The regimen.
    pub regimen: Regimen,
    /// Empirical P(poor glycaemic control) among matching attendances.
    pub risk: f64,
    /// Annual cost in budget units.
    pub annual_cost: f64,
    /// Matching attendances the estimate rests on.
    pub support: usize,
}

/// The optimiser: cost model, budget and evidence threshold.
#[derive(Debug, Clone)]
pub struct RegimenOptimiser {
    /// Annual medication cost.
    pub medication_cost: f64,
    /// Annual cost per exercise band (index-aligned).
    pub exercise_costs: [f64; 3],
    /// Total annual budget per patient.
    pub budget: f64,
    /// Minimum attendances required to trust a risk estimate.
    pub min_support: usize,
}

impl Default for RegimenOptimiser {
    fn default() -> Self {
        RegimenOptimiser {
            medication_cost: 600.0,
            exercise_costs: [0.0, 150.0, 300.0],
            budget: 800.0,
            min_support: 20,
        }
    }
}

impl RegimenOptimiser {
    /// Cost of a regimen under this model.
    pub fn cost_of(&self, regimen: &Regimen) -> f64 {
        self.exercise_costs[regimen.exercise_band]
            + if regimen.medication {
                self.medication_cost
            } else {
                0.0
            }
    }

    /// Empirical outcome table: one entry per regimen, estimated over
    /// *diabetic* attendances (the population the regimen targets).
    pub fn outcomes(&self, warehouse: &Warehouse) -> Result<Vec<RegimenOutcome>> {
        let medication = warehouse.attribute_column("OnGlucoseMedication")?;
        let exercise = warehouse.attribute_column("ExerciseSessionsPerWeek")?;
        let fbg_band = warehouse.attribute_column("FBG_Band")?;
        let status = warehouse.attribute_column("DiabetesStatus")?;

        // counts[medication][band] = (poor-control rows, total rows)
        let mut counts = [[(0usize, 0usize); 3]; 2];
        for i in 0..warehouse.n_facts() {
            if status[i].as_str() != Some("yes") {
                continue;
            }
            let Some(on_med) = medication[i].as_bool() else {
                continue;
            };
            let Some(sessions) = exercise[i].as_i64() else {
                continue;
            };
            let Some(band) = EXERCISE_BANDS
                .iter()
                .find(|(_, _, range)| range.contains(&sessions))
                .map(|(i, _, _)| *i)
            else {
                continue;
            };
            let poor = fbg_band[i].as_str() == Some("Diabetic");
            let cell = &mut counts[usize::from(on_med)][band];
            cell.1 += 1;
            if poor {
                cell.0 += 1;
            }
        }

        Ok(Regimen::all()
            .into_iter()
            .map(|regimen| {
                let (poor, total) = counts[usize::from(regimen.medication)][regimen.exercise_band];
                RegimenOutcome {
                    regimen,
                    risk: if total == 0 {
                        1.0 // no evidence: assume worst case
                    } else {
                        poor as f64 / total as f64
                    },
                    annual_cost: self.cost_of(&regimen),
                    support: total,
                }
            })
            .collect())
    }

    /// Best affordable, sufficiently evidenced regimen: minimal risk
    /// subject to `cost <= budget` and `support >= min_support`; ties
    /// break toward the cheaper regimen.
    pub fn optimise(&self, warehouse: &Warehouse) -> Result<RegimenOutcome> {
        let mut feasible: Vec<RegimenOutcome> = self
            .outcomes(warehouse)?
            .into_iter()
            .filter(|o| o.annual_cost <= self.budget && o.support >= self.min_support)
            .collect();
        if feasible.is_empty() {
            return Err(Error::invalid(format!(
                "no regimen fits budget {} with support >= {}",
                self.budget, self.min_support
            )));
        }
        feasible.sort_by(|a, b| {
            a.risk
                .partial_cmp(&b.risk)
                .expect("risk is finite")
                .then(a.annual_cost.partial_cmp(&b.annual_cost).expect("finite"))
        });
        Ok(feasible.remove(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use discri::{generate, CohortConfig};
    use etl::TransformPipeline;
    use std::sync::OnceLock;
    use warehouse::LoadPlan;

    fn wh() -> &'static Warehouse {
        static WH: OnceLock<Warehouse> = OnceLock::new();
        WH.get_or_init(|| {
            let cohort = generate(&CohortConfig::default());
            let (table, _) = TransformPipeline::discri_default()
                .run(&cohort.attendances)
                .unwrap();
            Warehouse::load(&LoadPlan::discri_default(), &table).unwrap()
        })
    }

    #[test]
    fn outcome_table_covers_all_regimens() {
        let outcomes = RegimenOptimiser::default().outcomes(wh()).unwrap();
        assert_eq!(outcomes.len(), 6);
        for o in &outcomes {
            assert!((0.0..=1.0).contains(&o.risk));
        }
    }

    #[test]
    fn medication_reduces_empirical_risk() {
        // The cohort generator medicates diabetics into the controlled
        // mid-range, so the warehouse evidence must show lower
        // poor-control risk with medication at every exercise band
        // with enough support.
        let outcomes = RegimenOptimiser::default().outcomes(wh()).unwrap();
        for band in 0..3 {
            let with = outcomes
                .iter()
                .find(|o| o.regimen.medication && o.regimen.exercise_band == band)
                .unwrap();
            let without = outcomes
                .iter()
                .find(|o| !o.regimen.medication && o.regimen.exercise_band == band)
                .unwrap();
            if with.support >= 20 && without.support >= 20 {
                assert!(
                    with.risk < without.risk,
                    "band {band}: medicated risk {} !< unmedicated {}",
                    with.risk,
                    without.risk
                );
            }
        }
    }

    #[test]
    fn optimiser_prescribes_medication_when_affordable() {
        let best = RegimenOptimiser::default().optimise(wh()).unwrap();
        assert!(best.regimen.medication, "best regimen: {best:?}");
        assert!(best.annual_cost <= 800.0);
    }

    #[test]
    fn tight_budget_excludes_medication() {
        let opt = RegimenOptimiser {
            budget: 300.0,
            ..RegimenOptimiser::default()
        };
        let best = opt.optimise(wh()).unwrap();
        assert!(!best.regimen.medication);
        assert!(best.annual_cost <= 300.0);
    }

    #[test]
    fn impossible_constraints_error() {
        let opt = RegimenOptimiser {
            budget: -1.0,
            ..RegimenOptimiser::default()
        };
        assert!(opt.optimise(wh()).is_err());
        let opt = RegimenOptimiser {
            min_support: usize::MAX,
            ..RegimenOptimiser::default()
        };
        assert!(opt.optimise(wh()).is_err());
    }

    #[test]
    fn cost_model_is_additive() {
        let opt = RegimenOptimiser::default();
        let r = Regimen {
            medication: true,
            exercise_band: 2,
        };
        assert_eq!(opt.cost_of(&r), 900.0);
        assert_eq!(
            opt.cost_of(&Regimen {
                medication: false,
                exercise_band: 0
            }),
            0.0
        );
    }

    #[test]
    fn describe_is_readable() {
        let r = Regimen {
            medication: true,
            exercise_band: 1,
        };
        assert_eq!(r.describe(), "medication=yes, exercise=moderate");
    }
}
