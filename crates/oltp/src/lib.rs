#![warn(missing_docs)]

//! Transactional row store — the OLTP half of the paper's Reporting
//! component, and the flat-table baseline the DD-DGMS warehouse is
//! compared against.
//!
//! The original DGMS [4] mediated between data stores and the
//! decision-guidance features with DG-SQL over transactional data;
//! the paper's contribution is replacing that with a warehouse. To
//! benchmark that claim we need the thing being replaced, so this
//! crate implements a small but real row store:
//!
//! * [`encoding`] — compact binary row encoding (tag + payload).
//! * [`store`] — append-style heap of encoded rows with tombstone
//!   deletes, guarded by a reader–writer lock.
//! * [`index`] — hash (point) and B-tree (range) secondary indexes,
//!   maintained on every mutation.
//! * [`txn`] — atomic multi-operation transactions with an undo log.
//! * [`wal`] — write-ahead-log durability with crash recovery.
//! * [`query`] — predicate selection (index-accelerated), projection
//!   and flat hash group-by with the standard aggregates. This is the
//!   baseline measured against OLAP cubes in `bench/olap_vs_oltp`.

pub mod encoding;
pub mod index;
pub mod query;
pub mod store;
pub mod txn;
pub mod wal;

pub use encoding::{decode_row, encode_row};
pub use index::{BTreeIndex, HashIndex};
pub use query::{AggFn, GroupByResult, Predicate, QueryEngine};
pub use store::{RowId, RowStore};
pub use txn::Transaction;
pub use wal::{parse_log, DurableStore, WalOp};
