//! Atomic multi-operation transactions.
//!
//! A [`Transaction`] buffers an undo entry for every mutation it
//! performs against a [`RowStore`]; `rollback` (explicit, or implicit
//! on drop of an uncommitted transaction) replays the log in reverse.
//! This gives atomicity for the clinical data-entry workflows the
//! paper's operational users run (a screening attendance writes a
//! block of rows — either all land or none do).

use crate::store::{RowId, RowStore};
use clinical_types::{Record, Result};

enum Undo {
    /// A row we inserted — undo by deleting it.
    Insert(RowId),
    /// A row we updated — undo by restoring the old version.
    Update(RowId, Record),
    /// A row we deleted — undo by undeleting the old version.
    Delete(RowId, Record),
}

/// State of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// Mutations are being collected.
    Active,
    /// `commit` was called; the undo log is discarded.
    Committed,
    /// `rollback` ran; all mutations were reverted.
    RolledBack,
}

/// An undo-logged transaction over one [`RowStore`].
pub struct Transaction<'a> {
    store: &'a RowStore,
    undo: Vec<Undo>,
    state: TxnState,
}

impl<'a> Transaction<'a> {
    /// Begin a transaction against `store`.
    pub fn begin(store: &'a RowStore) -> Self {
        Transaction {
            store,
            undo: Vec::new(),
            state: TxnState::Active,
        }
    }

    /// Current state.
    pub fn state(&self) -> TxnState {
        self.state
    }

    /// Insert a row within the transaction.
    pub fn insert(&mut self, record: Record) -> Result<RowId> {
        self.assert_active()?;
        let id = self.store.insert(record)?;
        self.undo.push(Undo::Insert(id));
        Ok(id)
    }

    /// Update a row within the transaction.
    pub fn update(&mut self, id: RowId, record: Record) -> Result<()> {
        self.assert_active()?;
        let old = self.store.update(id, record)?;
        self.undo.push(Undo::Update(id, old));
        Ok(())
    }

    /// Delete a row within the transaction.
    pub fn delete(&mut self, id: RowId) -> Result<()> {
        self.assert_active()?;
        let old = self.store.delete(id)?;
        self.undo.push(Undo::Delete(id, old));
        Ok(())
    }

    /// Number of buffered mutations.
    pub fn pending_ops(&self) -> usize {
        self.undo.len()
    }

    /// Make all mutations permanent.
    pub fn commit(mut self) -> Result<()> {
        self.assert_active()?;
        self.undo.clear();
        self.state = TxnState::Committed;
        Ok(())
    }

    /// Revert all mutations, newest first.
    pub fn rollback(mut self) -> Result<()> {
        self.rollback_in_place()
    }

    fn rollback_in_place(&mut self) -> Result<()> {
        self.assert_active()?;
        while let Some(entry) = self.undo.pop() {
            match entry {
                Undo::Insert(id) => {
                    self.store.delete(id)?;
                }
                Undo::Update(id, old) => {
                    self.store.update(id, old)?;
                }
                Undo::Delete(id, old) => {
                    self.store.undelete(id, old)?;
                }
            }
        }
        self.state = TxnState::RolledBack;
        Ok(())
    }

    fn assert_active(&self) -> Result<()> {
        if self.state == TxnState::Active {
            Ok(())
        } else {
            Err(clinical_types::Error::invalid(format!(
                "transaction is {:?}, not active",
                self.state
            )))
        }
    }
}

impl Drop for Transaction<'_> {
    /// An uncommitted transaction rolls back on drop. Rollback errors
    /// here are unrecoverable logic errors (the undo log references
    /// rows we mutated ourselves), so they abort loudly in debug and
    /// are ignored in release rather than panicking across unwind.
    fn drop(&mut self) {
        if self.state == TxnState::Active {
            let result = self.rollback_in_place();
            debug_assert!(result.is_ok(), "rollback-on-drop failed: {result:?}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clinical_types::{DataType, FieldDef, Schema, Value};

    fn store() -> RowStore {
        RowStore::new(
            Schema::new(vec![
                FieldDef::required("Id", DataType::Int),
                FieldDef::nullable("X", DataType::Float),
            ])
            .unwrap(),
        )
    }

    fn rec(id: i64, x: f64) -> Record {
        Record::new(vec![Value::Int(id), Value::Float(x)])
    }

    #[test]
    fn commit_makes_changes_visible() {
        let s = store();
        let mut txn = Transaction::begin(&s);
        let a = txn.insert(rec(1, 1.0)).unwrap();
        txn.insert(rec(2, 2.0)).unwrap();
        txn.update(a, rec(1, 9.0)).unwrap();
        assert_eq!(txn.pending_ops(), 3);
        txn.commit().unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a).unwrap().unwrap(), rec(1, 9.0));
    }

    #[test]
    fn rollback_reverts_everything_in_reverse_order() {
        let s = store();
        let keep = s.insert(rec(0, 0.5)).unwrap();
        let mut txn = Transaction::begin(&s);
        let a = txn.insert(rec(1, 1.0)).unwrap();
        txn.update(keep, rec(0, 7.7)).unwrap();
        txn.update(a, rec(1, 2.0)).unwrap();
        txn.delete(keep).unwrap();
        txn.rollback().unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(keep).unwrap().unwrap(), rec(0, 0.5));
        assert_eq!(s.get(a).unwrap(), None);
    }

    #[test]
    fn drop_without_commit_rolls_back() {
        let s = store();
        {
            let mut txn = Transaction::begin(&s);
            txn.insert(rec(1, 1.0)).unwrap();
        }
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn committed_transaction_rejects_further_ops() {
        let s = store();
        let mut txn = Transaction::begin(&s);
        txn.insert(rec(1, 1.0)).unwrap();
        // Move out with commit; must build a new txn for more work.
        txn.commit().unwrap();
        let mut txn2 = Transaction::begin(&s);
        assert!(txn2.insert(rec(2, 2.0)).is_ok());
        txn2.commit().unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn failed_operation_leaves_log_consistent() {
        let s = store();
        let mut txn = Transaction::begin(&s);
        txn.insert(rec(1, 1.0)).unwrap();
        // Updating a non-existent row fails but must not corrupt undo.
        assert!(txn.update(999, rec(9, 9.0)).is_err());
        txn.rollback().unwrap();
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn delete_then_rollback_restores_row_at_same_id() {
        let s = store();
        let id = s.insert(rec(4, 4.0)).unwrap();
        {
            let mut txn = Transaction::begin(&s);
            txn.delete(id).unwrap();
            assert_eq!(s.get(id).unwrap(), None);
        }
        assert_eq!(s.get(id).unwrap().unwrap(), rec(4, 4.0));
    }
}
