//! Secondary indexes over a [`crate::RowStore`].
//!
//! Two flavours, matching the two access patterns of the Reporting
//! component: [`HashIndex`] for point lookups (patient by id) and
//! [`BTreeIndex`] for ordered range scans (visits by date, FBG bands).
//! Indexes are value → row-id multimaps and are maintained by the
//! caller on every mutation; [`crate::QueryEngine`] consults them to
//! avoid full scans.

use crate::store::RowId;
use clinical_types::Value;
use obs::{LockRank, RankedRwLock};
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;
use std::sync::Arc;

/// Point-lookup index: value → set of row ids.
#[derive(Debug, Clone)]
pub struct HashIndex {
    map: Arc<RankedRwLock<HashMap<Value, Vec<RowId>>>>,
}

impl Default for HashIndex {
    fn default() -> Self {
        HashIndex {
            map: Arc::new(RankedRwLock::new(
                LockRank::Index,
                "oltp.index.map",
                HashMap::new(),
            )),
        }
    }
}

impl HashIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `id` under `key`.
    pub fn insert(&self, key: Value, id: RowId) {
        self.map.write().entry(key).or_default().push(id);
    }

    /// Remove the registration of `id` under `key`.
    pub fn remove(&self, key: &Value, id: RowId) {
        let mut map = self.map.write();
        if let Some(ids) = map.get_mut(key) {
            ids.retain(|x| *x != id);
            if ids.is_empty() {
                map.remove(key);
            }
        }
    }

    /// Row ids registered under `key`.
    pub fn lookup(&self, key: &Value) -> Vec<RowId> {
        self.map.read().get(key).cloned().unwrap_or_default()
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.read().len()
    }
}

/// Ordered index: value → set of row ids, supporting range scans
/// under the total [`Value`] order.
#[derive(Debug, Clone)]
pub struct BTreeIndex {
    map: Arc<RankedRwLock<BTreeMap<Value, Vec<RowId>>>>,
}

impl Default for BTreeIndex {
    fn default() -> Self {
        BTreeIndex {
            map: Arc::new(RankedRwLock::new(
                LockRank::Index,
                "oltp.index.map",
                BTreeMap::new(),
            )),
        }
    }
}

impl BTreeIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `id` under `key`.
    pub fn insert(&self, key: Value, id: RowId) {
        self.map.write().entry(key).or_default().push(id);
    }

    /// Remove the registration of `id` under `key`.
    pub fn remove(&self, key: &Value, id: RowId) {
        let mut map = self.map.write();
        if let Some(ids) = map.get_mut(key) {
            ids.retain(|x| *x != id);
            if ids.is_empty() {
                map.remove(key);
            }
        }
    }

    /// Row ids registered under exactly `key`.
    pub fn lookup(&self, key: &Value) -> Vec<RowId> {
        self.map.read().get(key).cloned().unwrap_or_default()
    }

    /// Row ids with keys in `[lo, hi)`; `None` bounds are open ends.
    pub fn range(&self, lo: Option<&Value>, hi: Option<&Value>) -> Vec<RowId> {
        let map = self.map.read();
        let lower = lo.map_or(Bound::Unbounded, |v| Bound::Included(v.clone()));
        let upper = hi.map_or(Bound::Unbounded, |v| Bound::Excluded(v.clone()));
        map.range((lower, upper))
            .flat_map(|(_, ids)| ids.iter().copied())
            .collect()
    }

    /// Smallest and largest keys currently present.
    pub fn key_bounds(&self) -> Option<(Value, Value)> {
        let map = self.map.read();
        let first = map.keys().next()?.clone();
        let last = map.keys().next_back()?.clone();
        Some((first, last))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_index_multimap_semantics() {
        let idx = HashIndex::new();
        idx.insert(Value::Text("F".into()), 1);
        idx.insert(Value::Text("F".into()), 2);
        idx.insert(Value::Text("M".into()), 3);
        assert_eq!(idx.lookup(&Value::Text("F".into())), vec![1, 2]);
        assert_eq!(idx.distinct_keys(), 2);
        idx.remove(&Value::Text("F".into()), 1);
        assert_eq!(idx.lookup(&Value::Text("F".into())), vec![2]);
        idx.remove(&Value::Text("F".into()), 2);
        assert_eq!(idx.distinct_keys(), 1);
    }

    #[test]
    fn hash_index_missing_key_is_empty() {
        let idx = HashIndex::new();
        assert!(idx.lookup(&Value::Int(9)).is_empty());
        idx.remove(&Value::Int(9), 1); // no-op, must not panic
    }

    #[test]
    fn btree_range_half_open() {
        let idx = BTreeIndex::new();
        for i in 0..10i64 {
            idx.insert(Value::Int(i), i as RowId);
        }
        let ids = idx.range(Some(&Value::Int(3)), Some(&Value::Int(7)));
        assert_eq!(ids, vec![3, 4, 5, 6]);
    }

    #[test]
    fn btree_open_bounds() {
        let idx = BTreeIndex::new();
        for i in 0..5i64 {
            idx.insert(Value::Int(i), i as RowId);
        }
        assert_eq!(idx.range(None, None).len(), 5);
        assert_eq!(idx.range(Some(&Value::Int(3)), None), vec![3, 4]);
        assert_eq!(idx.range(None, Some(&Value::Int(2))), vec![0, 1]);
    }

    #[test]
    fn btree_mixed_numeric_keys_order_numerically() {
        let idx = BTreeIndex::new();
        idx.insert(Value::Float(1.5), 10);
        idx.insert(Value::Int(1), 11);
        idx.insert(Value::Int(2), 12);
        let ids = idx.range(Some(&Value::Int(1)), Some(&Value::Int(2)));
        assert_eq!(ids, vec![11, 10]);
    }

    #[test]
    fn btree_key_bounds() {
        let idx = BTreeIndex::new();
        assert!(idx.key_bounds().is_none());
        idx.insert(Value::Int(5), 1);
        idx.insert(Value::Int(1), 2);
        let (lo, hi) = idx.key_bounds().unwrap();
        assert_eq!(lo, Value::Int(1));
        assert_eq!(hi, Value::Int(5));
    }
}
