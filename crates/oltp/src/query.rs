//! Predicate selection, projection and flat group-by.
//!
//! This is the DG-SQL-style access path of the original DGMS: queries
//! run directly against transactional rows, with at most single-column
//! index acceleration. Multivariate aggregation here costs a full
//! hash group-by per query — exactly the cost the paper's warehouse
//! layer amortises, and what `bench/olap_vs_oltp` measures.

use crate::index::{BTreeIndex, HashIndex};
use crate::store::{RowId, RowStore};
use clinical_types::{Error, Record, Result, Value};
use std::collections::HashMap;

/// A row predicate over named columns.
///
/// SQL-style null semantics: any comparison against a NULL cell is
/// false; only [`Predicate::IsNull`] matches missing measurements.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Matches every row.
    True,
    /// `column = value`
    Eq(String, Value),
    /// `column <> value` (false for NULL cells).
    Ne(String, Value),
    /// `column < value`
    Lt(String, Value),
    /// `column >= value`
    Ge(String, Value),
    /// `lo <= column < hi`
    Between(String, Value, Value),
    /// `column IS NULL`
    IsNull(String),
    /// `column IS NOT NULL`
    NotNull(String),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation (NULL comparisons stay false, as in SQL `NOT`
    /// over three-valued logic collapsed to two values).
    Not(Box<Predicate>),
}

impl Predicate {
    /// Convenience: equality on a column.
    pub fn eq(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Eq(column.into(), value.into())
    }

    /// Convenience: conjunction.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Convenience: disjunction.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Evaluate against a record described by `schema`.
    pub fn eval(&self, schema: &clinical_types::Schema, record: &Record) -> Result<bool> {
        let cell = |name: &str| -> Result<&Value> { Ok(&record.values()[schema.index_of(name)?]) };
        Ok(match self {
            Predicate::True => true,
            Predicate::Eq(c, v) => {
                let x = cell(c)?;
                !x.is_null() && x == v
            }
            Predicate::Ne(c, v) => {
                let x = cell(c)?;
                !x.is_null() && x != v
            }
            Predicate::Lt(c, v) => {
                let x = cell(c)?;
                !x.is_null() && x < v
            }
            Predicate::Ge(c, v) => {
                let x = cell(c)?;
                !x.is_null() && x >= v
            }
            Predicate::Between(c, lo, hi) => {
                let x = cell(c)?;
                !x.is_null() && x >= lo && x < hi
            }
            Predicate::IsNull(c) => cell(c)?.is_null(),
            Predicate::NotNull(c) => !cell(c)?.is_null(),
            Predicate::And(a, b) => a.eval(schema, record)? && b.eval(schema, record)?,
            Predicate::Or(a, b) => a.eval(schema, record)? || b.eval(schema, record)?,
            Predicate::Not(p) => !p.eval(schema, record)?,
        })
    }
}

/// Aggregate functions for flat group-by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// Row count (NULLs in the measure column still count rows).
    Count,
    /// Sum of the measure column, skipping NULLs.
    Sum,
    /// Mean of the measure column, skipping NULLs.
    Avg,
    /// Minimum, skipping NULLs.
    Min,
    /// Maximum, skipping NULLs.
    Max,
}

/// Result of a flat group-by: one row per distinct key combination.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupByResult {
    /// Grouping column names, in request order.
    pub group_columns: Vec<String>,
    /// `(key values, aggregate)` — unordered.
    pub rows: Vec<(Vec<Value>, f64)>,
}

impl GroupByResult {
    /// Aggregate value for an exact key combination.
    pub fn get(&self, key: &[Value]) -> Option<f64> {
        self.rows.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

/// Query engine over a [`RowStore`] with registered secondary indexes.
pub struct QueryEngine {
    store: RowStore,
    hash_indexes: HashMap<String, HashIndex>,
    btree_indexes: HashMap<String, BTreeIndex>,
}

impl QueryEngine {
    /// Engine over `store` with no indexes.
    pub fn new(store: RowStore) -> Self {
        QueryEngine {
            store,
            hash_indexes: HashMap::new(),
            btree_indexes: HashMap::new(),
        }
    }

    /// Underlying store.
    pub fn store(&self) -> &RowStore {
        &self.store
    }

    /// Build (or rebuild) a hash index over `column` from current rows.
    pub fn create_hash_index(&mut self, column: &str) -> Result<()> {
        let idx_pos = self.store.schema().index_of(column)?;
        let index = HashIndex::new();
        self.store.for_each(|id, rec| {
            let v = &rec.values()[idx_pos];
            if !v.is_null() {
                index.insert(v.clone(), id);
            }
        })?;
        self.hash_indexes.insert(column.to_string(), index);
        Ok(())
    }

    /// Build (or rebuild) a B-tree index over `column`.
    pub fn create_btree_index(&mut self, column: &str) -> Result<()> {
        let idx_pos = self.store.schema().index_of(column)?;
        let index = BTreeIndex::new();
        self.store.for_each(|id, rec| {
            let v = &rec.values()[idx_pos];
            if !v.is_null() {
                index.insert(v.clone(), id);
            }
        })?;
        self.btree_indexes.insert(column.to_string(), index);
        Ok(())
    }

    /// Insert through the engine, maintaining indexes.
    pub fn insert(&self, record: Record) -> Result<RowId> {
        let id = self.store.insert(record.clone())?;
        self.index_row(&record, id, true)?;
        Ok(id)
    }

    /// Delete through the engine, maintaining indexes.
    pub fn delete(&self, id: RowId) -> Result<Record> {
        let old = self.store.delete(id)?;
        self.index_row(&old, id, false)?;
        Ok(old)
    }

    fn index_row(&self, record: &Record, id: RowId, add: bool) -> Result<()> {
        let schema = self.store.schema();
        for (col, idx) in &self.hash_indexes {
            let v = &record.values()[schema.index_of(col)?];
            if !v.is_null() {
                if add {
                    idx.insert(v.clone(), id);
                } else {
                    idx.remove(v, id);
                }
            }
        }
        for (col, idx) in &self.btree_indexes {
            let v = &record.values()[schema.index_of(col)?];
            if !v.is_null() {
                if add {
                    idx.insert(v.clone(), id);
                } else {
                    idx.remove(v, id);
                }
            }
        }
        Ok(())
    }

    /// Candidate row ids from an index for a predicate, if any part of
    /// it is indexable. Returned candidates are a superset of matches
    /// restricted by that part; the caller re-verifies the full
    /// predicate.
    fn index_candidates(&self, predicate: &Predicate) -> Option<Vec<RowId>> {
        match predicate {
            Predicate::Eq(c, v) => {
                if let Some(idx) = self.hash_indexes.get(c) {
                    return Some(idx.lookup(v));
                }
                self.btree_indexes.get(c).map(|idx| idx.lookup(v))
            }
            Predicate::Lt(c, v) => self
                .btree_indexes
                .get(c)
                .map(|idx| idx.range(None, Some(v))),
            Predicate::Ge(c, v) => self
                .btree_indexes
                .get(c)
                .map(|idx| idx.range(Some(v), None)),
            Predicate::Between(c, lo, hi) => self
                .btree_indexes
                .get(c)
                .map(|idx| idx.range(Some(lo), Some(hi))),
            // For a conjunction the first indexable side prunes; the
            // full predicate is re-checked on the candidates anyway.
            Predicate::And(a, b) => self
                .index_candidates(a)
                .or_else(|| self.index_candidates(b)),
            _ => None,
        }
    }

    /// Select all rows matching `predicate`.
    pub fn select(&self, predicate: &Predicate) -> Result<Vec<(RowId, Record)>> {
        let schema = self.store.schema();
        if let Some(candidates) = self.index_candidates(predicate) {
            let mut out = Vec::with_capacity(candidates.len());
            for id in candidates {
                if let Some(rec) = self.store.get(id)? {
                    if predicate.eval(schema, &rec)? {
                        out.push((id, rec));
                    }
                }
            }
            out.sort_by_key(|(id, _)| *id);
            return Ok(out);
        }
        let mut out = Vec::new();
        // Full scan fallback.
        let rows = self.store.scan()?;
        for (id, rec) in rows {
            if predicate.eval(schema, &rec)? {
                out.push((id, rec));
            }
        }
        Ok(out)
    }

    /// Count rows matching `predicate`.
    pub fn count(&self, predicate: &Predicate) -> Result<usize> {
        Ok(self.select(predicate)?.len())
    }

    /// Project matching rows onto `columns`.
    pub fn project(&self, predicate: &Predicate, columns: &[&str]) -> Result<Vec<Vec<Value>>> {
        let schema = self.store.schema();
        let idxs: Vec<usize> = columns
            .iter()
            .map(|c| schema.index_of(c))
            .collect::<Result<_>>()?;
        Ok(self
            .select(predicate)?
            .into_iter()
            .map(|(_, rec)| idxs.iter().map(|&i| rec.values()[i].clone()).collect())
            .collect())
    }

    /// Flat hash group-by over the matching rows: group by
    /// `group_columns`, aggregate `measure` with `agg`. `measure` may
    /// be `None` only for [`AggFn::Count`]. Rows with a NULL grouping
    /// cell go to a `NULL` key group.
    pub fn group_by(
        &self,
        predicate: &Predicate,
        group_columns: &[&str],
        agg: AggFn,
        measure: Option<&str>,
    ) -> Result<GroupByResult> {
        let schema = self.store.schema();
        let group_idx: Vec<usize> = group_columns
            .iter()
            .map(|c| schema.index_of(c))
            .collect::<Result<_>>()?;
        let measure_idx = match (agg, measure) {
            (AggFn::Count, None) => None,
            (AggFn::Count, Some(m)) => Some(schema.index_of(m)?),
            (_, Some(m)) => Some(schema.index_of(m)?),
            (_, None) => return Err(Error::invalid(format!("{agg:?} requires a measure column"))),
        };

        #[derive(Default)]
        struct Acc {
            count: usize,
            sum: f64,
            min: f64,
            max: f64,
            seen: bool,
        }
        let mut groups: HashMap<Vec<Value>, Acc> = HashMap::new();
        for (_, rec) in self.select(predicate)? {
            let key: Vec<Value> = group_idx.iter().map(|&i| rec.values()[i].clone()).collect();
            let acc = groups.entry(key).or_default();
            match measure_idx {
                None => acc.count += 1,
                Some(mi) => {
                    let v = rec.values()[mi].as_f64();
                    match (agg, v) {
                        (AggFn::Count, _) => acc.count += 1,
                        (_, None) => {} // NULL measure skipped
                        (_, Some(x)) => {
                            acc.count += 1;
                            acc.sum += x;
                            if !acc.seen || x < acc.min {
                                acc.min = x;
                            }
                            if !acc.seen || x > acc.max {
                                acc.max = x;
                            }
                            acc.seen = true;
                        }
                    }
                }
            }
        }

        let rows = groups
            .into_iter()
            .map(|(key, acc)| {
                let value = match agg {
                    AggFn::Count => acc.count as f64,
                    AggFn::Sum => acc.sum,
                    AggFn::Avg => {
                        if acc.count == 0 {
                            f64::NAN
                        } else {
                            acc.sum / acc.count as f64
                        }
                    }
                    AggFn::Min => {
                        if acc.seen {
                            acc.min
                        } else {
                            f64::NAN
                        }
                    }
                    AggFn::Max => {
                        if acc.seen {
                            acc.max
                        } else {
                            f64::NAN
                        }
                    }
                };
                (key, value)
            })
            .collect();
        Ok(GroupByResult {
            group_columns: group_columns.iter().map(|s| s.to_string()).collect(),
            rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clinical_types::{DataType, FieldDef, Schema};

    fn engine() -> QueryEngine {
        let schema = Schema::new(vec![
            FieldDef::required("Id", DataType::Int),
            FieldDef::nullable("Gender", DataType::Text),
            FieldDef::nullable("Age", DataType::Int),
            FieldDef::nullable("FBG", DataType::Float),
        ])
        .unwrap();
        let store = RowStore::new(schema);
        let engine = QueryEngine::new(store);
        type DemoRow = (i64, Option<&'static str>, Option<i64>, Option<f64>);
        let rows: Vec<DemoRow> = vec![
            (1, Some("F"), Some(72), Some(5.2)),
            (2, Some("M"), Some(74), Some(7.4)),
            (3, Some("F"), Some(76), Some(6.5)),
            (4, Some("M"), Some(81), None),
            (5, None, Some(68), Some(5.9)),
            (6, Some("F"), None, Some(8.0)),
        ];
        for (id, g, a, f) in rows {
            engine
                .insert(Record::new(vec![
                    Value::Int(id),
                    g.map(Value::from).unwrap_or(Value::Null),
                    a.map(Value::Int).unwrap_or(Value::Null),
                    f.map(Value::Float).unwrap_or(Value::Null),
                ]))
                .unwrap();
        }
        engine
    }

    #[test]
    fn eq_predicate_selects_matching_rows() {
        let e = engine();
        let rows = e.select(&Predicate::eq("Gender", "F")).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn null_cells_never_match_comparisons() {
        let e = engine();
        // Row 5 has NULL gender: neither Eq nor Ne matches it.
        assert_eq!(e.count(&Predicate::eq("Gender", "F")).unwrap(), 3);
        assert_eq!(
            e.count(&Predicate::Ne("Gender".into(), "F".into()))
                .unwrap(),
            2
        );
        assert_eq!(e.count(&Predicate::IsNull("Gender".into())).unwrap(), 1);
        assert_eq!(e.count(&Predicate::NotNull("Gender".into())).unwrap(), 5);
    }

    #[test]
    fn between_is_half_open() {
        let e = engine();
        let p = Predicate::Between("Age".into(), Value::Int(72), Value::Int(76));
        // Ages 72, 74 — not 76 (exclusive hi) and not NULL.
        assert_eq!(e.count(&p).unwrap(), 2);
    }

    #[test]
    fn and_or_not_combinators() {
        let e = engine();
        let female_over_73 =
            Predicate::eq("Gender", "F").and(Predicate::Ge("Age".into(), Value::Int(73)));
        assert_eq!(e.count(&female_over_73).unwrap(), 1);
        let either = Predicate::eq("Gender", "M").or(Predicate::eq("Gender", "F"));
        assert_eq!(e.count(&either).unwrap(), 5);
        let not_f = Predicate::Not(Box::new(Predicate::eq("Gender", "F")));
        // NOT collapses: NULL gender row matches NOT(Eq) here.
        assert_eq!(e.count(&not_f).unwrap(), 3);
    }

    #[test]
    fn unknown_column_is_an_error() {
        let e = engine();
        assert!(e.select(&Predicate::eq("Nope", 1)).is_err());
    }

    #[test]
    fn hash_index_accelerated_select_agrees_with_scan() {
        let mut e = engine();
        let scan = e.select(&Predicate::eq("Gender", "M")).unwrap();
        e.create_hash_index("Gender").unwrap();
        let indexed = e.select(&Predicate::eq("Gender", "M")).unwrap();
        assert_eq!(scan, indexed);
    }

    #[test]
    fn btree_index_accelerated_range_agrees_with_scan() {
        let mut e = engine();
        let p = Predicate::Between("Age".into(), Value::Int(70), Value::Int(80));
        let scan = e.select(&p).unwrap();
        e.create_btree_index("Age").unwrap();
        let indexed = e.select(&p).unwrap();
        assert_eq!(scan, indexed);
        // And the conjunctive case re-verifies the residual predicate.
        let conj = p.and(Predicate::eq("Gender", "F"));
        assert_eq!(e.count(&conj).unwrap(), 2);
    }

    #[test]
    fn indexes_track_inserts_and_deletes() {
        let mut e = engine();
        e.create_hash_index("Gender").unwrap();
        let id = e
            .insert(Record::new(vec![
                Value::Int(7),
                Value::from("F"),
                Value::Int(50),
                Value::Null,
            ]))
            .unwrap();
        assert_eq!(e.count(&Predicate::eq("Gender", "F")).unwrap(), 4);
        e.delete(id).unwrap();
        assert_eq!(e.count(&Predicate::eq("Gender", "F")).unwrap(), 3);
    }

    #[test]
    fn projection_returns_requested_columns() {
        let e = engine();
        let rows = e
            .project(&Predicate::eq("Gender", "M"), &["Id", "Age"])
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 2);
    }

    #[test]
    fn group_by_count() {
        let e = engine();
        let g = e
            .group_by(&Predicate::True, &["Gender"], AggFn::Count, None)
            .unwrap();
        assert_eq!(g.get(&[Value::from("F")]), Some(3.0));
        assert_eq!(g.get(&[Value::from("M")]), Some(2.0));
        assert_eq!(g.get(&[Value::Null]), Some(1.0));
    }

    #[test]
    fn group_by_avg_skips_null_measures() {
        let e = engine();
        let g = e
            .group_by(&Predicate::True, &["Gender"], AggFn::Avg, Some("FBG"))
            .unwrap();
        // Males: 7.4 and NULL → avg 7.4.
        assert_eq!(g.get(&[Value::from("M")]), Some(7.4));
        // Females: 5.2, 6.5, 8.0.
        let f = g.get(&[Value::from("F")]).unwrap();
        assert!((f - (5.2 + 6.5 + 8.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn group_by_min_max_sum() {
        let e = engine();
        let min = e
            .group_by(&Predicate::True, &[], AggFn::Min, Some("FBG"))
            .unwrap();
        assert_eq!(min.get(&[]), Some(5.2));
        let max = e
            .group_by(&Predicate::True, &[], AggFn::Max, Some("FBG"))
            .unwrap();
        assert_eq!(max.get(&[]), Some(8.0));
        let sum = e
            .group_by(&Predicate::True, &[], AggFn::Sum, Some("FBG"))
            .unwrap();
        assert!((sum.get(&[]).unwrap() - 33.0).abs() < 1e-9);
    }

    #[test]
    fn non_count_aggregate_requires_measure() {
        let e = engine();
        assert!(e.group_by(&Predicate::True, &[], AggFn::Avg, None).is_err());
    }

    #[test]
    fn multi_column_group_keys() {
        let e = engine();
        let g = e
            .group_by(&Predicate::True, &["Gender", "Age"], AggFn::Count, None)
            .unwrap();
        assert_eq!(g.get(&[Value::from("F"), Value::Int(72)]), Some(1.0));
        assert_eq!(g.rows.len(), 6); // every row is its own key here
    }
}
