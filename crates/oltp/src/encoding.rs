//! Binary row encoding.
//!
//! Rows are stored as compact byte strings: one tag byte per value
//! followed by a fixed- or length-prefixed payload. The codec is
//! self-describing (the tag carries the type), so decoding does not
//! need the schema — which keeps tombstoned/legacy rows readable after
//! schema evolution.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use clinical_types::{Date, Error, Record, Result, Value};

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_TEXT: u8 = 3;
const TAG_BOOL_FALSE: u8 = 4;
const TAG_BOOL_TRUE: u8 = 5;
const TAG_DATE: u8 = 6;

/// Encode a record into its binary representation.
pub fn encode_row(record: &Record) -> Bytes {
    let mut buf = BytesMut::with_capacity(record.len() * 9);
    buf.put_u16_le(record.len() as u16);
    for v in record.values() {
        match v {
            Value::Null => buf.put_u8(TAG_NULL),
            Value::Int(i) => {
                buf.put_u8(TAG_INT);
                buf.put_i64_le(*i);
            }
            Value::Float(f) => {
                buf.put_u8(TAG_FLOAT);
                buf.put_f64_le(*f);
            }
            Value::Text(s) => {
                buf.put_u8(TAG_TEXT);
                buf.put_u32_le(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
            Value::Bool(false) => buf.put_u8(TAG_BOOL_FALSE),
            Value::Bool(true) => buf.put_u8(TAG_BOOL_TRUE),
            Value::Date(d) => {
                buf.put_u8(TAG_DATE);
                buf.put_i64_le(d.days_since_epoch());
            }
        }
    }
    buf.freeze()
}

/// Decode a binary row back into a record.
pub fn decode_row(bytes: &Bytes) -> Result<Record> {
    let mut buf = bytes.clone();
    if buf.remaining() < 2 {
        return Err(Error::invalid("row too short for header"));
    }
    let n = buf.get_u16_le() as usize;
    let mut values = Vec::with_capacity(n);
    for i in 0..n {
        if buf.remaining() < 1 {
            return Err(Error::invalid(format!("row truncated at value {i}")));
        }
        let tag = buf.get_u8();
        let value = match tag {
            TAG_NULL => Value::Null,
            TAG_INT => {
                ensure(&buf, 8, i)?;
                Value::Int(buf.get_i64_le())
            }
            TAG_FLOAT => {
                ensure(&buf, 8, i)?;
                Value::Float(buf.get_f64_le())
            }
            TAG_TEXT => {
                ensure(&buf, 4, i)?;
                let len = buf.get_u32_le() as usize;
                ensure(&buf, len, i)?;
                let raw = buf.copy_to_bytes(len);
                let s = std::str::from_utf8(&raw)
                    .map_err(|_| Error::invalid(format!("invalid UTF-8 in value {i}")))?;
                Value::Text(s.to_string())
            }
            TAG_BOOL_FALSE => Value::Bool(false),
            TAG_BOOL_TRUE => Value::Bool(true),
            TAG_DATE => {
                ensure(&buf, 8, i)?;
                Value::Date(Date::from_days_since_epoch(buf.get_i64_le()))
            }
            other => return Err(Error::invalid(format!("unknown value tag {other}"))),
        };
        values.push(value);
    }
    if buf.has_remaining() {
        return Err(Error::invalid("trailing bytes after row payload"));
    }
    Ok(Record::new(values))
}

fn ensure(buf: &Bytes, need: usize, value_idx: usize) -> Result<()> {
    if buf.remaining() < need {
        Err(Error::invalid(format!(
            "row truncated in value {value_idx}"
        )))
    } else {
        Ok(())
    }
}

/// IEEE CRC-32 (polynomial `0xEDB88320`), table-driven and std-only.
///
/// The WAL's original checksum was a positional byte sum
/// (`acc*31 + b`), which a crafted two-byte corruption can defeat:
/// adding `+1` to one byte and `-31` to the next leaves the sum
/// unchanged. CRC-32 detects all single-byte errors, all adjacent
/// two-byte errors and every burst up to 32 bits.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    });
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn crc32_detects_compensating_byte_pairs() {
        // The +1/-31 pair that fools the legacy positional sum.
        let clean = [10u8, 200, 130, 40];
        let mut tampered = clean;
        tampered[1] += 1;
        tampered[2] -= 31;
        assert_ne!(crc32(&clean), crc32(&tampered));
    }

    fn sample_record() -> Record {
        Record::new(vec![
            Value::Int(42),
            Value::Null,
            Value::Float(5.5),
            Value::Text("preDiabetic".into()),
            Value::Bool(true),
            Value::Bool(false),
            Value::Date(Date::new(2013, 4, 9).unwrap()),
        ])
    }

    #[test]
    fn round_trip_preserves_values() {
        let rec = sample_record();
        let decoded = decode_row(&encode_row(&rec)).unwrap();
        assert_eq!(decoded, rec);
    }

    #[test]
    fn empty_record_round_trips() {
        let rec = Record::new(vec![]);
        assert_eq!(decode_row(&encode_row(&rec)).unwrap(), rec);
    }

    #[test]
    fn truncated_rows_are_rejected() {
        let bytes = encode_row(&sample_record());
        for cut in [0, 1, 3, bytes.len() - 1] {
            let partial = bytes.slice(0..cut);
            assert!(decode_row(&partial).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut raw = encode_row(&sample_record()).to_vec();
        raw.push(0xFF);
        assert!(decode_row(&Bytes::from(raw)).is_err());
    }

    #[test]
    fn unknown_tag_is_rejected() {
        // Header says 1 value, then a bogus tag.
        let raw = Bytes::from(vec![1u8, 0u8, 99u8]);
        assert!(decode_row(&raw).is_err());
    }

    #[test]
    fn unicode_text_round_trips() {
        let rec = Record::new(vec![Value::Text("µmol/L — naïve".into())]);
        assert_eq!(decode_row(&encode_row(&rec)).unwrap(), rec);
    }

    proptest! {
        #[test]
        fn arbitrary_rows_round_trip(
            ints in proptest::collection::vec(any::<i64>(), 0..5),
            floats in proptest::collection::vec(any::<f64>().prop_filter("no NaN", |f| !f.is_nan()), 0..5),
            texts in proptest::collection::vec(".*", 0..4),
        ) {
            let mut values: Vec<Value> = Vec::new();
            values.extend(ints.into_iter().map(Value::Int));
            values.extend(floats.into_iter().map(Value::Float));
            values.extend(texts.into_iter().map(Value::Text));
            values.push(Value::Null);
            let rec = Record::new(values);
            let decoded = decode_row(&encode_row(&rec)).unwrap();
            prop_assert_eq!(decoded, rec);
        }
    }
}
