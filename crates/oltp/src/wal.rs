//! Write-ahead log persistence for the row store.
//!
//! The paper positions the warehouse on top of existing operational
//! stores; a credible operational store must survive a process crash.
//! [`DurableStore`] wraps a [`RowStore`] and appends every mutation to
//! an append-only log before applying it; [`DurableStore::recover`]
//! rebuilds the store by replaying the log.
//!
//! Log record layout (little-endian):
//!
//! ```text
//! [magic: 0xD5 'W' 'L'][version: u8]        — v2 file header
//! [op: u8][row_id: u64][payload_len: u32][payload…][checksum: u32]
//! ```
//!
//! Format v2 checksums each record body with IEEE CRC-32
//! ([`crate::encoding::crc32`]). Format v1 files — no header, records
//! checksummed with a positional byte sum — are still readable:
//! [`DurableStore::recover`] detects the missing header (the magic
//! byte `0xD5` is not a valid v1 op tag), replays the legacy records
//! and rewrites the log in v2 so subsequent appends are uniform.
//! Replay stops cleanly at the first truncated or corrupt record
//! (torn tail after a crash), keeping everything before it.
//!
//! Fault injection: the `wal.append`, `wal.flush` and `wal.recover`
//! failpoints sit exactly where the underlying file I/O can fail, so
//! chaos tests can exercise the same error paths a full disk or a
//! crash would.

use crate::encoding::{crc32, decode_row, encode_row};
use crate::store::{RowId, RowStore};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use clinical_types::{Error, Record, Result, Schema};
use obs::{LockRank, RankedMutex};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const OP_INSERT: u8 = 1;
const OP_UPDATE: u8 = 2;
const OP_DELETE: u8 = 3;

/// v2 file header: three magic bytes (the first of which can never be
/// a valid v1 op tag) followed by the format version byte.
const WAL_MAGIC: [u8; 3] = [0xD5, b'W', b'L'];
/// Current log-format version.
const WAL_VERSION: u8 = 2;

/// The checksum algorithm a log (or record) was written with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WalFormat {
    /// Headerless legacy format, positional-sum checksum.
    V1,
    /// Headered format, CRC-32 checksum.
    V2,
}

fn map_fault(e: fault::FaultError) -> Error {
    Error::invalid(e.to_string())
}

/// One logged operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Row inserted at the given id.
    Insert(RowId, Record),
    /// Row replaced at the given id.
    Update(RowId, Record),
    /// Row deleted at the given id.
    Delete(RowId),
}

/// The legacy v1 record checksum: a positional byte sum. Weak — a
/// two-byte corruption of `+1` at position `i` and `-31` at `i+1`
/// cancels out — which is why v2 moved to CRC-32.
fn legacy_checksum(bytes: &[u8]) -> u32 {
    bytes.iter().fold(0u32, |acc, &b| {
        acc.wrapping_mul(31).wrapping_add(u32::from(b))
    })
}

fn record_checksum(format: WalFormat, bytes: &[u8]) -> u32 {
    match format {
        WalFormat::V1 => legacy_checksum(bytes),
        WalFormat::V2 => crc32(bytes),
    }
}

fn encode_op_with(op: &WalOp, format: WalFormat) -> Bytes {
    let (tag, id, payload) = match op {
        WalOp::Insert(id, rec) => (OP_INSERT, *id, encode_row(rec)),
        WalOp::Update(id, rec) => (OP_UPDATE, *id, encode_row(rec)),
        WalOp::Delete(id) => (OP_DELETE, *id, Bytes::new()),
    };
    let mut buf = BytesMut::with_capacity(17 + payload.len());
    buf.put_u8(tag);
    buf.put_u64_le(id);
    buf.put_u32_le(payload.len() as u32);
    buf.put_slice(&payload);
    let crc = record_checksum(format, &buf);
    buf.put_u32_le(crc);
    buf.freeze()
}

fn encode_op(op: &WalOp) -> Bytes {
    encode_op_with(op, WalFormat::V2)
}

/// Split the optional v2 header off `buf`, identifying the format.
/// A leading `0xD5` that is not a complete, well-formed header is a
/// torn/corrupt header: no v1 record can start with it either.
fn split_header(buf: &mut Bytes) -> (WalFormat, bool) {
    if buf.remaining() == 0 || buf[0] != WAL_MAGIC[0] {
        return (WalFormat::V1, false);
    }
    if buf.remaining() >= 4 && buf[1] == WAL_MAGIC[1] && buf[2] == WAL_MAGIC[2] {
        let version = buf[3];
        buf.advance(4);
        if version == WAL_VERSION {
            return (WalFormat::V2, false);
        }
        // A future (or mangled) version: replay nothing, flag a tear
        // so recovery rewrites the file in the current format.
        return (WalFormat::V2, true);
    }
    (WalFormat::V2, true)
}

fn parse_records(mut buf: Bytes, format: WalFormat) -> (Vec<WalOp>, bool) {
    let mut ops = Vec::new();
    loop {
        if buf.remaining() == 0 {
            return (ops, false);
        }
        if buf.remaining() < 13 {
            return (ops, true);
        }
        let record_view = buf.clone();
        let tag = buf.get_u8();
        let id = buf.get_u64_le();
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < len + 4 {
            return (ops, true);
        }
        let payload = buf.copy_to_bytes(len);
        let stored_crc = buf.get_u32_le();
        let body = record_view.slice(0..13 + len);
        if record_checksum(format, &body) != stored_crc {
            return (ops, true);
        }
        let op = match tag {
            OP_INSERT => match decode_row(&payload) {
                Ok(rec) => WalOp::Insert(id, rec),
                Err(_) => return (ops, true),
            },
            OP_UPDATE => match decode_row(&payload) {
                Ok(rec) => WalOp::Update(id, rec),
                Err(_) => return (ops, true),
            },
            OP_DELETE => WalOp::Delete(id),
            _ => return (ops, true),
        };
        ops.push(op);
    }
}

/// Parse the ops in a log buffer — either format — stopping at the
/// first torn or corrupt record. Returns the ops plus whether a tail
/// (or a mangled header) was dropped.
pub fn parse_log(buf: Bytes) -> (Vec<WalOp>, bool) {
    let (ops, torn, _) = parse_log_versioned(buf);
    (ops, torn)
}

fn parse_log_versioned(mut buf: Bytes) -> (Vec<WalOp>, bool, WalFormat) {
    let (format, header_torn) = split_header(&mut buf);
    if header_torn {
        return (Vec::new(), true, format);
    }
    let (ops, torn) = parse_records(buf, format);
    (ops, torn, format)
}

/// A [`RowStore`] whose mutations are logged before they apply.
pub struct DurableStore {
    store: RowStore,
    log: RankedMutex<BufWriter<File>>,
    path: PathBuf,
}

/// The WAL writer lock — the innermost rank in the hierarchy, since
/// an append must serialise the buffered file write it protects.
fn wal_lock(log: BufWriter<File>) -> RankedMutex<BufWriter<File>> {
    RankedMutex::new(LockRank::Wal, "oltp.wal.log", log)
}

impl DurableStore {
    /// Create (or truncate) a store logging to `path`. The log is
    /// written in the current (v2) format, starting with the file
    /// header.
    pub fn create(schema: Schema, path: &Path) -> Result<DurableStore> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(|e| Error::invalid(format!("cannot create WAL {path:?}: {e}")))?;
        let mut log = BufWriter::new(file);
        log.write_all(&[WAL_MAGIC[0], WAL_MAGIC[1], WAL_MAGIC[2], WAL_VERSION])
            .map_err(|e| Error::invalid(format!("cannot write WAL header {path:?}: {e}")))?;
        Ok(DurableStore {
            store: RowStore::new(schema),
            log: wal_lock(log),
            path: path.to_path_buf(),
        })
    }

    /// Recover a store from an existing log — either format —
    /// replaying every intact record and reopening the log for
    /// appending. Legacy (v1) and torn logs are rewritten in the
    /// current format, so appends are uniformly v2 afterwards.
    /// Returns the store and whether a torn tail was discarded.
    pub fn recover(schema: Schema, path: &Path) -> Result<(DurableStore, bool)> {
        fault::point("wal.recover").map_err(map_fault)?;
        let mut raw = Vec::new();
        File::open(path)
            .map_err(|e| Error::invalid(format!("cannot open WAL {path:?}: {e}")))?
            .read_to_end(&mut raw)
            .map_err(|e| Error::invalid(format!("cannot read WAL {path:?}: {e}")))?;
        let (ops, torn, format) = parse_log_versioned(Bytes::from(raw));

        let store = RowStore::new(schema);
        for op in &ops {
            match op {
                WalOp::Insert(expected_id, rec) => {
                    let id = store.insert(rec.clone())?;
                    if id != *expected_id {
                        return Err(Error::invalid(format!(
                            "WAL replay drift: log says row {expected_id}, store allocated {id}"
                        )));
                    }
                }
                WalOp::Update(id, rec) => {
                    store.update(*id, rec.clone())?;
                }
                WalOp::Delete(id) => {
                    store.delete(*id)?;
                }
            }
        }

        // Rewrite the log to just the intact prefix (drops the torn
        // tail) in the current format, then reopen for append. Legacy
        // v1 logs are upgraded here even when intact: appending v2
        // records to a headerless v1 file would corrupt it.
        if torn || format == WalFormat::V1 {
            let mut file = OpenOptions::new()
                .write(true)
                .truncate(true)
                .open(path)
                .map_err(|e| Error::invalid(format!("cannot truncate WAL {path:?}: {e}")))?;
            file.write_all(&[WAL_MAGIC[0], WAL_MAGIC[1], WAL_MAGIC[2], WAL_VERSION])
                .map_err(|e| Error::invalid(format!("cannot rewrite WAL header: {e}")))?;
            for op in &ops {
                file.write_all(&encode_op(op))
                    .map_err(|e| Error::invalid(format!("cannot rewrite WAL: {e}")))?;
            }
        }
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| Error::invalid(format!("cannot reopen WAL {path:?}: {e}")))?;
        Ok((
            DurableStore {
                store,
                log: wal_lock(BufWriter::new(file)),
                path: path.to_path_buf(),
            },
            torn,
        ))
    }

    /// The in-memory store (reads go straight through).
    pub fn store(&self) -> &RowStore {
        &self.store
    }

    /// Log file location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append(&self, op: &WalOp) -> Result<()> {
        fault::point("wal.append").map_err(map_fault)?;
        let mut log = self.log.lock();
        log.write_all(&encode_op(op)) // lint:allow(A301, "the WAL lock exists to serialise this buffered file write; it is the innermost rank and nothing is acquired under it")
            .map_err(|e| Error::invalid(format!("WAL append failed: {e}")))?;
        Ok(())
    }

    /// Flush buffered log records to the OS.
    pub fn sync(&self) -> Result<()> {
        fault::point("wal.flush").map_err(map_fault)?;
        self.log
            .lock()
            .flush() // lint:allow(A301, "flushing the buffered writer is the WAL lock's whole job; innermost rank, nothing acquired under it")
            .map_err(|e| Error::invalid(format!("WAL flush failed: {e}")))
    }

    /// Logged insert. When the log append fails the allocated row is
    /// rolled back, so an I/O fault never leaves the in-memory store
    /// ahead of what recovery can replay.
    pub fn insert(&self, record: Record) -> Result<RowId> {
        // Validate (and allocate) first so the log never records a
        // mutation the store rejected.
        let id = self.store.insert(record.clone())?;
        if let Err(e) = self.append(&WalOp::Insert(id, record)) {
            let _ = self.store.rollback_insert(id);
            return Err(e);
        }
        Ok(id)
    }

    /// Logged update. A failed log append restores the previous
    /// record (see [`DurableStore::insert`]).
    pub fn update(&self, id: RowId, record: Record) -> Result<Record> {
        let old = self.store.update(id, record.clone())?;
        if let Err(e) = self.append(&WalOp::Update(id, record)) {
            let _ = self.store.update(id, old);
            return Err(e);
        }
        Ok(old)
    }

    /// Logged delete. A failed log append restores the tombstoned row
    /// (see [`DurableStore::insert`]).
    pub fn delete(&self, id: RowId) -> Result<Record> {
        let old = self.store.delete(id)?;
        if let Err(e) = self.append(&WalOp::Delete(id)) {
            let _ = self.store.undelete(id, old);
            return Err(e);
        }
        Ok(old)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clinical_types::{DataType, FieldDef, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            FieldDef::required("Id", DataType::Int),
            FieldDef::nullable("X", DataType::Float),
        ])
        .unwrap()
    }

    fn rec(id: i64, x: f64) -> Record {
        Record::new(vec![Value::Int(id), Value::Float(x)])
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dd_dgms_wal_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}_{}.wal", std::process::id()))
    }

    #[test]
    fn mutations_survive_recovery() {
        let path = temp_path("basic");
        {
            let store = DurableStore::create(schema(), &path).unwrap();
            let a = store.insert(rec(1, 1.0)).unwrap();
            let b = store.insert(rec(2, 2.0)).unwrap();
            store.update(a, rec(1, 9.0)).unwrap();
            store.delete(b).unwrap();
            store.sync().unwrap();
        }
        let (recovered, torn) = DurableStore::recover(schema(), &path).unwrap();
        assert!(!torn);
        assert_eq!(recovered.store().len(), 1);
        assert_eq!(recovered.store().get(0).unwrap().unwrap(), rec(1, 9.0));
        assert_eq!(recovered.store().get(1).unwrap(), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recovery_continues_accepting_writes() {
        let path = temp_path("continue");
        {
            let store = DurableStore::create(schema(), &path).unwrap();
            store.insert(rec(1, 1.0)).unwrap();
            store.sync().unwrap();
        }
        {
            let (recovered, _) = DurableStore::recover(schema(), &path).unwrap();
            recovered.insert(rec(2, 2.0)).unwrap();
            recovered.sync().unwrap();
        }
        let (again, torn) = DurableStore::recover(schema(), &path).unwrap();
        assert!(!torn);
        assert_eq!(again.store().len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        let path = temp_path("torn");
        {
            let store = DurableStore::create(schema(), &path).unwrap();
            store.insert(rec(1, 1.0)).unwrap();
            store.insert(rec(2, 2.0)).unwrap();
            store.sync().unwrap();
        }
        // Simulate a crash mid-append: chop off the last 5 bytes.
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 5]).unwrap();

        let (recovered, torn) = DurableStore::recover(schema(), &path).unwrap();
        assert!(torn);
        assert_eq!(recovered.store().len(), 1);
        // After recovery the log is clean again.
        let (again, torn2) = DurableStore::recover(schema(), &path).unwrap();
        assert!(!torn2);
        assert_eq!(again.store().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checksum_stops_replay() {
        let path = temp_path("corrupt");
        {
            let store = DurableStore::create(schema(), &path).unwrap();
            store.insert(rec(1, 1.0)).unwrap();
            store.insert(rec(2, 2.0)).unwrap();
            store.sync().unwrap();
        }
        // Flip a byte inside the second record's payload.
        let mut raw = std::fs::read(&path).unwrap();
        let n = raw.len();
        raw[n - 6] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();

        let (recovered, torn) = DurableStore::recover(schema(), &path).unwrap();
        assert!(torn);
        assert_eq!(recovered.store().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_log_round_trips_ops() {
        let ops = vec![
            WalOp::Insert(0, rec(1, 1.5)),
            WalOp::Update(0, rec(1, 2.5)),
            WalOp::Delete(0),
        ];
        let mut buf = BytesMut::new();
        buf.put_slice(&WAL_MAGIC);
        buf.put_u8(WAL_VERSION);
        for op in &ops {
            buf.put_slice(&encode_op(op));
        }
        let (parsed, torn) = parse_log(buf.freeze());
        assert!(!torn);
        assert_eq!(parsed, ops);
    }

    #[test]
    fn empty_log_recovers_empty_store() {
        let path = temp_path("empty");
        std::fs::write(&path, b"").unwrap();
        let (recovered, torn) = DurableStore::recover(schema(), &path).unwrap();
        assert!(!torn);
        assert!(recovered.store().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_log_file_errors() {
        let path = temp_path("never_created_x");
        std::fs::remove_file(&path).ok();
        assert!(DurableStore::recover(schema(), &path).is_err());
    }

    /// A v1 log: headerless, records checksummed with the legacy sum.
    fn v1_log(ops: &[WalOp]) -> Vec<u8> {
        let mut raw = Vec::new();
        for op in ops {
            raw.extend_from_slice(&encode_op_with(op, WalFormat::V1));
        }
        raw
    }

    #[test]
    fn legacy_v1_logs_recover_and_upgrade_to_v2() {
        let path = temp_path("v1_compat");
        let ops = vec![
            WalOp::Insert(0, rec(1, 1.0)),
            WalOp::Insert(1, rec(2, 2.0)),
            WalOp::Update(0, rec(1, 9.0)),
        ];
        std::fs::write(&path, v1_log(&ops)).unwrap();

        let (recovered, torn) = DurableStore::recover(schema(), &path).unwrap();
        assert!(!torn, "an intact v1 log is not a torn log");
        assert_eq!(recovered.store().len(), 2);
        assert_eq!(recovered.store().get(0).unwrap().unwrap(), rec(1, 9.0));
        // The recovery rewrote the file with the v2 header…
        let raw = std::fs::read(&path).unwrap();
        assert_eq!(
            &raw[..4],
            &[WAL_MAGIC[0], WAL_MAGIC[1], WAL_MAGIC[2], WAL_VERSION]
        );
        // …and appends interleave with the upgraded records cleanly.
        recovered.insert(rec(3, 3.0)).unwrap();
        recovered.sync().unwrap();
        drop(recovered);
        let (again, torn2) = DurableStore::recover(schema(), &path).unwrap();
        assert!(!torn2);
        assert_eq!(again.store().len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let mut buf = BytesMut::new();
        buf.put_slice(&encode_op(&WalOp::Insert(0, rec(1, 1.5))));
        buf.put_slice(&encode_op(&WalOp::Insert(1, rec(2, 2.5))));
        let clean = buf.freeze().to_vec();
        let (ops, torn) = parse_records(Bytes::from(clean.clone()), WalFormat::V2);
        assert!(!torn);
        assert_eq!(ops.len(), 2);

        for i in 0..clean.len() {
            let mut tampered = clean.clone();
            tampered[i] ^= 0x41;
            let (ops, torn) = parse_records(Bytes::from(tampered), WalFormat::V2);
            assert!(
                torn,
                "flip at byte {i} must mark the log torn (got {} intact ops)",
                ops.len()
            );
        }
    }

    #[test]
    fn compensating_byte_pair_fools_v1_but_not_v2() {
        // The legacy positional sum weights byte i by 31× byte i+1, so
        // +1 at i and -31 at i+1 cancel. Find such a pair inside a v1
        // record's payload and show the v1 checksum accepts the
        // corrupted record while v2's CRC-32 rejects the same edit.
        let op = WalOp::Insert(7, rec(123, 55.25));
        let v1 = encode_op_with(&op, WalFormat::V1).to_vec();
        let body_len = v1.len() - 4;
        let mut target = None;
        for i in 0..body_len - 1 {
            if v1[i] < 0xFF && v1[i + 1] >= 31 {
                target = Some(i);
                break;
            }
        }
        let i = target.expect("a corruptible byte pair exists");
        let mut tampered_v1 = v1.clone();
        tampered_v1[i] += 1;
        tampered_v1[i + 1] -= 31;
        assert_ne!(tampered_v1, v1);
        assert_eq!(
            legacy_checksum(&tampered_v1[..body_len]),
            legacy_checksum(&v1[..body_len]),
            "the crafted pair must defeat the legacy sum"
        );
        // v1 parse replays the corrupted record as if it were intact —
        // the undetected corruption the upgrade exists to close.
        let (ops, torn) = parse_records(Bytes::from(tampered_v1), WalFormat::V1);
        assert!(!torn);
        assert_eq!(ops.len(), 1);
        assert_ne!(ops[0], op, "v1 accepted silently corrupted data");

        // The identical edit on the v2 encoding is caught by CRC-32.
        let v2 = encode_op(&op).to_vec();
        let mut tampered_v2 = v2.clone();
        tampered_v2[i] += 1;
        tampered_v2[i + 1] -= 31;
        let (ops, torn) = parse_records(Bytes::from(tampered_v2), WalFormat::V2);
        assert!(torn, "CRC-32 must reject the compensating pair");
        assert!(ops.is_empty());
    }

    #[test]
    fn torn_header_is_survivable() {
        let path = temp_path("torn_header");
        // Two magic bytes then EOF: a crash during header write.
        std::fs::write(&path, [WAL_MAGIC[0], WAL_MAGIC[1]]).unwrap();
        let (recovered, torn) = DurableStore::recover(schema(), &path).unwrap();
        assert!(torn);
        assert!(recovered.store().is_empty());
        recovered.insert(rec(1, 1.0)).unwrap();
        recovered.sync().unwrap();
        drop(recovered);
        let (again, torn2) = DurableStore::recover(schema(), &path).unwrap();
        assert!(!torn2);
        assert_eq!(again.store().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_append_fault_rolls_back_the_insert() {
        let _lock = fault::test_support::fault_lock();
        let path = temp_path("fault_append");
        let store = DurableStore::create(schema(), &path).unwrap();
        store.insert(rec(1, 1.0)).unwrap();
        {
            let _guard = fault::arm("wal.append", fault::Trigger::Once, fault::FaultKind::Error);
            let err = store.insert(rec(2, 2.0)).unwrap_err();
            assert!(err.to_string().contains("injected fault at wal.append"));
        }
        // The failed insert left no trace in memory…
        assert_eq!(store.store().len(), 1);
        // …and the store keeps accepting writes once the fault clears.
        store.insert(rec(3, 3.0)).unwrap();
        store.sync().unwrap();
        drop(store);
        let (recovered, torn) = DurableStore::recover(schema(), &path).unwrap();
        assert!(!torn);
        assert_eq!(recovered.store().len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_flush_and_recover_faults_surface_as_errors() {
        let _lock = fault::test_support::fault_lock();
        let path = temp_path("fault_flush");
        {
            let store = DurableStore::create(schema(), &path).unwrap();
            store.insert(rec(1, 1.0)).unwrap();
            let _guard = fault::arm("wal.flush", fault::Trigger::Once, fault::FaultKind::Error);
            assert!(store.sync().is_err());
            assert!(store.sync().is_ok(), "transient fault: retry succeeds");
        }
        let _guard = fault::arm("wal.recover", fault::Trigger::Once, fault::FaultKind::Error);
        assert!(DurableStore::recover(schema(), &path).is_err());
        let (recovered, _) = DurableStore::recover(schema(), &path).unwrap();
        assert_eq!(recovered.store().len(), 1);
        std::fs::remove_file(&path).ok();
    }
}
