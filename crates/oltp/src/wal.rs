//! Write-ahead log persistence for the row store.
//!
//! The paper positions the warehouse on top of existing operational
//! stores; a credible operational store must survive a process crash.
//! [`DurableStore`] wraps a [`RowStore`] and appends every mutation to
//! an append-only log before applying it; [`DurableStore::recover`]
//! rebuilds the store by replaying the log.
//!
//! Log record layout (little-endian):
//!
//! ```text
//! [op: u8][row_id: u64][payload_len: u32][payload…][checksum: u32]
//! ```
//!
//! The checksum is a sum-based sanity check over the record body.
//! Replay stops cleanly at the first truncated or corrupt record
//! (torn tail after a crash), keeping everything before it.

use crate::encoding::{decode_row, encode_row};
use crate::store::{RowId, RowStore};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use clinical_types::{Error, Record, Result, Schema};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const OP_INSERT: u8 = 1;
const OP_UPDATE: u8 = 2;
const OP_DELETE: u8 = 3;

/// One logged operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Row inserted at the given id.
    Insert(RowId, Record),
    /// Row replaced at the given id.
    Update(RowId, Record),
    /// Row deleted at the given id.
    Delete(RowId),
}

fn checksum(bytes: &[u8]) -> u32 {
    bytes.iter().fold(0u32, |acc, &b| {
        acc.wrapping_mul(31).wrapping_add(u32::from(b))
    })
}

fn encode_op(op: &WalOp) -> Bytes {
    let (tag, id, payload) = match op {
        WalOp::Insert(id, rec) => (OP_INSERT, *id, encode_row(rec)),
        WalOp::Update(id, rec) => (OP_UPDATE, *id, encode_row(rec)),
        WalOp::Delete(id) => (OP_DELETE, *id, Bytes::new()),
    };
    let mut buf = BytesMut::with_capacity(17 + payload.len());
    buf.put_u8(tag);
    buf.put_u64_le(id);
    buf.put_u32_le(payload.len() as u32);
    buf.put_slice(&payload);
    let crc = checksum(&buf);
    buf.put_u32_le(crc);
    buf.freeze()
}

/// Parse the ops in a log buffer, stopping at the first torn or
/// corrupt record. Returns the ops plus whether a tail was dropped.
pub fn parse_log(mut buf: Bytes) -> (Vec<WalOp>, bool) {
    let mut ops = Vec::new();
    loop {
        if buf.remaining() == 0 {
            return (ops, false);
        }
        if buf.remaining() < 13 {
            return (ops, true);
        }
        let record_view = buf.clone();
        let tag = buf.get_u8();
        let id = buf.get_u64_le();
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < len + 4 {
            return (ops, true);
        }
        let payload = buf.copy_to_bytes(len);
        let stored_crc = buf.get_u32_le();
        let body = record_view.slice(0..13 + len);
        if checksum(&body) != stored_crc {
            return (ops, true);
        }
        let op = match tag {
            OP_INSERT => match decode_row(&payload) {
                Ok(rec) => WalOp::Insert(id, rec),
                Err(_) => return (ops, true),
            },
            OP_UPDATE => match decode_row(&payload) {
                Ok(rec) => WalOp::Update(id, rec),
                Err(_) => return (ops, true),
            },
            OP_DELETE => WalOp::Delete(id),
            _ => return (ops, true),
        };
        ops.push(op);
    }
}

/// A [`RowStore`] whose mutations are logged before they apply.
pub struct DurableStore {
    store: RowStore,
    log: Mutex<BufWriter<File>>,
    path: PathBuf,
}

impl DurableStore {
    /// Create (or truncate) a store logging to `path`.
    pub fn create(schema: Schema, path: &Path) -> Result<DurableStore> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(|e| Error::invalid(format!("cannot create WAL {path:?}: {e}")))?;
        Ok(DurableStore {
            store: RowStore::new(schema),
            log: Mutex::new(BufWriter::new(file)),
            path: path.to_path_buf(),
        })
    }

    /// Recover a store from an existing log, replaying every intact
    /// record and reopening the log for appending. Returns the store
    /// and whether a torn tail was discarded.
    pub fn recover(schema: Schema, path: &Path) -> Result<(DurableStore, bool)> {
        let mut raw = Vec::new();
        File::open(path)
            .map_err(|e| Error::invalid(format!("cannot open WAL {path:?}: {e}")))?
            .read_to_end(&mut raw)
            .map_err(|e| Error::invalid(format!("cannot read WAL {path:?}: {e}")))?;
        let (ops, torn) = parse_log(Bytes::from(raw));

        let store = RowStore::new(schema);
        for op in &ops {
            match op {
                WalOp::Insert(expected_id, rec) => {
                    let id = store.insert(rec.clone())?;
                    if id != *expected_id {
                        return Err(Error::invalid(format!(
                            "WAL replay drift: log says row {expected_id}, store allocated {id}"
                        )));
                    }
                }
                WalOp::Update(id, rec) => {
                    store.update(*id, rec.clone())?;
                }
                WalOp::Delete(id) => {
                    store.delete(*id)?;
                }
            }
        }

        // Rewrite the log to just the intact prefix (drops the torn
        // tail), then reopen for append.
        if torn {
            let mut file = OpenOptions::new()
                .write(true)
                .truncate(true)
                .open(path)
                .map_err(|e| Error::invalid(format!("cannot truncate WAL {path:?}: {e}")))?;
            for op in &ops {
                file.write_all(&encode_op(op))
                    .map_err(|e| Error::invalid(format!("cannot rewrite WAL: {e}")))?;
            }
        }
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| Error::invalid(format!("cannot reopen WAL {path:?}: {e}")))?;
        Ok((
            DurableStore {
                store,
                log: Mutex::new(BufWriter::new(file)),
                path: path.to_path_buf(),
            },
            torn,
        ))
    }

    /// The in-memory store (reads go straight through).
    pub fn store(&self) -> &RowStore {
        &self.store
    }

    /// Log file location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append(&self, op: &WalOp) -> Result<()> {
        let mut log = self.log.lock();
        log.write_all(&encode_op(op))
            .map_err(|e| Error::invalid(format!("WAL append failed: {e}")))?;
        Ok(())
    }

    /// Flush buffered log records to the OS.
    pub fn sync(&self) -> Result<()> {
        self.log
            .lock()
            .flush()
            .map_err(|e| Error::invalid(format!("WAL flush failed: {e}")))
    }

    /// Logged insert.
    pub fn insert(&self, record: Record) -> Result<RowId> {
        // Validate (and allocate) first so the log never records a
        // mutation the store rejected.
        let id = self.store.insert(record.clone())?;
        self.append(&WalOp::Insert(id, record))?;
        Ok(id)
    }

    /// Logged update.
    pub fn update(&self, id: RowId, record: Record) -> Result<Record> {
        let old = self.store.update(id, record.clone())?;
        self.append(&WalOp::Update(id, record))?;
        Ok(old)
    }

    /// Logged delete.
    pub fn delete(&self, id: RowId) -> Result<Record> {
        let old = self.store.delete(id)?;
        self.append(&WalOp::Delete(id))?;
        Ok(old)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clinical_types::{DataType, FieldDef, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            FieldDef::required("Id", DataType::Int),
            FieldDef::nullable("X", DataType::Float),
        ])
        .unwrap()
    }

    fn rec(id: i64, x: f64) -> Record {
        Record::new(vec![Value::Int(id), Value::Float(x)])
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dd_dgms_wal_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}_{}.wal", std::process::id()))
    }

    #[test]
    fn mutations_survive_recovery() {
        let path = temp_path("basic");
        {
            let store = DurableStore::create(schema(), &path).unwrap();
            let a = store.insert(rec(1, 1.0)).unwrap();
            let b = store.insert(rec(2, 2.0)).unwrap();
            store.update(a, rec(1, 9.0)).unwrap();
            store.delete(b).unwrap();
            store.sync().unwrap();
        }
        let (recovered, torn) = DurableStore::recover(schema(), &path).unwrap();
        assert!(!torn);
        assert_eq!(recovered.store().len(), 1);
        assert_eq!(recovered.store().get(0).unwrap().unwrap(), rec(1, 9.0));
        assert_eq!(recovered.store().get(1).unwrap(), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recovery_continues_accepting_writes() {
        let path = temp_path("continue");
        {
            let store = DurableStore::create(schema(), &path).unwrap();
            store.insert(rec(1, 1.0)).unwrap();
            store.sync().unwrap();
        }
        {
            let (recovered, _) = DurableStore::recover(schema(), &path).unwrap();
            recovered.insert(rec(2, 2.0)).unwrap();
            recovered.sync().unwrap();
        }
        let (again, torn) = DurableStore::recover(schema(), &path).unwrap();
        assert!(!torn);
        assert_eq!(again.store().len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        let path = temp_path("torn");
        {
            let store = DurableStore::create(schema(), &path).unwrap();
            store.insert(rec(1, 1.0)).unwrap();
            store.insert(rec(2, 2.0)).unwrap();
            store.sync().unwrap();
        }
        // Simulate a crash mid-append: chop off the last 5 bytes.
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 5]).unwrap();

        let (recovered, torn) = DurableStore::recover(schema(), &path).unwrap();
        assert!(torn);
        assert_eq!(recovered.store().len(), 1);
        // After recovery the log is clean again.
        let (again, torn2) = DurableStore::recover(schema(), &path).unwrap();
        assert!(!torn2);
        assert_eq!(again.store().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checksum_stops_replay() {
        let path = temp_path("corrupt");
        {
            let store = DurableStore::create(schema(), &path).unwrap();
            store.insert(rec(1, 1.0)).unwrap();
            store.insert(rec(2, 2.0)).unwrap();
            store.sync().unwrap();
        }
        // Flip a byte inside the second record's payload.
        let mut raw = std::fs::read(&path).unwrap();
        let n = raw.len();
        raw[n - 6] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();

        let (recovered, torn) = DurableStore::recover(schema(), &path).unwrap();
        assert!(torn);
        assert_eq!(recovered.store().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_log_round_trips_ops() {
        let ops = vec![
            WalOp::Insert(0, rec(1, 1.5)),
            WalOp::Update(0, rec(1, 2.5)),
            WalOp::Delete(0),
        ];
        let mut buf = BytesMut::new();
        for op in &ops {
            buf.put_slice(&encode_op(op));
        }
        let (parsed, torn) = parse_log(buf.freeze());
        assert!(!torn);
        assert_eq!(parsed, ops);
    }

    #[test]
    fn empty_log_recovers_empty_store() {
        let path = temp_path("empty");
        std::fs::write(&path, b"").unwrap();
        let (recovered, torn) = DurableStore::recover(schema(), &path).unwrap();
        assert!(!torn);
        assert!(recovered.store().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_log_file_errors() {
        let path = temp_path("never_created_x");
        std::fs::remove_file(&path).ok();
        assert!(DurableStore::recover(schema(), &path).is_err());
    }
}
