//! The heap row store.

use crate::encoding::{decode_row, encode_row};
use bytes::Bytes;
use clinical_types::{Error, Record, Result, Schema, Value};
use obs::{LockRank, RankedRwLock};
use std::sync::Arc;

/// Stable identifier of a row within a [`RowStore`] (its heap slot).
pub type RowId = u64;

#[derive(Debug)]
struct Slot {
    /// `None` marks a tombstone (deleted row).
    payload: Option<Bytes>,
}

#[derive(Debug, Default)]
struct Heap {
    slots: Vec<Slot>,
    live: usize,
}

/// An in-memory heap of schema-validated rows with tombstone deletes.
///
/// Concurrency model: a single reader–writer lock over the heap —
/// plenty for the clinical-workstation scale the paper targets, and
/// simple to reason about. Secondary indexes live *outside* the store
/// (see [`crate::index`]) and are maintained by the caller or a
/// [`crate::Transaction`].
#[derive(Debug, Clone)]
pub struct RowStore {
    schema: Arc<Schema>,
    heap: Arc<RankedRwLock<Heap>>,
}

impl RowStore {
    /// Empty store over `schema`.
    pub fn new(schema: Schema) -> Self {
        RowStore {
            schema: Arc::new(schema),
            heap: Arc::new(RankedRwLock::new(
                LockRank::Heap,
                "oltp.heap",
                Heap::default(),
            )),
        }
    }

    /// The store's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Insert a validated row; returns its id.
    pub fn insert(&self, record: Record) -> Result<RowId> {
        self.schema.check_row(record.values())?;
        let payload = encode_row(&record);
        let mut heap = self.heap.write();
        let id = heap.slots.len() as RowId;
        heap.slots.push(Slot {
            payload: Some(payload),
        });
        heap.live += 1;
        Ok(id)
    }

    /// Fetch a row by id (`None` if deleted or never allocated).
    pub fn get(&self, id: RowId) -> Result<Option<Record>> {
        let heap = self.heap.read();
        match heap.slots.get(id as usize).and_then(|s| s.payload.as_ref()) {
            Some(bytes) => Ok(Some(decode_row(bytes)?)),
            None => Ok(None),
        }
    }

    /// Replace a row in place; returns the previous version.
    pub fn update(&self, id: RowId, record: Record) -> Result<Record> {
        self.schema.check_row(record.values())?;
        let mut heap = self.heap.write();
        let slot = heap
            .slots
            .get_mut(id as usize)
            .ok_or_else(|| Error::invalid(format!("row {id} does not exist")))?;
        let old = slot
            .payload
            .as_ref()
            .ok_or_else(|| Error::invalid(format!("row {id} is deleted")))?;
        let previous = decode_row(old)?;
        slot.payload = Some(encode_row(&record));
        Ok(previous)
    }

    /// Tombstone a row; returns the deleted version.
    pub fn delete(&self, id: RowId) -> Result<Record> {
        let mut heap = self.heap.write();
        let slot = heap
            .slots
            .get_mut(id as usize)
            .ok_or_else(|| Error::invalid(format!("row {id} does not exist")))?;
        let old = slot
            .payload
            .take()
            .ok_or_else(|| Error::invalid(format!("row {id} is already deleted")))?;
        heap.live -= 1;
        decode_row(&old)
    }

    /// Remove a freshly inserted row, releasing its id when it is the
    /// newest slot so the id allocator rewinds too (used by WAL
    /// rollback when the log append fails — otherwise replay would
    /// drift past the burned id).
    pub(crate) fn rollback_insert(&self, id: RowId) -> Result<()> {
        let mut heap = self.heap.write();
        let is_last = id as usize + 1 == heap.slots.len();
        let slot = heap
            .slots
            .get_mut(id as usize)
            .ok_or_else(|| Error::invalid(format!("row {id} does not exist")))?;
        if slot.payload.take().is_none() {
            return Err(Error::invalid(format!("row {id} is already deleted")));
        }
        heap.live -= 1;
        if is_last {
            heap.slots.pop();
        }
        Ok(())
    }

    /// Restore a previously deleted row at its original id (used by
    /// transaction rollback).
    pub(crate) fn undelete(&self, id: RowId, record: Record) -> Result<()> {
        self.schema.check_row(record.values())?;
        let mut heap = self.heap.write();
        let slot = heap
            .slots
            .get_mut(id as usize)
            .ok_or_else(|| Error::invalid(format!("row {id} does not exist")))?;
        if slot.payload.is_some() {
            return Err(Error::invalid(format!("row {id} is not deleted")));
        }
        slot.payload = Some(encode_row(&record));
        heap.live += 1;
        Ok(())
    }

    /// Number of live (non-deleted) rows.
    pub fn len(&self) -> usize {
        self.heap.read().live
    }

    /// True if no live rows exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total allocated slots including tombstones.
    pub fn capacity(&self) -> usize {
        self.heap.read().slots.len()
    }

    /// Materialise all live rows as `(id, record)` pairs.
    ///
    /// Snapshot semantics: the heap lock is held for the duration of
    /// the copy, so the result is a consistent point-in-time view.
    pub fn scan(&self) -> Result<Vec<(RowId, Record)>> {
        let heap = self.heap.read();
        let mut out = Vec::with_capacity(heap.live);
        for (i, slot) in heap.slots.iter().enumerate() {
            if let Some(bytes) = &slot.payload {
                out.push((i as RowId, decode_row(bytes)?));
            }
        }
        Ok(out)
    }

    /// Visit all live rows without materialising them into a vector.
    pub fn for_each(&self, mut f: impl FnMut(RowId, &Record)) -> Result<()> {
        let heap = self.heap.read();
        for (i, slot) in heap.slots.iter().enumerate() {
            if let Some(bytes) = &slot.payload {
                f(i as RowId, &decode_row(bytes)?);
            }
        }
        Ok(())
    }

    /// Value of `column` in row `id`.
    pub fn value(&self, id: RowId, column: &str) -> Result<Value> {
        let idx = self.schema.index_of(column)?;
        let record = self
            .get(id)?
            .ok_or_else(|| Error::invalid(format!("row {id} does not exist")))?;
        Ok(record.values()[idx].clone())
    }

    /// Bulk-load a [`clinical_types::Table`] with matching schema.
    pub fn load_table(&self, table: &clinical_types::Table) -> Result<Vec<RowId>> {
        if table.schema() != self.schema.as_ref() {
            return Err(Error::invalid("table schema differs from store schema"));
        }
        table
            .rows()
            .iter()
            .map(|r| self.insert(r.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clinical_types::{DataType, FieldDef};

    fn demo_store() -> RowStore {
        let schema = Schema::new(vec![
            FieldDef::required("Id", DataType::Int),
            FieldDef::nullable("FBG", DataType::Float),
        ])
        .unwrap();
        RowStore::new(schema)
    }

    fn rec(id: i64, fbg: Option<f64>) -> Record {
        Record::new(vec![Value::Int(id), fbg.into()])
    }

    #[test]
    fn insert_get_round_trip() {
        let store = demo_store();
        let id = store.insert(rec(1, Some(5.5))).unwrap();
        assert_eq!(store.get(id).unwrap().unwrap(), rec(1, Some(5.5)));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn insert_validates_schema() {
        let store = demo_store();
        let bad = Record::new(vec![Value::Null, Value::Null]);
        assert!(store.insert(bad).is_err());
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn update_returns_previous_version() {
        let store = demo_store();
        let id = store.insert(rec(1, Some(5.0))).unwrap();
        let old = store.update(id, rec(1, Some(6.2))).unwrap();
        assert_eq!(old, rec(1, Some(5.0)));
        assert_eq!(store.get(id).unwrap().unwrap(), rec(1, Some(6.2)));
    }

    #[test]
    fn delete_tombstones_and_undelete_restores() {
        let store = demo_store();
        let id = store.insert(rec(1, None)).unwrap();
        let deleted = store.delete(id).unwrap();
        assert_eq!(deleted, rec(1, None));
        assert_eq!(store.get(id).unwrap(), None);
        assert_eq!(store.len(), 0);
        assert_eq!(store.capacity(), 1);

        store.undelete(id, deleted).unwrap();
        assert_eq!(store.len(), 1);
        assert!(store.get(id).unwrap().is_some());
    }

    #[test]
    fn double_delete_fails() {
        let store = demo_store();
        let id = store.insert(rec(1, None)).unwrap();
        store.delete(id).unwrap();
        assert!(store.delete(id).is_err());
        assert!(store.update(id, rec(1, None)).is_err());
    }

    #[test]
    fn missing_row_operations_fail() {
        let store = demo_store();
        assert!(store.get(5).unwrap().is_none());
        assert!(store.delete(5).is_err());
        assert!(store.update(5, rec(1, None)).is_err());
    }

    #[test]
    fn scan_skips_tombstones() {
        let store = demo_store();
        let a = store.insert(rec(1, None)).unwrap();
        let b = store.insert(rec(2, None)).unwrap();
        let c = store.insert(rec(3, None)).unwrap();
        store.delete(b).unwrap();
        let rows = store.scan().unwrap();
        let ids: Vec<RowId> = rows.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![a, c]);
    }

    #[test]
    fn value_accessor() {
        let store = demo_store();
        let id = store.insert(rec(7, Some(6.1))).unwrap();
        assert_eq!(store.value(id, "FBG").unwrap(), Value::Float(6.1));
        assert!(store.value(id, "Nope").is_err());
    }

    #[test]
    fn concurrent_inserts_from_clones() {
        let store = demo_store();
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    s.insert(rec(t * 100 + i, None)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 400);
    }

    #[test]
    fn load_table_checks_schema() {
        let store = demo_store();
        let other = Schema::new(vec![FieldDef::required("X", DataType::Int)]).unwrap();
        let t = clinical_types::Table::new(other);
        assert!(store.load_table(&t).is_err());
    }
}
