#!/usr/bin/env bash
# Best-effort ThreadSanitizer pass over the concurrency-heavy test
# suites (fault matrix, serve concurrency). TSan needs a nightly
# toolchain with -Zsanitizer support and the matching rust-src; this
# script probes for both and skips gracefully when the box doesn't
# have them, so it can sit in CI as an opt-in lane without breaking
# offline or stable-only environments.
#
# Usage: scripts/tsan.sh [extra cargo-test args]
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v rustup >/dev/null 2>&1; then
  echo "tsan: rustup not available; skipping (need a nightly toolchain)" >&2
  exit 0
fi
if ! rustup toolchain list 2>/dev/null | grep -q nightly; then
  echo "tsan: no nightly toolchain installed; skipping" >&2
  echo "tsan: install with: rustup toolchain install nightly --component rust-src" >&2
  exit 0
fi
if ! rustup component list --toolchain nightly 2>/dev/null | grep -q "rust-src (installed)"; then
  echo "tsan: nightly rust-src not installed; skipping" >&2
  echo "tsan: install with: rustup component add rust-src --toolchain nightly" >&2
  exit 0
fi

HOST_TARGET="$(rustc -vV | sed -n 's/^host: //p')"
echo "==> ThreadSanitizer: fault matrix + serve concurrency (${HOST_TARGET})"

# TSan intercepts every atomic and lock operation, so the runtime
# rank checks run under it too — a data race in the lockrank
# thread-local bookkeeping itself would surface here.
RUSTFLAGS="-Zsanitizer=thread" \
RUSTDOCFLAGS="-Zsanitizer=thread" \
TSAN_OPTIONS="halt_on_error=1" \
cargo +nightly test \
  -Zbuild-std \
  --target "${HOST_TARGET}" \
  --test fault_injection \
  --test serve_concurrency \
  "$@"

echo "tsan: clean."
