#!/usr/bin/env bash
# Repo-wide quality gate: formatting, lints, release build, tests.
# Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings -W clippy::disallowed-methods

echo "==> repo-lint (--locks: zero cycles, zero unranked locks, rank-table conformance)"
cargo run -q -p analyze --bin repo-lint -- --locks

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test --workspace -q --doc"
cargo test --workspace -q --doc

echo "==> tracing integration tests (span trees, disabled-path zero events)"
cargo test -q --test obs_tracing

echo "==> fault matrix (torn WAL, worker panics, breaker degradation)"
cargo test -q --test fault_injection

echo "==> segment round-trips (both backends, CRC corruption detection)"
cargo test -q --test segstore_roundtrip

echo "==> lock discipline (static/dynamic conformance, inversion drill)"
cargo test -q -p analyze --test lock_conformance
cargo test -q -p obs --test lock_discipline

echo "==> flight recorder drills (breaker/panic/stall/deadline dumps, black-box round-trip)"
cargo test -q --test flight_recorder

echo "==> SLO engine + burn-rate alerting"
cargo test -q -p obs slo

echo "==> rustdoc gate (olap + segstore, -D warnings, deny(missing_docs))"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q -p olap -p segstore

echo "==> replication chaos drills (kill/lag/truncate/torn-tail, proptest convergence)"
cargo test -q --test replication_chaos

echo "==> oplog unit suite (framing, torn-tail recovery, truncation, gap semantics)"
cargo test -q -p oplog

echo "==> scan bench (zone-map + footprint pruning >=5x, kernel vs scalar >=2x, BENCH_scan.json)"
cargo bench -p bench --bench scan

echo "==> kernel-bench gate (BENCH_scan.json scaling: vectorized >=2x scalar at every thread count)"
python3 - <<'EOF'
import json
scaling = json.load(open("BENCH_scan.json"))["scaling"]
speedup = scaling["min_kernel_speedup"]
assert speedup >= 2.0, f"kernel speedup regressed: min {speedup:.2f}x < 2x"
print(f"    min kernel speedup {speedup:.1f}x across thread sweep — ok")
EOF

echo "==> serve bench (cold/warm, degraded mode, recorder overhead, replicated fan-out, BENCH_serve.json)"
cargo bench -p bench --bench serve

echo "==> replication gate (BENCH_serve.json: 4-replica rps >= 1.5x single replica, zero lost on failover)"
python3 - <<'EOF'
import json
rep = json.load(open("BENCH_serve.json"))["replicated"]
by = {r["replicas"]: r["rps"] for r in rep["sweep"]}
scaling = by[4] / by[1]
assert scaling >= 1.5, f"replica fan-out scaling regressed: {scaling:.2f}x < 1.5x"
fo = rep["failover"]
assert fo["requests"] > 0 and fo["p99_us"] > 0, f"failover drill produced no latencies: {fo}"
print(f"    4-replica scaling {scaling:.2f}x; failover p99 {fo['p99_us']} us over {fo['requests']} requests — ok")
EOF

echo "All checks passed."
