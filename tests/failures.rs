//! Failure-injection tests: every layer must reject bad input with a
//! descriptive error (never a panic) and recover where the design says
//! it recovers.

use clinical_types::{
    table_from_csv, table_to_csv, DataType, FieldDef, Record, Schema, Table, Value,
};
use dd_dgms::DdDgms;
use discri::{generate, CohortConfig};
use oltp::DurableStore;
use std::sync::OnceLock;
use warehouse::{LoadPlan, Warehouse};

fn system() -> &'static DdDgms {
    static SYSTEM: OnceLock<DdDgms> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        let cohort = generate(&CohortConfig::small(131));
        DdDgms::from_raw_attendances(&cohort.attendances).expect("system builds")
    })
}

#[test]
fn malformed_mdx_reports_parse_errors() {
    for bad in [
        "",
        "SELECT",
        "SELECT [A].MEMBERS ON SIDEWAYS, [B].MEMBERS ON ROWS FROM [X]",
        "SELECT [A].MEMBERS ON COLUMNS, [B].MEMBERS ON ROWS FROM [X] MEASURE AVG()",
        "SELECT [A].MEMBERS ON COLUMNS, [B].MEMBERS ON ROWS FROM [X] WHERE [Y] = 5",
    ] {
        let err = system().mdx(bad).err();
        assert!(err.is_some(), "accepted malformed MDX: {bad}");
    }
}

#[test]
fn mdx_against_wrong_cube_or_attribute_fails_cleanly() {
    let err = system()
        .mdx(
            "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
              FROM [Wrong Cube] MEASURE COUNT(*)",
        )
        .expect_err("wrong cube must fail");
    assert!(err.to_string().contains("Wrong Cube"));

    let err = system()
        .mdx(
            "SELECT [Gender].MEMBERS ON COLUMNS, [NoSuchThing].MEMBERS ON ROWS \
              FROM [Medical Measures] MEASURE COUNT(*)",
        )
        .expect_err("unknown attribute must fail");
    assert!(err.to_string().contains("NoSuchThing"));
}

#[test]
fn warehouse_load_rejects_incompatible_tables() {
    let schema = Schema::new(vec![FieldDef::required("JustOneColumn", DataType::Int)]).unwrap();
    let table = Table::new(schema);
    let err = Warehouse::load(&LoadPlan::discri_default(), &table)
        .expect_err("incomplete schema must be rejected");
    // The message enumerates what is missing.
    assert!(err.to_string().contains("Gender"));
}

#[test]
fn wal_survives_repeated_torn_tails() {
    let schema = Schema::new(vec![
        FieldDef::required("Id", DataType::Int),
        FieldDef::nullable("X", DataType::Float),
    ])
    .unwrap();
    let dir = std::env::temp_dir().join("dd_dgms_failure_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("torn_{}.wal", std::process::id()));

    {
        let store = DurableStore::create(schema.clone(), &path).unwrap();
        for i in 0..50i64 {
            store
                .insert(Record::new(vec![Value::Int(i), Value::Float(i as f64)]))
                .unwrap();
        }
        store.sync().unwrap();
    }
    // Tear the tail three times; each recovery must keep a clean prefix.
    let mut last_len = 50;
    for tear in 1..=3 {
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 7 * tear]).unwrap();
        let (store, torn) = DurableStore::recover(schema.clone(), &path).unwrap();
        assert!(torn, "tear {tear} not detected");
        let len = store.store().len();
        assert!(len < last_len, "tear {tear} lost nothing?");
        assert!(len > 0, "tear {tear} lost everything");
        // Rows that survived are intact and contiguous from id 0.
        for id in 0..len as u64 {
            let rec = store.store().get(id).unwrap().expect("row present");
            assert_eq!(rec.values()[0], Value::Int(id as i64));
        }
        store.sync().unwrap();
        last_len = len;
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn csv_round_trip_of_the_whole_cohort() {
    // The full 273-column attendance table must survive CSV export →
    // import byte-exactly (dates, bools, floats, NULLs, quoting).
    let cohort = generate(&CohortConfig::small(17));
    let table = &cohort.attendances;
    let csv = table_to_csv(table);
    let back = table_from_csv(&csv, table.schema()).unwrap();
    assert_eq!(back.len(), table.len());
    for (a, b) in back.rows().iter().zip(table.rows()) {
        assert_eq!(a, b);
    }
}

#[test]
fn feedback_dimension_abuse_is_rejected() {
    let cohort = generate(&CohortConfig::small(19));
    let (table, _) = etl::TransformPipeline::discri_default()
        .run(&cohort.attendances)
        .unwrap();
    let mut wh = Warehouse::load(&LoadPlan::discri_default(), &table).unwrap();
    // Wrong label count.
    assert!(wh
        .add_feedback_dimension("F", "Flag", vec![Value::Bool(true)])
        .is_err());
    // Clashing attribute name.
    let labels = vec![Value::Bool(true); wh.n_facts()];
    assert!(wh
        .add_feedback_dimension("F", "Gender", labels.clone())
        .is_err());
    // A valid add still works after the failed attempts (no partial
    // state corruption).
    wh.add_feedback_dimension("F", "Flag", labels).unwrap();
    assert!(wh.attribute_column("Flag").is_ok());
}

#[test]
fn acquisition_rejects_unknown_columns() {
    let err = dd_dgms::attribute_gaps(system().transformed(), &["NoSuchColumn"], "DiabetesStatus")
        .expect_err("unknown column must fail");
    assert!(err.to_string().contains("NoSuchColumn"));
}

#[test]
fn kb_import_rejects_corruption_but_keeps_good_exports() {
    let kb = kb::KnowledgeBase::new(1);
    kb.add_evidence("solid finding", kb::Source::Analytics, 0.9, &["tag"])
        .unwrap();
    let good = kb.export_text();
    assert!(kb::KnowledgeBase::import_text(&good, 1).is_ok());
    let corrupted = good.replace("analytics", "not-a-source");
    assert!(kb::KnowledgeBase::import_text(&corrupted, 1).is_err());
}
