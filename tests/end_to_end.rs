//! End-to-end pipeline test: generator → ETL → warehouse → every
//! decision-guidance component → knowledge base, on a small cohort.
//! Complements `figures.rs` (which asserts the paper's shapes at full
//! scale) by walking every architecture component in one pass.

use dd_dgms::{DdDgms, OperationalView, StrategicView};
use discri::{generate, CohortConfig};
use kb::FindingStatus;
use viz::{pivot_to_csv, GroupedBarChart};

#[test]
fn full_closed_loop_on_a_small_cohort() {
    let cohort = generate(&CohortConfig::small(111));
    let mut system = DdDgms::from_raw_attendances(&cohort.attendances).unwrap();

    // Transformation preserved every clean attendance.
    let report = system.pipeline_report();
    assert_eq!(report.cleaning.rows_out, system.transformed().len());
    assert!(report.bands.len() >= 7);

    // Reporting: operational view, both interfaces.
    let op = OperationalView::new(&system);
    let pivot = op
        .report()
        .on_rows("FBG_Band")
        .on_columns("Gender")
        .count()
        .execute()
        .unwrap();
    let mdx = op
        .mdx(
            "SELECT [Gender].MEMBERS ON COLUMNS, [FBG_Band].MEMBERS ON ROWS \
             FROM [Medical Measures] MEASURE COUNT(*)",
        )
        .unwrap();
    assert_eq!(pivot.row_headers, mdx.row_headers);
    assert_eq!(pivot.cells, mdx.cells);

    // Visualisation renders and exports without loss.
    let chart = GroupedBarChart::titled("FBG bands").render(&pivot).unwrap();
    assert!(chart.contains("FBG bands"));
    let csv = pivot_to_csv(&pivot);
    assert_eq!(csv.lines().count(), pivot.row_headers.len() + 1);

    // Prediction quality above chance.
    let quality = op.prediction_quality("FBG_Band").unwrap();
    assert!(quality.n_evaluated > 10);
    assert!(quality.markov_accuracy > 0.25);

    // Strategic view: analytics and optimisation.
    let strat = StrategicView::new(&system);
    let ds = strat
        .isolate_dataset(
            vec!["FBG_Band", "AnkleReflexRight", "Gender"],
            "DiabetesStatus",
        )
        .unwrap();
    // Rows with a NULL class label are dropped by dataset isolation;
    // everything labelled must survive.
    let labelled_rows = system
        .transformed()
        .column("DiabetesStatus")
        .unwrap()
        .filter(|v| !v.is_null())
        .count();
    assert_eq!(ds.len(), labelled_rows);
    let regimen = strat.optimise_regimen(1500.0).unwrap();
    assert!(regimen.annual_cost <= 1500.0);

    // The guidance cycle closes the loop twice; findings validate.
    system.run_guidance_cycle().unwrap();
    system.run_guidance_cycle().unwrap();
    let validated = system.knowledge_base().by_status(FindingStatus::Validated);
    assert!(
        !validated.is_empty(),
        "two cycles must validate at least one finding"
    );

    // The feedback dimension participates in new queries.
    let feedback_pivot = system
        .query()
        .on_rows("PredictedNextFBGBand")
        .count()
        .execute()
        .unwrap();
    // Every fact row lands in some feedback group (missing FBG bands
    // group under the NULL key), so the totals cover the fact table.
    let total: f64 = feedback_pivot.row_totals().iter().sum();
    assert_eq!(total as usize, system.warehouse().n_facts());
    let labelled = system
        .warehouse()
        .attribute_column("PredictedNextFBGBand")
        .unwrap()
        .iter()
        .filter(|v| !v.is_null())
        .count();
    assert!(labelled > 0);
}

#[test]
fn incremental_append_extends_the_warehouse_consistently() {
    use etl::TransformPipeline;
    use olap::{Cube, CubeSpec};
    use warehouse::{LoadPlan, Warehouse};

    let round1 = generate(&CohortConfig::small(141));
    let round2 = generate(&CohortConfig::small(142));
    let (t1, _) = TransformPipeline::discri_default()
        .run(&round1.attendances)
        .unwrap();
    let (t2, _) = TransformPipeline::discri_default()
        .run(&round2.attendances)
        .unwrap();

    let mut wh = Warehouse::load(&LoadPlan::discri_default(), &t1).unwrap();
    let facts_before = wh.n_facts();
    let appended = wh.append(&t2).unwrap();
    assert_eq!(wh.n_facts(), facts_before + appended);

    // A cube over the combined warehouse equals the cell-wise sum of
    // cubes over the two rounds loaded separately.
    let spec = CubeSpec::count(vec!["Gender", "FBG_Band"]);
    let combined = Cube::build(&wh, &spec).unwrap();
    let wh1 = Warehouse::load(&LoadPlan::discri_default(), &t1).unwrap();
    let wh2 = Warehouse::load(&LoadPlan::discri_default(), &t2).unwrap();
    let c1 = Cube::build(&wh1, &spec).unwrap();
    let c2 = Cube::build(&wh2, &spec).unwrap();
    for (coords, value) in combined.iter() {
        let separate = c1.value(coords).unwrap_or(0.0) + c2.value(coords).unwrap_or(0.0);
        assert_eq!(value, separate, "cell {coords:?}");
    }
}

#[test]
fn deterministic_systems_from_equal_seeds() {
    let a = generate(&CohortConfig::small(7));
    let b = generate(&CohortConfig::small(7));
    let sys_a = DdDgms::from_raw_attendances(&a.attendances).unwrap();
    let sys_b = DdDgms::from_raw_attendances(&b.attendances).unwrap();
    let pa = sys_a
        .query()
        .on_rows("Age_Band")
        .on_columns("DiabetesStatus")
        .count()
        .execute()
        .unwrap();
    let pb = sys_b
        .query()
        .on_rows("Age_Band")
        .on_columns("DiabetesStatus")
        .count()
        .execute()
        .unwrap();
    assert_eq!(pa, pb);
}
