//! Segment round-trips across both storage backends.
//!
//! The segmented store promises that sealing rows into segments is
//! lossless (encode → seal → reopen reproduces every column bit for
//! bit), that the two backends are interchangeable behind
//! [`SegmentBackend`], and that on-disk corruption is *detected* —
//! a flipped byte anywhere in a segment file fails the CRC check
//! instead of silently feeding garbage into aggregates.

use clinical_types::{DataType, FieldDef, Record, Schema, Table, Value};
use olap::{Cube, CubeSpec, ScanOptions};
use proptest::prelude::*;
use segstore::{ColumnSet, DiskBackend, MemoryBackend, SegmentBackend};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use warehouse::{CompactionConfig, DimensionDef, FactDef, LoadPlan, StarSchema, Warehouse};

static SEQ: AtomicUsize = AtomicUsize::new(0);

fn temp_dir() -> PathBuf {
    std::env::temp_dir().join(format!(
        "segstore_it_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

const BANDS: [&str; 3] = ["very good", "preDiabetic", "Diabetic"];

/// (band index, quarter-steps, valid flag 0/1, patient) → one row.
type RawRow = (usize, u8, u8, u8);

fn load_warehouse(rows: &[RawRow]) -> Warehouse {
    let star = StarSchema::new(
        FactDef::new("Facts", vec!["FBG"], vec!["PatientId"]),
        vec![DimensionDef::new("Bloods", vec!["FBG_Band"])],
    )
    .unwrap();
    let schema = Schema::new(vec![
        FieldDef::nullable("FBG", DataType::Float),
        FieldDef::nullable("FBG_Band", DataType::Text),
        FieldDef::nullable("PatientId", DataType::Int),
    ])
    .unwrap();
    let records = rows
        .iter()
        .map(|(band, steps, valid, patient)| {
            Record::new(vec![
                if *valid == 1 {
                    // Dyadic rationals: exact under any summation order.
                    Value::Float(4.0 + *band as f64 + *steps as f64 * 0.25)
                } else {
                    Value::Null
                },
                BANDS[*band % BANDS.len()].into(),
                Value::Int(i64::from(*patient)),
            ])
        })
        .collect();
    Warehouse::load(
        &LoadPlan::from_star(star),
        &Table::from_rows(schema, records).unwrap(),
    )
    .unwrap()
}

#[test]
fn both_backends_pass_the_shared_conformance_suite() {
    let mem = MemoryBackend::new();
    if let Err(clause) = segstore::conformance::run(&mem) {
        panic!("memory backend violates the contract: {clause}");
    }
    let dir = temp_dir();
    let disk = DiskBackend::create(&dir).unwrap();
    if let Err(clause) = segstore::conformance::run(&disk) {
        panic!("disk backend violates the contract: {clause}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// encode → seal → reopen: for arbitrary attendance data, sealing
    /// through either backend and reading back through a *fresh*
    /// handle reproduces the same cube the in-memory fact table
    /// produces — and after reopening the directory, the same bytes.
    #[test]
    fn seal_and_reopen_reproduces_every_row(
        rows in proptest::collection::vec((0usize..3, 0u8..8, 0u8..2, 0u8..16), 1..40),
        target in 1usize..16,
    ) {
        let spec = CubeSpec::measure(vec!["FBG_Band"], olap::Aggregate::Sum, "FBG");
        let legacy = ScanOptions { segments: false, ..ScanOptions::default() };
        let config = CompactionConfig { target_rows_per_segment: target, sort: true };

        let dir = temp_dir();
        let backends: [(&str, Arc<dyn SegmentBackend>); 2] = [
            ("memory", Arc::new(MemoryBackend::new())),
            ("disk", Arc::new(DiskBackend::create(&dir).unwrap())),
        ];
        for (kind, backend) in backends {
            let mut wh = load_warehouse(&rows);
            wh.set_segment_backend(backend).unwrap();
            wh.compact_with(&config).unwrap();
            prop_assert_eq!(wh.segments().watermark(), rows.len());

            let (segmented, stats) = Cube::build_with_stats(&wh, &spec).unwrap();
            let (oracle, _) = Cube::build_with_options(&wh, &spec, &legacy).unwrap();
            prop_assert_eq!(&segmented, &oracle, "backend {}", kind);
            prop_assert_eq!(stats.rows_scanned as usize, rows.len());
            prop_assert_eq!(stats.segments_total as usize, rows.len().div_ceil(target));

            // Every sealed segment fetches identically through a
            // fresh handle on the same storage.
            if kind == "disk" {
                let reopened = DiskBackend::open(&dir).unwrap();
                for meta in wh.segments().metas() {
                    let live = wh.fetch_segment(meta.id, &ColumnSet::all()).unwrap();
                    let fresh = reopened.fetch(meta.id, &ColumnSet::all()).unwrap();
                    prop_assert_eq!(live.key_column("Bloods"), fresh.key_column("Bloods"));
                    prop_assert_eq!(live.measure_column("FBG"), fresh.measure_column("FBG"));
                    prop_assert_eq!(
                        live.degenerate_column("PatientId"),
                        fresh.degenerate_column("PatientId")
                    );
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Any single flipped byte in any sealed segment file is caught by
    /// the per-record CRC on the next fetch.
    #[test]
    fn on_disk_byte_flips_are_detected(
        rows in proptest::collection::vec((0usize..3, 0u8..8, 0u8..2, 0u8..16), 4..24),
        victim in 0usize..4096,
        bit in 0u8..8,
    ) {
        let dir = temp_dir();
        let mut wh = load_warehouse(&rows);
        wh.set_segment_backend(Arc::new(DiskBackend::create(&dir).unwrap())).unwrap();
        wh.compact_with(&CompactionConfig { target_rows_per_segment: 8, sort: true }).unwrap();

        let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| Some(e.ok()?.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "seg"))
            .collect();
        files.sort();
        prop_assert!(!files.is_empty());
        let file = &files[victim % files.len()];
        let mut bytes = std::fs::read(file).unwrap();
        let at = victim % bytes.len();
        bytes[at] ^= 1 << bit;
        std::fs::write(file, &bytes).unwrap();

        let reopened = DiskBackend::open(&dir).unwrap();
        let hit = reopened
            .list()
            .unwrap()
            .into_iter()
            .any(|id| reopened.fetch(id, &ColumnSet::all()).is_err());
        prop_assert!(hit, "flipping byte {} bit {} went undetected", at, bit);
        std::fs::remove_dir_all(&dir).ok();
    }
}
