//! Chaos drills for the replicated serve tier: replica death under
//! live load, the epoch-routing invariant, truncation-driven
//! re-seeding (and its interaction with delta-log age-out), and a
//! property test that a replica's state after arbitrary crash/replay
//! interleavings is indistinguishable from the primary's.
//!
//! Tests that arm failpoints serialise on
//! `fault::test_support::fault_lock()`.

use clinical_types::{DataType, FieldDef, Record, Schema, Table, Value};
use oplog::{Oplog, OplogError, Replica};
use proptest::prelude::*;
use serve::{QueryRequest, ReplicaRouter, ReportSpec, RouterConfig, ServeConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use warehouse::{
    DimensionDef, FactDef, LoadPlan, StarSchema, Warehouse, WarehouseChange, DELTA_LOG_CAPACITY,
};

fn schema() -> Schema {
    Schema::new(vec![
        FieldDef::nullable("FBG", DataType::Float),
        FieldDef::nullable("FBG_Band", DataType::Text),
        FieldDef::nullable("Gender", DataType::Text),
    ])
    .unwrap()
}

fn rows_table(rows: Vec<Vec<Value>>) -> Table {
    Table::from_rows(schema(), rows.into_iter().map(Record::new).collect()).unwrap()
}

fn small_warehouse() -> Warehouse {
    let star = StarSchema::new(
        FactDef::new("Facts", vec!["FBG"], vec![]),
        vec![DimensionDef::new("Bloods", vec!["FBG_Band", "Gender"])],
    )
    .unwrap();
    let table = rows_table(vec![
        vec![5.0.into(), "very good".into(), "F".into()],
        vec![6.5.into(), "preDiabetic".into(), "M".into()],
        vec![8.0.into(), "Diabetic".into(), "F".into()],
        vec![7.2.into(), "Diabetic".into(), "M".into()],
    ]);
    Warehouse::load(&LoadPlan::from_star(star), &table).unwrap()
}

fn one_row(fbg: f64) -> Table {
    rows_table(vec![vec![fbg.into(), "Diabetic".into(), "M".into()]])
}

fn count_by_band() -> QueryRequest {
    QueryRequest::Report(ReportSpec::new().on_rows("FBG_Band").count())
}

/// The MDX corpus both sides must answer identically. Band members,
/// cross-tabs, filters and distinct counts — the shapes the paper's
/// Fig. 4–6 queries exercise.
const MDX_CORPUS: &[&str] = &[
    "SELECT [Gender].MEMBERS ON COLUMNS, [FBG_Band].MEMBERS ON ROWS \
     FROM [Facts] MEASURE COUNT(*)",
    "SELECT [FBG_Band].MEMBERS ON COLUMNS, [Gender].MEMBERS ON ROWS \
     FROM [Facts] MEASURE AVG([FBG])",
    "SELECT [Gender].MEMBERS ON COLUMNS, [FBG_Band].MEMBERS ON ROWS \
     FROM [Facts] WHERE [FBG] BETWEEN 5 AND 9 MEASURE COUNT(*)",
    "SELECT [Gender].MEMBERS ON COLUMNS, [FBG_Band].MEMBERS ON ROWS \
     FROM [Facts] MEASURE MAX([FBG])",
];

/// Every corpus query must produce bit-identical pivots on both
/// warehouses (the replica re-derived its state purely from the log).
fn assert_corpus_identical(primary: &Warehouse, replica: &Warehouse) {
    for mdx in MDX_CORPUS {
        let p = olap::execute_mdx(primary, mdx).expect("primary serves corpus");
        let r = olap::execute_mdx(replica, mdx).expect("replica serves corpus");
        assert_eq!(p, r, "corpus divergence on {mdx}");
    }
}

/// Drill 1 — kill a replica mid-load. Every *accepted* query must
/// come back served (failed over or explicitly degraded); zero are
/// lost to the death.
#[test]
fn killing_a_replica_mid_load_loses_no_accepted_queries() {
    const CLIENTS: usize = 4;
    const ROUNDS: usize = 64;
    let router = Arc::new(
        ReplicaRouter::new(
            small_warehouse(),
            RouterConfig {
                replicas: 3,
                serve: ServeConfig {
                    workers: 2,
                    watchdog: false,
                    ..ServeConfig::default()
                },
                ..RouterConfig::default()
            },
        )
        .unwrap(),
    );

    let accepted = AtomicU64::new(0);
    let barrier = Barrier::new(CLIENTS + 1);
    thread::scope(|s| {
        for _ in 0..CLIENTS {
            let router = Arc::clone(&router);
            let accepted = &accepted;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for _ in 0..ROUNDS {
                    let served = router
                        .execute(&count_by_band())
                        .expect("an accepted query must be served despite the kill");
                    assert!(!served.value.degraded, "all fresh replicas are live");
                    accepted.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // The killer: let the load start, then take replica 0 down
        // mid-flight and leave it down.
        let killer_router = Arc::clone(&router);
        let killer_accepted = &accepted;
        let killer_barrier = &barrier;
        s.spawn(move || {
            killer_barrier.wait();
            while killer_accepted.load(Ordering::Relaxed) < (CLIENTS * ROUNDS / 4) as u64 {
                thread::yield_now();
            }
            assert!(killer_router.fail_replica(0));
        });
    });

    assert_eq!(accepted.load(Ordering::Relaxed), (CLIENTS * ROUNDS) as u64);
    let m = router.metrics();
    assert_eq!(m.routed, (CLIENTS * ROUNDS) as u64);
    assert_eq!(m.degraded, 0, "two fresh replicas remained throughout");
}

/// Drill 2 — the routing invariant: a lagging replica never serves an
/// epoch it has not fully applied. While catch-up is wedged, every
/// answer is explicitly degraded and carries the replica's *applied*
/// epoch, never the primary's future one.
#[test]
fn lagging_replica_never_serves_future_epochs() {
    let _lock = fault::test_support::fault_lock();
    let router = ReplicaRouter::new(small_warehouse(), RouterConfig::default()).unwrap();
    let seeded_epoch = router.epoch();
    // Prime so a (stale) answer exists, then advance the primary.
    router.execute(&count_by_band()).unwrap();
    router.append(&one_row(9.1)).unwrap();
    router.append(&one_row(9.2)).unwrap();
    let future = router.epoch();
    assert!(future > seeded_epoch);

    // Catch-up is wedged: ticks must apply nothing.
    let wedge = fault::arm(
        "replica.apply",
        fault::Trigger::Always,
        fault::FaultKind::Error,
    );
    assert_eq!(router.tick(), 0);
    for _ in 0..8 {
        let served = router.execute(&count_by_band()).unwrap();
        assert!(served.value.degraded, "stale service must be marked");
        assert!(
            served.epoch <= seeded_epoch,
            "replica served epoch {} it cannot have applied (applied {})",
            served.epoch,
            seeded_epoch
        );
    }
    for status in router.replica_status() {
        assert_eq!(status.applied_epoch, seeded_epoch);
    }

    // Unwedge: replicas catch up and the same query serves fresh.
    drop(wedge);
    assert_eq!(router.tick(), 4, "two records × two replicas");
    let served = router.execute(&count_by_band()).unwrap();
    assert!(!served.value.degraded);
    assert_eq!(served.epoch, future);
}

/// Drill 3 — a crash mid-batch halts catch-up on a record boundary:
/// the replica exposes the last *fully applied* epoch, then resumes
/// to the exact primary state.
#[test]
fn partial_catch_up_stops_on_a_record_boundary() {
    let _lock = fault::test_support::fault_lock();
    let router = ReplicaRouter::new(
        small_warehouse(),
        RouterConfig {
            replicas: 1,
            ..RouterConfig::default()
        },
    )
    .unwrap();
    router.append(&one_row(9.1)).unwrap();
    let mid_epoch = router.epoch();
    router.append(&one_row(9.2)).unwrap();
    router.append(&one_row(9.3)).unwrap();

    // The pump crashes after one applied record.
    let crash = fault::arm(
        "replica.apply",
        fault::Trigger::AfterK(1),
        fault::FaultKind::Error,
    );
    assert_eq!(router.tick(), 1);
    let status = &router.replica_status()[0];
    assert_eq!(
        status.applied_epoch, mid_epoch,
        "cursor must sit on the record boundary"
    );
    let served = router.execute(&count_by_band()).unwrap();
    assert!(served.value.degraded);
    assert_eq!(served.epoch, mid_epoch);

    // Resume: the remaining two records replay and the replica's
    // answers are bit-identical to the primary's.
    drop(crash);
    assert_eq!(router.tick(), 2);
    assert_eq!(router.replica_status()[0].applied_epoch, router.epoch());
    assert!(!router.execute(&count_by_band()).unwrap().value.degraded);
}

/// Drill 4 — truncation/age-out: a replica stranded behind the oplog
/// horizon re-seeds from a primary snapshot (never replaying a gap),
/// and a replica whose *warehouse delta log* aged out revalidates
/// cached entries conservatively (`delta_log_aged_out`) instead of
/// serving unprovable bytes.
#[test]
fn truncation_and_age_out_force_reseed_and_conservative_revalidation() {
    let router = ReplicaRouter::new(
        small_warehouse(),
        RouterConfig {
            replicas: 1,
            ..RouterConfig::default()
        },
    )
    .unwrap();
    // Warm the replica's cache at the seed epoch.
    router.execute(&count_by_band()).unwrap();

    // Age the warehouse delta log out on both sides: more mutations
    // than the bounded delta log retains, all replayed by the replica.
    for i in 0..(DELTA_LOG_CAPACITY + 2) {
        router
            .append(&one_row(5.0 + (i % 40) as f64 / 10.0))
            .unwrap();
        router.tick();
    }
    assert_eq!(router.replica_status()[0].applied_epoch, router.epoch());
    // The warmed entry's epoch predates the replica's retained delta
    // history: revalidation must fall back to re-execution and count
    // the age-out — stale bytes are never served unprovably.
    let refreshed = router.execute(&count_by_band()).unwrap();
    assert!(!refreshed.value.degraded);
    assert_eq!(refreshed.epoch, router.epoch());

    // Now strand the replica behind the *oplog* horizon: new records
    // plus full truncation while catch-up is down.
    router.fail_replica(0);
    router.append(&one_row(9.9)).unwrap();
    router.append(&one_row(9.8)).unwrap();
    router.oplog().truncate_before(u64::MAX).unwrap();
    router.revive_replica(0);
    router.tick();
    let m = router.metrics();
    assert_eq!(m.reseeds, 1, "behind the horizon → snapshot re-seed");
    assert_eq!(router.replica_status()[0].applied_epoch, router.epoch());
    let served = router.execute(&count_by_band()).unwrap();
    assert!(!served.value.degraded, "re-seeded replica is fresh");
}

/// The per-user quota drills at router level: one abusive session is
/// rejected with a typed error; bystanders and the rejection counter
/// are unaffected.
#[test]
fn router_quota_isolates_sessions_under_load() {
    let router = ReplicaRouter::new(
        small_warehouse(),
        RouterConfig {
            quota: Some(serve::QuotaConfig {
                capacity: 4.0,
                refill_per_sec: 0.0,
            }),
            ..RouterConfig::default()
        },
    )
    .unwrap();
    let mut rejected = 0;
    for _ in 0..16 {
        match router.execute_for("chatty", &count_by_band()) {
            Ok(_) => {}
            Err(serve::ServeError::QuotaExceeded { session, .. }) => {
                assert_eq!(session, "chatty");
                rejected += 1;
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    assert_eq!(rejected, 12, "burst of 4, then typed rejections");
    assert_eq!(router.metrics().quota_rejected, 12);
    assert!(router.execute_for("bystander", &count_by_band()).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property — whatever interleaving of mutations, torn catch-up
    /// runs, truncations and re-seeds a replica lives through, once it
    /// fully catches up its epoch equals the primary's and the whole
    /// MDX corpus answers bit-identically.
    ///
    /// Steps are `(kind, arg)` pairs: 0 = append `1+arg%3` one-row
    /// batches, 1 = feedback dimension, 2 = rewrite marker, 3 = crash
    /// the replica's catch-up after `arg%3` applied records then
    /// replay, 4 = age the whole log out under the replica's feet.
    #[test]
    fn replica_converges_to_primary_under_arbitrary_interleavings(
        steps in proptest::collection::vec((0u8..5, 0u8..3), 1..12),
    ) {
        let _lock = fault::test_support::fault_lock();
        let log = Arc::new(Oplog::in_memory());
        let mut primary = small_warehouse();
        let mut replica = Replica::seed(&primary, Arc::clone(&log)).unwrap();

        // Feedback steps widen the star schema, so later appends must
        // carry the accumulated attribute columns too.
        let mut feedback_attrs: Vec<String> = Vec::new();
        let append_row = |attrs: &[String], fbg: f64| -> Table {
            let mut fields = vec![
                FieldDef::nullable("FBG", DataType::Float),
                FieldDef::nullable("FBG_Band", DataType::Text),
                FieldDef::nullable("Gender", DataType::Text),
            ];
            let mut row: Vec<Value> = vec![fbg.into(), "Diabetic".into(), "M".into()];
            for attr in attrs {
                fields.push(FieldDef::nullable(attr, DataType::Text));
                row.push("x".into());
            }
            Table::from_rows(Schema::new(fields).unwrap(), vec![Record::new(row)]).unwrap()
        };

        for (i, &(kind, arg)) in steps.iter().enumerate() {
            match kind {
                0 => {
                    for r in 0..=(arg % 3) {
                        let table =
                            append_row(&feedback_attrs, 4.0 + (i as f64) + f64::from(r) / 10.0);
                        primary.append(&table).unwrap();
                        log.append(&WarehouseChange::Append(table), primary.epoch())
                            .unwrap();
                    }
                }
                1 => {
                    let n = primary.n_facts();
                    let labels = vec![Value::from("x"); n];
                    let change = WarehouseChange::Feedback {
                        dimension: format!("Dim{i}"),
                        attribute: format!("Attr{i}"),
                        labels: labels.clone(),
                    };
                    primary
                        .add_feedback_dimension(&format!("Dim{i}"), &format!("Attr{i}"), labels)
                        .unwrap();
                    log.append(&change, primary.epoch()).unwrap();
                    feedback_attrs.push(format!("Attr{i}"));
                }
                2 => {
                    primary.bump_epoch();
                    log.append(&WarehouseChange::Rewrite, primary.epoch()).unwrap();
                }
                3 => {
                    let crash = fault::arm(
                        "replica.apply",
                        fault::Trigger::AfterK(u64::from(arg % 3)),
                        fault::FaultKind::Error,
                    );
                    let _ = replica.catch_up();
                    drop(crash);
                    replica.catch_up().unwrap();
                }
                _ => {
                    log.truncate_before(primary.epoch() + 1).unwrap();
                    match replica.catch_up() {
                        Ok(_) => {}
                        Err(OplogError::Truncated { .. }) => {
                            replica.reseed(&primary).unwrap();
                        }
                        Err(other) => panic!("unexpected catch-up failure: {other}"),
                    }
                }
            }
            // Invariant at every step: the replica never runs ahead,
            // and never exposes a partially applied epoch.
            prop_assert!(replica.applied_epoch() <= primary.epoch());
        }

        // Final convergence: catch up completely (re-seeding if the
        // last step stranded us) and compare everything.
        match replica.catch_up() {
            Ok(_) => {}
            Err(OplogError::Truncated { .. }) => replica.reseed(&primary).unwrap(),
            Err(other) => panic!("final catch-up failed: {other}"),
        }
        prop_assert_eq!(replica.applied_epoch(), primary.epoch());
        prop_assert_eq!(replica.warehouse().n_facts(), primary.n_facts());
        assert_corpus_identical(&primary, replica.warehouse());
    }
}

/// The durable half of the proptest's claim, pinned deterministically:
/// a replica tailing a *file-backed* log across a torn-tail recovery
/// converges to the primary.
#[test]
fn durable_log_with_torn_tail_still_converges() {
    let path = std::env::temp_dir().join(format!("ddgms-chaos-{}-torn.log", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let seed_state = small_warehouse();
    let mut primary = seed_state.clone();
    {
        let (log, torn) = Oplog::open(&path).unwrap();
        assert!(!torn);
        for i in 0..3 {
            let table = one_row(6.0 + f64::from(i));
            primary.append(&table).unwrap();
            log.append(&WarehouseChange::Append(table), primary.epoch())
                .unwrap();
        }
    }
    // Tear the last frame: the third append is lost from the feed.
    let mut raw = std::fs::read(&path).unwrap();
    let cut = raw.len() - 9;
    raw.truncate(cut);
    std::fs::write(&path, &raw).unwrap();

    let (log, torn) = Oplog::open(&path).unwrap();
    assert!(torn, "the torn tail must be detected");
    let log = Arc::new(log);
    // A replica seeded from the pre-append state replays exactly the
    // intact prefix — never a half-recovered record.
    let mut replica = Replica::seed(&seed_state, Arc::clone(&log)).unwrap();
    replica.catch_up().unwrap();
    assert_eq!(log.len(), 2, "only the intact appends survive recovery");
    assert_eq!(
        replica.applied_epoch(),
        log.last_pos().unwrap().epoch,
        "replica applied exactly the intact prefix"
    );
    assert_eq!(replica.warehouse().n_facts(), seed_state.n_facts() + 2);
    let _ = std::fs::remove_file(&path);
}
