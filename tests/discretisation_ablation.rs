//! DESIGN.md §6 ablation: do the supervised discretisers (MDLP,
//! ChiMerge) buy downstream classifier accuracy over unsupervised
//! binning — and does any of them beat the clinician's Table I scheme?
//!
//! Setup: classify diabetes from the *continuous* FBG value after
//! discretising it with each method, evaluated with 5-fold
//! cross-validated naive Bayes. Supervised cuts should land near the
//! clinically meaningful 7.0 mmol/L boundary and score close to the
//! clinical scheme; equal-width over a skewed measure should trail.

use discri::{generate, CohortConfig};
use etl::{table1_schemes, Bins, ChiMerge, Discretiser, EqualFrequency, EqualWidth, Mdlp};
use mining::dataset::{Dataset, Feature};
use mining::{cross_validate, NaiveBayes};

/// Build a 1-feature dataset from FBG values discretised by `bins`.
fn dataset_from_bins(values: &[f64], classes: &[usize], bins: &Bins) -> Dataset {
    Dataset {
        features: vec![Feature {
            name: "FBG_Band".into(),
            labels: bins.labels().to_vec(),
        }],
        class_labels: vec!["no".into(), "yes".into()],
        cells: values.iter().map(|v| vec![bins.assign(*v)]).collect(),
        classes: classes.to_vec(),
    }
}

fn cv_accuracy(data: &Dataset) -> f64 {
    cross_validate(data, 5, 13, NaiveBayes::fit, |model, test| {
        model.predict_all(test)
    })
    .expect("cross-validation runs")
    .mean_accuracy
}

#[test]
fn supervised_cuts_match_clinical_quality() {
    let cohort = generate(&CohortConfig::default());
    let table = &cohort.attendances;
    let schema = table.schema();
    let fbg_idx = schema.index_of("FBG").unwrap();
    let status_idx = schema.index_of("DiabetesStatus").unwrap();

    let mut values = Vec::new();
    let mut classes = Vec::new();
    for row in table.rows() {
        let (Some(fbg), Some(status)) = (row[fbg_idx].as_f64(), row[status_idx].as_str()) else {
            continue;
        };
        if !(1.5..=35.0).contains(&fbg) {
            continue; // skip injected errors, as the cleaner would
        }
        values.push(fbg);
        classes.push(usize::from(status == "yes"));
    }
    assert!(values.len() > 1000);

    let clinical = table1_schemes()[2].bins.clone();
    let mdlp = Mdlp::new().fit(&values, Some(&classes)).unwrap();
    let chimerge = ChiMerge::new(6).fit(&values, Some(&classes)).unwrap();
    let eq_width = EqualWidth::new(4).fit(&values, None).unwrap();
    let eq_freq = EqualFrequency::new(4).fit(&values, None).unwrap();

    let acc = |bins: &Bins| cv_accuracy(&dataset_from_bins(&values, &classes, bins));
    let a_clinical = acc(&clinical);
    let a_mdlp = acc(&mdlp);
    let a_chimerge = acc(&chimerge);
    let a_width = acc(&eq_width);
    let a_freq = acc(&eq_freq);

    println!(
        "CV accuracy — clinical {a_clinical:.3} | mdlp {a_mdlp:.3} | chimerge {a_chimerge:.3} \
         | equal-width {a_width:.3} | equal-freq {a_freq:.3}"
    );

    // The supervised methods must be competitive with the clinician:
    // within 3 points of the Table I scheme.
    assert!(
        a_mdlp > a_clinical - 0.03,
        "MDLP {a_mdlp} vs clinical {a_clinical}"
    );
    assert!(
        a_chimerge > a_clinical - 0.03,
        "ChiMerge {a_chimerge} vs clinical {a_clinical}"
    );
    // And MDLP must find a cut near the diagnostic 7.0 boundary.
    assert!(
        mdlp.edges().iter().any(|e| (6.3..=7.7).contains(e)),
        "MDLP cuts {:?} miss the 7.0 mmol/L boundary",
        mdlp.edges()
    );
    // The clinically grounded cuts beat the majority class; the
    // unsupervised baselines are NOT guaranteed to — equal-frequency
    // quartiles mix diabetics into every bin, which is precisely the
    // ablation's point (and the reason the paper gives clinicians
    // precedence).
    let majority = classes.iter().filter(|&&c| c == 0).count() as f64 / classes.len() as f64;
    let majority = majority.max(1.0 - majority);
    for (name, a) in [
        ("clinical", a_clinical),
        ("mdlp", a_mdlp),
        ("chimerge", a_chimerge),
    ] {
        assert!(
            a > majority,
            "{name} ({a:.3}) does not beat majority ({majority:.3})"
        );
    }
    // The unsupervised baselines stay valid binnings: never below the
    // majority floor by more than noise.
    assert!(a_width > majority - 0.02);
    assert!(a_freq > majority - 0.02);
}

#[test]
fn band_labels_reaching_the_warehouse_are_the_clinical_ones() {
    // End-to-end guard: whatever the ablation says, the *pipeline*
    // must keep clinician precedence for FBG.
    let cohort = generate(&CohortConfig::small(23));
    let (table, report) = etl::TransformPipeline::discri_default()
        .run(&cohort.attendances)
        .unwrap();
    let fbg_band = report
        .bands
        .iter()
        .find(|(c, _, _)| c == "FBG_Band")
        .expect("FBG band derived");
    assert_eq!(fbg_band.2, etl::pipeline::BandSource::Clinical);
    let labels: std::collections::HashSet<String> = table
        .column("FBG_Band")
        .unwrap()
        .filter_map(|v| v.as_str().map(String::from))
        .collect();
    for l in labels {
        assert!(
            ["very good", "high", "preDiabetic", "Diabetic"].contains(&l.as_str()),
            "unexpected FBG band {l}"
        );
    }
}
