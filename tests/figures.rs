//! Reproduction tests for the paper's figures, run end-to-end through
//! the public API (generator → ETL → warehouse → MDX) at the paper's
//! cohort scale. These are the headline assertions of EXPERIMENTS.md.

use clinical_types::Value;
use dd_dgms::DdDgms;
use discri::{generate, CohortConfig};
use std::sync::OnceLock;

fn system() -> &'static DdDgms {
    static SYSTEM: OnceLock<DdDgms> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        let cohort = generate(&CohortConfig::default());
        DdDgms::from_raw_attendances(&cohort.attendances).expect("system builds")
    })
}

fn cell(pivot: &olap::PivotTable, row: &str, col: &str) -> f64 {
    pivot
        .get(&Value::from(row), &Value::from(col))
        .unwrap_or(0.0)
}

#[test]
fn fig4_family_history_pivot_has_both_genders_and_all_age_groups() {
    let pivot = system()
        .query()
        .on_rows("Age_Band")
        .on_columns("Gender")
        .where_equals("FamilyHistoryDiabetes", true)
        .count()
        .execute()
        .unwrap();
    assert_eq!(pivot.col_headers.len(), 2);
    assert!(pivot.row_headers.len() >= 3);
    let total: f64 = pivot.row_totals().iter().sum();
    assert!(total > 100.0, "family-history slice too small: {total}");
}

#[test]
fn fig5_gender_crossover_in_the_seventies() {
    let fine = system()
        .mdx(
            "SELECT [Gender].MEMBERS ON COLUMNS, [Age_SubGroup].MEMBERS ON ROWS \
             FROM [Medical Measures] WHERE [DiabetesStatus] = 'yes' \
             MEASURE COUNT(DISTINCT [PatientId])",
        )
        .unwrap();
    let m_7075 = cell(&fine, "70-75", "M");
    let f_7075 = cell(&fine, "70-75", "F");
    let m_7580 = cell(&fine, "75-80", "M");
    let f_7580 = cell(&fine, "75-80", "F");
    assert!(
        m_7075 > f_7075,
        "males must dominate 70-75: M={m_7075} F={f_7075}"
    );
    assert!(
        f_7580 > m_7580,
        "females must dominate 75-80: F={f_7580} M={m_7580}"
    );
    // "drops substantially over 78": the female count past 80
    // collapses relative to its 75-80 peak.
    let f_80plus = cell(&fine, "80-85", "F") + cell(&fine, ">=85", "F");
    assert!(
        f_80plus < f_7580 * 0.8,
        "female diabetics must drop past 78: 80+={f_80plus} vs 75-80={f_7580}"
    );
}

#[test]
fn fig5_drilldown_preserves_totals() {
    let coarse = system()
        .mdx(
            "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
             FROM [Medical Measures] WHERE [DiabetesStatus] = 'yes' MEASURE COUNT(*)",
        )
        .unwrap();
    let fine = system()
        .mdx(
            "SELECT [Gender].MEMBERS ON COLUMNS, [Age_SubGroup].MEMBERS ON ROWS \
             FROM [Medical Measures] WHERE [DiabetesStatus] = 'yes' MEASURE COUNT(*)",
        )
        .unwrap();
    let coarse_total: f64 = coarse.row_totals().iter().sum();
    let fine_total: f64 = fine.row_totals().iter().sum();
    assert!(coarse_total > 0.0);
    assert!((coarse_total - fine_total).abs() < 1e-9);
    assert!(fine.row_headers.len() > coarse.row_headers.len());
}

#[test]
fn fig6_five_to_ten_band_dips_in_the_seventies() {
    let fine = system()
        .mdx(
            "SELECT [DiagnosticHTYears_Band].MEMBERS ON COLUMNS, \
             [Age_SubGroup].MEMBERS ON ROWS \
             FROM [Medical Measures] WHERE [HypertensionStatus] = 'yes' MEASURE COUNT(*)",
        )
        .unwrap();
    let share = |age: &str| {
        let five_ten = cell(&fine, age, "5-10");
        let total: f64 = ["<2", "2-5", "5-10", "10-20", ">20"]
            .iter()
            .map(|b| cell(&fine, age, b))
            .sum();
        assert!(total > 0.0, "no hypertensives in {age}");
        five_ten / total
    };
    let reference = share("65-70");
    assert!(
        share("70-75") < reference * 0.75,
        "5-10 band must dip in 70-75: {} vs reference {}",
        share("70-75"),
        reference
    );
    assert!(
        share("75-80") < reference * 0.75,
        "5-10 band must dip in 75-80: {} vs reference {}",
        share("75-80"),
        reference
    );
}

#[test]
fn table1_bands_partition_the_cohort() {
    // Every non-missing FBG value falls in exactly one Table I band,
    // and the four bands cover the clinical range the paper lists.
    let pivot = system()
        .query()
        .on_rows("FBG_Band")
        .count()
        .execute()
        .unwrap();
    let bands: Vec<String> = pivot.row_headers.iter().map(|h| h.to_string()).collect();
    for expected in ["very good", "high", "preDiabetic", "Diabetic"] {
        assert!(
            bands.contains(&expected.to_string()),
            "missing band {expected}"
        );
    }
    // Rows whose FBG is missing group under the NULL band; the four
    // labelled bands must account for exactly the non-missing rows.
    let banded: f64 = pivot
        .row_headers
        .iter()
        .zip(pivot.row_totals())
        .filter(|(h, _)| !h.is_null())
        .map(|(_, t)| t)
        .sum();
    let n_with_fbg = system()
        .transformed()
        .column("FBG")
        .unwrap()
        .filter(|v| !v.is_null())
        .count();
    assert!((banded - n_with_fbg as f64).abs() < 1e-9);
}
