//! The fault matrix: deterministic chaos drills against the durable
//! store, the warehouse loader, and the serving layer.
//!
//! Every test here injects a failure — a torn WAL tail, an I/O error
//! mid-append, a worker panic, a thread that cannot be spawned — and
//! asserts the *graceful* outcome the design promises: recovery keeps
//! every record before the tear, the previous epoch stays queryable,
//! the pool heals back to full size, and the circuit breaker degrades
//! to stale-but-marked answers instead of erroring, then closes again
//! once probes succeed. No drill may abort the process.
//!
//! Failpoint state is process-global, so every test that arms a
//! failpoint serialises on `fault::test_support::fault_lock()`.

use clinical_types::{DataType, FieldDef, Record, Schema, Table, Value};
use fault::{FaultKind, Trigger};
use oltp::DurableStore;
use proptest::prelude::*;
use serve::{
    BreakerState, QueryRequest, QueryService, ReportSpec, RetryPolicy, ServeConfig, ServedSource,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use warehouse::{DimensionDef, FactDef, LoadPlan, StarSchema, Warehouse};

// ---------------------------------------------------------------- helpers

fn serve_schema() -> Schema {
    Schema::new(vec![
        FieldDef::nullable("FBG", DataType::Float),
        FieldDef::nullable("FBG_Band", DataType::Text),
        FieldDef::nullable("Gender", DataType::Text),
    ])
    .unwrap()
}

fn rows_table(rows: Vec<Vec<Value>>) -> Table {
    Table::from_rows(serve_schema(), rows.into_iter().map(Record::new).collect()).unwrap()
}

fn small_warehouse() -> Warehouse {
    let star = StarSchema::new(
        FactDef::new("Facts", vec!["FBG"], vec![]),
        vec![DimensionDef::new("Bloods", vec!["FBG_Band", "Gender"])],
    )
    .unwrap();
    let table = rows_table(vec![
        vec![5.0.into(), "very good".into(), "F".into()],
        vec![6.5.into(), "preDiabetic".into(), "M".into()],
        vec![8.0.into(), "Diabetic".into(), "F".into()],
        vec![7.2.into(), "Diabetic".into(), "M".into()],
    ]);
    Warehouse::load(&LoadPlan::from_star(star), &table).unwrap()
}

fn count_by_band() -> QueryRequest {
    QueryRequest::Report(ReportSpec::new().on_rows("FBG_Band").count())
}

fn service(config: ServeConfig) -> QueryService {
    QueryService::new(small_warehouse(), config).unwrap()
}

/// Poll `cond` every 5ms until it holds or `deadline` passes.
fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

fn wal_path(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join("dd_dgms_fault_matrix");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{tag}_{}_{}.wal",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

// ------------------------------------------------- WAL torn-tail recovery

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating the log at *any* byte offset — mid-header, mid-record,
    /// or on a clean boundary — must leave recovery with an intact,
    /// contiguous prefix of the original rows, and the post-recovery
    /// rewrite must parse clean on a second recovery.
    #[test]
    fn torn_tail_at_any_offset_preserves_the_prefix(
        n in 1usize..40,
        cut_permille in 0u32..=1000,
    ) {
        let schema = Schema::new(vec![
            FieldDef::required("Id", DataType::Int),
            FieldDef::nullable("X", DataType::Float),
        ])
        .unwrap();
        let path = wal_path("torn");
        {
            let store = DurableStore::create(schema.clone(), &path).unwrap();
            for i in 0..n as i64 {
                store
                    .insert(Record::new(vec![Value::Int(i), Value::Float(i as f64)]))
                    .unwrap();
            }
            store.sync().unwrap();
        }
        let raw = std::fs::read(&path).unwrap();
        let cut = raw.len() * cut_permille as usize / 1000;
        std::fs::write(&path, &raw[..cut.min(raw.len())]).unwrap();

        let (store, torn) = DurableStore::recover(schema.clone(), &path).unwrap();
        let len = store.store().len();
        prop_assert!(len <= n, "recovered more rows than were written");
        if cut >= raw.len() {
            prop_assert!(!torn, "untruncated log reported torn");
            prop_assert_eq!(len, n);
        }
        // Every surviving row is intact and ids are contiguous from 0.
        for id in 0..len as u64 {
            let rec = store.store().get(id).unwrap().expect("row present");
            prop_assert_eq!(&rec.values()[0], &Value::Int(id as i64));
            prop_assert_eq!(&rec.values()[1], &Value::Float(id as f64));
        }
        store.sync().unwrap();
        drop(store);

        // The recovery rewrite is itself durable: a second recovery
        // sees a clean log with the same prefix.
        let (again, torn2) = DurableStore::recover(schema, &path).unwrap();
        prop_assert!(!torn2, "post-recovery log still torn");
        prop_assert_eq!(again.store().len(), len);
        std::fs::remove_file(&path).ok();
    }
}

// ------------------------------------- warehouse: mid-load fault isolation

#[test]
fn append_fault_leaves_previous_epoch_queryable() {
    let _lock = fault::test_support::fault_lock();
    let svc = service(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let primed = svc.execute(&count_by_band()).unwrap();
    assert_eq!(primed.source, ServedSource::Executed);
    let epoch_before = svc.epoch();
    let facts_before = svc.with_warehouse(|wh| wh.n_facts());

    let more = rows_table(vec![
        vec![9.1.into(), "Diabetic".into(), "F".into()],
        vec![4.9.into(), "very good".into(), "M".into()],
    ]);
    {
        let _fault = fault::arm("warehouse.append", Trigger::Always, FaultKind::Error);
        let err = svc.append(&more).expect_err("armed append must fail");
        assert!(
            err.to_string()
                .contains("injected fault at warehouse.append"),
            "unexpected error: {err}"
        );
    }

    // The failed load mutated nothing: same epoch, same fact count,
    // and the cached result still serves fresh.
    assert_eq!(svc.epoch(), epoch_before);
    assert_eq!(svc.with_warehouse(|wh| wh.n_facts()), facts_before);
    let after = svc.execute(&count_by_band()).unwrap();
    assert_eq!(after.source, ServedSource::Cache);
    assert!(!after.value.degraded);
    assert_eq!(after.value, primed.value);

    // With the fault disarmed the same append goes through.
    assert_eq!(svc.append(&more).unwrap(), 2);
    assert!(svc.epoch() > epoch_before);
    svc.shutdown();
}

// --------------------------------------------- serve: worker self-healing

#[test]
fn worker_thread_death_heals_back_to_full_pool_size() {
    let _lock = fault::test_support::fault_lock();
    let svc = service(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    // Spawned threads increment the live count as they start.
    assert!(wait_until(Duration::from_secs(5), || svc.workers_alive() == 2));

    // `serve.worker` sits at the top of the worker loop: the worker
    // that finishes this job dies on its next iteration, after the
    // caller already has its answer.
    let _fault = fault::arm("serve.worker", Trigger::Once, FaultKind::Panic);
    let served = svc.execute(&count_by_band()).unwrap();
    assert_eq!(served.source, ServedSource::Executed);

    assert!(
        wait_until(Duration::from_secs(5), || {
            let m = svc.metrics();
            m.worker_panics >= 1 && m.worker_respawned >= 1 && svc.workers_alive() == 2
        }),
        "pool did not heal: {} alive, metrics {}",
        svc.workers_alive(),
        svc.metrics()
    );

    // The healed pool still serves.
    svc.clear_cache();
    let again = svc.execute(&count_by_band()).unwrap();
    assert_eq!(again.source, ServedSource::Executed);
    let m = svc.shutdown();
    assert_eq!(m.worker_respawn_failed, 0);
}

#[test]
fn job_panic_is_contained_to_a_typed_error() {
    let _lock = fault::test_support::fault_lock();
    let svc = service(ServeConfig {
        workers: 2,
        breaker_threshold: 100, // isolate panic containment from the breaker
        ..ServeConfig::default()
    });

    {
        let _fault = fault::arm("serve.execute", Trigger::Always, FaultKind::Panic);
        let err = svc
            .execute(&count_by_band())
            .expect_err("panicking execution must surface as an error");
        assert!(
            err.to_string().contains("panicked"),
            "unexpected error: {err}"
        );
        // Per-job containment: the worker that caught the panic is
        // still in its loop, not dead and respawned.
        assert!(wait_until(Duration::from_secs(5), || svc.workers_alive() == 2));
    }

    let served = svc.execute(&count_by_band()).unwrap();
    assert_eq!(served.source, ServedSource::Executed);
    let m = svc.shutdown();
    assert!(m.worker_panics >= 1);
    assert_eq!(m.worker_respawned, 0, "job panics must not kill threads");
}

#[test]
fn spawn_failure_at_construction_is_a_typed_error() {
    let _lock = fault::test_support::fault_lock();
    let _fault = fault::arm("serve.spawn", Trigger::Always, FaultKind::Error);
    let err = QueryService::new(small_warehouse(), ServeConfig::default())
        .err()
        .expect("construction must fail when no worker can spawn");
    assert!(
        err.to_string().contains("internal serving failure"),
        "unexpected error: {err}"
    );
}

#[test]
fn respawn_failure_degrades_to_a_smaller_pool_that_still_serves() {
    let _lock = fault::test_support::fault_lock();
    let svc = service(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });

    // One worker dies; the replacement spawn fails. The pool must shrink
    // to 1, count the failure, and keep serving — never abort.
    let _die = fault::arm("serve.worker", Trigger::Once, FaultKind::Panic);
    let _no_spawn = fault::arm("serve.spawn", Trigger::Always, FaultKind::Error);
    svc.execute(&count_by_band()).unwrap();

    assert!(
        wait_until(Duration::from_secs(5), || {
            svc.metrics().worker_respawn_failed >= 1 && svc.workers_alive() == 1
        }),
        "respawn failure not recorded: {} alive, metrics {}",
        svc.workers_alive(),
        svc.metrics()
    );

    svc.clear_cache();
    let served = svc.execute(&count_by_band()).unwrap();
    assert_eq!(served.source, ServedSource::Executed);
    svc.shutdown();
}

// ------------------------------------ breaker: degrade, probe, recover

#[test]
fn breaker_serves_stale_marked_results_then_closes_after_recovery() {
    let _lock = fault::test_support::fault_lock();
    let cooldown = Duration::from_millis(100);
    let svc = service(ServeConfig {
        workers: 2,
        breaker_threshold: 2,
        breaker_cooldown: cooldown,
        retry: RetryPolicy::none(),
        ..ServeConfig::default()
    });
    let query = count_by_band();

    // Prime the cache at the healthy epoch, then advance the epoch so
    // the entry is stale (the feedback dimension is outside the
    // query's footprint, so only revalidation keeps it servable).
    let primed = svc.execute(&query).unwrap();
    assert_eq!(primed.source, ServedSource::Executed);
    let stale_epoch = primed.epoch;
    let labels = vec![Value::from("unreviewed"); svc.with_warehouse(|wh| wh.n_facts())];
    svc.add_feedback_dimension("Review", "Flag", labels)
        .unwrap();
    assert!(svc.epoch() > stale_epoch);

    // Break both paths: revalidation and execution. Every request now
    // fails internally, counting toward the breaker.
    let revalidate = fault::arm("serve.revalidate", Trigger::Always, FaultKind::Error);
    let execute = fault::arm("serve.execute", Trigger::Always, FaultKind::Error);
    for attempt in 0..2 {
        let err = svc.execute(&query).expect_err("broken execution");
        assert!(
            err.to_string().contains("injected fault"),
            "attempt {attempt}: {err}"
        );
    }
    assert_eq!(svc.breaker_state(), BreakerState::Open);

    // Open breaker + stale cache entry → degraded serving: the stale
    // result comes back marked, at its original epoch, with no error.
    let degraded = svc.execute(&query).unwrap();
    assert_eq!(degraded.source, ServedSource::Cache);
    assert!(degraded.value.degraded, "stale serve must be marked");
    assert_eq!(
        degraded.epoch, stale_epoch,
        "serves the epoch it was computed at"
    );
    assert_eq!(degraded.value, primed.value);
    let m = svc.metrics();
    assert!(m.served_stale >= 1, "served_stale must move: {m}");
    assert!(m.breaker_open >= 1, "breaker_open must move: {m}");

    // Heal the fault, wait out the cooldown, and force a real
    // execution: the half-open probe succeeds and the breaker closes.
    drop(revalidate);
    drop(execute);
    std::thread::sleep(cooldown + Duration::from_millis(50));
    svc.clear_cache();
    let probed = svc.execute(&query).unwrap();
    assert_eq!(probed.source, ServedSource::Executed);
    assert!(!probed.value.degraded);
    assert_eq!(probed.value, primed.value);
    assert_eq!(svc.breaker_state(), BreakerState::Closed);

    // Steady state restored: the fresh entry hits without degradation.
    let warm = svc.execute(&query).unwrap();
    assert_eq!(warm.source, ServedSource::Cache);
    assert!(!warm.value.degraded);
    svc.shutdown();
}

// --------------------------------------- compactor: crash-surviving seals

/// Every compactor failpoint × fault kind, drilled through the serving
/// layer: a compaction that errors *or panics* mid-build or mid-install
/// must leave the previously sealed segments live, keep every row
/// queryable (sealed + tail), and a retry after the fault clears must
/// seal the backlog cleanly.
#[test]
fn compactor_crashes_never_lose_sealed_segments() {
    let _lock = fault::test_support::fault_lock();
    for point in ["warehouse.compact_build", "warehouse.compact_install"] {
        for kind in [FaultKind::Error, FaultKind::Panic] {
            let svc = service(ServeConfig::default());
            assert!(svc.compact_now().unwrap(), "initial seal");
            let sealed = svc.with_warehouse(|wh| (wh.segments().len(), wh.segments().watermark()));
            assert_eq!(sealed.1, 4, "all seed rows sealed");

            // Grow a tail, then crash its compaction.
            svc.append(&rows_table(vec![vec![
                9.9.into(),
                "Diabetic".into(),
                "F".into(),
            ]]))
            .unwrap();
            {
                let _fp = fault::arm(point, Trigger::Once, kind);
                let crashed =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| svc.compact_now()));
                match crashed {
                    Ok(result) => assert!(
                        result.is_err(),
                        "{point}/Error must surface as a typed error"
                    ),
                    Err(_) => assert_eq!(kind, FaultKind::Panic, "only panic drills may unwind"),
                }
            }

            // The sealed view is exactly what it was before the crash.
            let after = svc.with_warehouse(|wh| (wh.segments().len(), wh.segments().watermark()));
            assert_eq!(after, sealed, "{point}/{kind:?} tore the sealed view");

            // Every row — sealed and tail — still serves.
            svc.clear_cache();
            let served = svc.execute(&count_by_band()).unwrap();
            let total: f64 = served
                .value
                .as_pivot()
                .unwrap()
                .cells
                .iter()
                .flatten()
                .filter_map(|c| *c)
                .sum();
            assert_eq!(total, 5.0, "{point}/{kind:?} lost rows");

            // Fault cleared: the retry seals the backlog (including any
            // orphans the crashed install left behind).
            assert!(svc.compact_now().unwrap(), "{point}/{kind:?} retry");
            assert_eq!(svc.with_warehouse(|wh| wh.segments().watermark()), 5);
            svc.shutdown();
        }
    }
}

/// The compactor's two-phase locking (plan under the read lock, swap
/// under the write lock) means a query racing a compaction sees either
/// the old segment set or the new one — never a mixture. Hammer
/// queries against concurrent append + compact + vacuum cycles: per
/// querying thread the observed row totals must be monotone (a torn
/// view double-counts or drops rows, breaking monotonicity).
#[test]
fn concurrent_queries_never_see_a_torn_segment_view() {
    use olap::CubeSpec;
    let svc = std::sync::Arc::new(service(ServeConfig::default()));
    assert!(svc.compact_now().unwrap());
    let stop = std::sync::atomic::AtomicBool::new(false);
    let rounds = 24usize;

    std::thread::scope(|s| {
        let observers: Vec<_> = (0..2)
            .map(|_| {
                let svc = std::sync::Arc::clone(&svc);
                let stop = &stop;
                s.spawn(move || {
                    let mut totals = Vec::new();
                    while !stop.load(Ordering::Acquire) {
                        svc.clear_cache();
                        let served = svc.cube(CubeSpec::count(vec!["FBG_Band"])).unwrap();
                        let total: f64 = served
                            .value
                            .as_cube()
                            .unwrap()
                            .cells
                            .iter()
                            .map(|(_, v)| v)
                            .sum();
                        totals.push(total);
                    }
                    totals
                })
            })
            .collect();

        for _ in 0..rounds {
            svc.append(&rows_table(vec![vec![
                6.0.into(),
                "preDiabetic".into(),
                "M".into(),
            ]]))
            .unwrap();
            svc.compact_now().unwrap();
        }
        stop.store(true, Ordering::Release);

        for handle in observers {
            let totals = handle.join().unwrap();
            for window in totals.windows(2) {
                assert!(
                    window[1] >= window[0],
                    "row totals went backwards: {window:?} — torn segment view"
                );
            }
            for t in &totals {
                assert!(
                    (4.0..=(4 + rounds) as f64).contains(t),
                    "impossible row total {t}"
                );
            }
        }
    });

    // Quiesced: everything sealed, the final count is exact.
    svc.clear_cache();
    let served = svc.cube(CubeSpec::count(vec!["FBG_Band"])).unwrap();
    let total: f64 = served
        .value
        .as_cube()
        .unwrap()
        .cells
        .iter()
        .map(|(_, v)| v)
        .sum();
    assert_eq!(total, (4 + rounds) as f64);
    assert_eq!(
        svc.with_warehouse(|wh| wh.segments().watermark()),
        4 + rounds
    );
}
