//! The static-analysis contract: every class of invalid query gets a
//! stable diagnostic code and, where a near-miss exists, a
//! did-you-mean suggestion. Codes are part of the public surface —
//! clients match on them — so these assertions pin exact values.

use analyze::{explain, Catalog, Code};
use olap::{analyze_cube, analyze_mdx_str, analyze_report, CubeSpec, ReportSpec};
use proptest::prelude::*;
use warehouse::discri_model;

fn catalog() -> Catalog {
    Catalog::from_star(&discri_model())
}

/// Invalid queries and the exact code sequence the analyzer must
/// produce, in source order.
const CORPUS: &[(&str, &[&str])] = &[
    // -- A0xx: name resolution --------------------------------------
    (
        "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
         FROM [Wrong Cube] MEASURE COUNT(*)",
        &["A001"],
    ),
    (
        "SELECT [Gendr].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
         FROM [Medical Measures] MEASURE COUNT(*)",
        &["A002"],
    ),
    (
        "SELECT {[Gendre].[F]} ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
         FROM [Medical Measures] MEASURE COUNT(*)",
        &["A002"],
    ),
    (
        "SELECT [NoSuchParent].[x].CHILDREN ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
         FROM [Medical Measures] MEASURE COUNT(*)",
        &["A002"],
    ),
    (
        "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
         FROM [Medical Measures] MEASURE AVG([BMX])",
        &["A003"],
    ),
    (
        "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
         FROM [Medical Measures] WHERE [DiabetesStatu] = 'yes' MEASURE COUNT(*)",
        &["A004"],
    ),
    (
        "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
         FROM [Medical Measures] MEASURE COUNT(DISTINCT [PatientIdd])",
        &["A005"],
    ),
    (
        "SELECT [FBG].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
         FROM [Medical Measures] MEASURE COUNT(*)",
        &["A006"],
    ),
    (
        "SELECT [PatientId].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
         FROM [Medical Measures] MEASURE COUNT(*)",
        &["A006"],
    ),
    // -- A1xx: condition typing -------------------------------------
    (
        "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
         FROM [Medical Measures] WHERE [FBG] = 'high' MEASURE COUNT(*)",
        &["A100"],
    ),
    (
        "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
         FROM [Medical Measures] WHERE [PatientId] = 'P001' MEASURE COUNT(*)",
        &["A100"],
    ),
    (
        "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
         FROM [Medical Measures] WHERE [DiabetesStatus] BETWEEN 0 AND 1 MEASURE COUNT(*)",
        &["A101"],
    ),
    (
        "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
         FROM [Medical Measures] WHERE [FBG] BETWEEN 7 AND 5 MEASURE COUNT(*)",
        &["A102"],
    ),
    // -- A2xx: aggregation legality ---------------------------------
    (
        "SELECT [VisitKind].MEMBERS ON COLUMNS, [Gender].MEMBERS ON ROWS \
         FROM [Medical Measures] MEASURE SUM([FBG])",
        &["A200"],
    ),
    (
        "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
         FROM [Medical Measures] MEASURE COUNT(DISTINCT [Gender])",
        &["A201"],
    ),
    (
        "SELECT [Gender].[F].CHILDREN ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
         FROM [Medical Measures] MEASURE COUNT(*)",
        &["A202"],
    ),
    (
        "SELECT [Gender].MEMBERS ON COLUMNS, [Gender].MEMBERS ON ROWS \
         FROM [Medical Measures] MEASURE COUNT(*)",
        &["A203"],
    ),
    (
        "SELECT [Gender].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
         FROM [Medical Measures] MEASURE MAX([Gender])",
        &["A204"],
    ),
    // -- compound: findings accumulate in source order ---------------
    (
        "SELECT [Gendr].MEMBERS ON COLUMNS, [Age_Band].MEMBERS ON ROWS \
         FROM [Wrong Cube] WHERE [FBG] = 'x' MEASURE AVG([BMX])",
        &["A001", "A002", "A100", "A003"],
    ),
];

#[test]
fn every_corpus_query_gets_its_exact_codes() {
    let catalog = catalog();
    assert!(CORPUS.len() >= 15, "corpus shrank to {}", CORPUS.len());
    for (query, expected) in CORPUS {
        let diags = analyze_mdx_str(&catalog, query)
            .unwrap_or_else(|e| panic!("corpus query failed to parse: {query}\n{e}"));
        assert_eq!(&diags.codes(), expected, "query: {query}\n{diags}");
        // Every emitted code has an explanation.
        for code in diags.codes() {
            assert!(explain(code).is_some(), "no explanation for {code}");
        }
    }
}

#[test]
fn near_misses_carry_did_you_mean_suggestions() {
    let catalog = catalog();
    let cases = [
        ("[Gendr]", Code::A002UnknownAxisAttribute, "Gender"),
        ("[Age_Bnad]", Code::A002UnknownAxisAttribute, "Age_Band"),
    ];
    for (bad, code, want) in cases {
        let query = format!(
            "SELECT {bad}.MEMBERS ON COLUMNS, [FBG_Band].MEMBERS ON ROWS \
             FROM [Medical Measures] MEASURE COUNT(*)"
        );
        let diags = analyze_mdx_str(&catalog, &query).unwrap();
        let d = diags
            .find(code)
            .unwrap_or_else(|| panic!("no {code:?} for {bad}"));
        assert_eq!(d.suggestion.as_deref(), Some(want), "{bad}");
        // The rendered report shows the suggestion and a caret at the
        // offending fragment.
        let rendered = diags.to_string();
        assert!(rendered.contains("did you mean"), "{rendered}");
        assert!(rendered.contains('^'), "{rendered}");
    }

    let diags = analyze_mdx_str(
        &catalog,
        "SELECT [Gender].MEMBERS ON COLUMNS, [FBG_Band].MEMBERS ON ROWS \
         FROM [Medical Mesures] MEASURE COUNT(*)",
    )
    .unwrap();
    let d = diags.find(Code::A001UnknownCube).expect("A001");
    assert_eq!(d.suggestion.as_deref(), Some("Medical Measures"));

    let diags = analyze_mdx_str(
        &catalog,
        "SELECT [Gender].MEMBERS ON COLUMNS, [FBG_Band].MEMBERS ON ROWS \
         FROM [Medical Measures] MEASURE AVG([BMX])",
    )
    .unwrap();
    let d = diags.find(Code::A003UnknownMeasure).expect("A003");
    assert_eq!(d.suggestion.as_deref(), Some("BMI"));
}

#[test]
fn spec_shapes_share_the_same_codes() {
    let catalog = catalog();
    assert_eq!(
        analyze_cube(&catalog, &CubeSpec::count(vec![])).codes(),
        vec!["A205"]
    );
    assert_eq!(
        analyze_report(&catalog, &ReportSpec::new().count()).codes(),
        vec!["A205"]
    );
    assert_eq!(
        analyze_report(
            &catalog,
            &ReportSpec::new()
                .on_rows("FBG_Band")
                .where_measure_between("FBG", f64::NAN, 1.0)
                .count(),
        )
        .codes(),
        vec!["A104"]
    );
    assert_eq!(
        analyze_report(
            &catalog,
            &ReportSpec::new()
                .on_rows("FBG_Band")
                .where_measure_between("FBG", 0.0, f64::INFINITY)
                .count(),
        )
        .codes(),
        vec!["A104"]
    );
}

/// Fragments the fuzzer recombines: enough structure to reach deep
/// parser and analyzer states, enough noise to hit the error paths.
const FRAGMENTS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "MEASURE",
    "ON",
    "COLUMNS",
    "ROWS",
    "NON",
    "EMPTY",
    "AND",
    "BETWEEN",
    "MEMBERS",
    "CHILDREN",
    "COUNT",
    "SUM",
    "AVG",
    "DISTINCT",
    "(",
    ")",
    "{",
    "}",
    ",",
    ".",
    "=",
    "*",
    "[Gender]",
    "[Gendr]",
    "[Age_Band]",
    "[Medical Measures]",
    "[FBG]",
    "[",
    "]",
    "'yes'",
    "'",
    "5.5",
    "-3",
    "7",
    "\u{1F9EA}",
    "é",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse + analyze must never panic, whatever the input: errors
    /// are values here.
    #[test]
    fn parse_and_analyze_never_panic(picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..16)) {
        let query = picks
            .iter()
            .map(|&i| FRAGMENTS[i])
            .collect::<Vec<_>>()
            .join(" ");
        let catalog = catalog();
        // Ok(diags) and Err(parse error) are both acceptable; a panic
        // would fail the test harness.
        let _ = analyze_mdx_str(&catalog, &query);
    }

    /// Same for raw byte noise (multi-byte chars included): the lexer
    /// slices by byte offset and must stay on char boundaries.
    #[test]
    fn raw_noise_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..64)) {
        let query = String::from_utf8_lossy(&bytes).into_owned();
        let catalog = catalog();
        let _ = analyze_mdx_str(&catalog, &query);
    }
}
