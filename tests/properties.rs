//! Cross-crate property-based tests: random tables pushed through the
//! warehouse/OLAP path must preserve the data and the aggregation
//! invariants regardless of content.

use clinical_types::{DataType, FieldDef, Record, Schema, Table, Value};
use olap::{Cube, CubeSpec};
use oltp::{decode_row, encode_row};
use proptest::prelude::*;
use warehouse::{DimensionDef, FactDef, LoadPlan, StarSchema, Warehouse};

/// Strategy: a random small categorical table with a numeric measure.
fn random_rows() -> impl Strategy<Value = Vec<(u8, u8, Option<f64>)>> {
    proptest::collection::vec(
        (0u8..4, 0u8..3, proptest::option::of(-100.0f64..100.0)),
        1..120,
    )
}

fn build_table(rows: &[(u8, u8, Option<f64>)]) -> Table {
    let schema = Schema::new(vec![
        FieldDef::nullable("A", DataType::Text),
        FieldDef::nullable("B", DataType::Text),
        FieldDef::nullable("M", DataType::Float),
    ])
    .unwrap();
    let records = rows
        .iter()
        .map(|(a, b, m)| {
            Record::new(vec![
                Value::Text(format!("a{a}")),
                Value::Text(format!("b{b}")),
                m.map(Value::Float).unwrap_or(Value::Null),
            ])
        })
        .collect();
    Table::from_rows(schema, records).unwrap()
}

fn load(table: &Table) -> Warehouse {
    let star = StarSchema::new(
        FactDef::new("F", vec!["M"], vec![]),
        vec![
            DimensionDef::new("DA", vec!["A"]),
            DimensionDef::new("DB", vec!["B"]),
        ],
    )
    .unwrap();
    Warehouse::load(&LoadPlan::from_star(star), table).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Loading a table into the star schema and resolving attribute
    /// columns must reproduce the original column values row for row.
    #[test]
    fn warehouse_load_is_lossless(rows in random_rows()) {
        let table = build_table(&rows);
        let wh = load(&table);
        prop_assert_eq!(wh.n_facts(), table.len());
        let col_a = wh.attribute_column("A").unwrap();
        for (resolved, row) in col_a.iter().zip(table.rows()) {
            prop_assert_eq!(*resolved, &row.values()[0]);
        }
        let measure = wh.measure("M").unwrap();
        for (i, row) in table.rows().iter().enumerate() {
            prop_assert_eq!(measure.get(i), row.values()[2].as_f64());
        }
    }

    /// Cube cell counts must sum to the number of fact rows, and
    /// rolling up any axis must preserve the grand total.
    #[test]
    fn cube_counts_partition_the_facts(rows in random_rows()) {
        let table = build_table(&rows);
        let wh = load(&table);
        let cube = Cube::build(&wh, &CubeSpec::count(vec!["A", "B"])).unwrap();
        let total: f64 = cube.iter().map(|(_, v)| v).sum();
        prop_assert_eq!(total as usize, table.len());
        let rolled = cube.roll_up("B").unwrap();
        prop_assert_eq!(rolled.grand_total(), Some(table.len() as f64));
    }

    /// Slicing on every member of an axis partitions the cube: slice
    /// totals sum to the unsliced total.
    #[test]
    fn slices_partition_the_cube(rows in random_rows()) {
        let table = build_table(&rows);
        let wh = load(&table);
        let cube = Cube::build(&wh, &CubeSpec::count(vec!["A", "B"])).unwrap();
        let mut sliced_total = 0.0;
        for member in cube.axis_values("A").unwrap() {
            let slice = cube.slice("A", &member).unwrap();
            sliced_total += slice.grand_total().unwrap_or(0.0);
        }
        prop_assert_eq!(sliced_total as usize, table.len());
    }

    /// Sum cubes distribute over roll-up: rolling up an axis is
    /// exactly the sum of the fine cells.
    #[test]
    fn rollup_of_sum_is_exact(rows in random_rows()) {
        let table = build_table(&rows);
        let wh = load(&table);
        let fine = Cube::build(
            &wh,
            &CubeSpec::measure(vec!["A", "B"], olap::Aggregate::Sum, "M"),
        ).unwrap();
        let coarse = fine.roll_up("B").unwrap();
        let direct = Cube::build(
            &wh,
            &CubeSpec::measure(vec!["A"], olap::Aggregate::Sum, "M"),
        ).unwrap();
        for member in direct.axis_values("A").unwrap() {
            let a = coarse.value(std::slice::from_ref(&member));
            let b = direct.value(std::slice::from_ref(&member));
            match (a, b) {
                (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-6),
                (a, b) => prop_assert_eq!(a, b),
            }
        }
    }

    /// Row encoding round-trips arbitrary table rows.
    #[test]
    fn oltp_encoding_round_trips(rows in random_rows()) {
        let table = build_table(&rows);
        for row in table.rows() {
            let decoded = decode_row(&encode_row(row)).unwrap();
            prop_assert_eq!(&decoded, row);
        }
    }

    /// CSV export/import round-trips arbitrary generated tables.
    #[test]
    fn csv_round_trips_random_tables(rows in random_rows()) {
        let table = build_table(&rows);
        let csv = clinical_types::table_to_csv(&table);
        let back = clinical_types::table_from_csv(&csv, table.schema()).unwrap();
        prop_assert_eq!(back.len(), table.len());
        for (a, b) in back.rows().iter().zip(table.rows()) {
            prop_assert_eq!(a, b);
        }
    }

    /// Apriori support is anti-monotone on arbitrary datasets: every
    /// frequent itemset's support is bounded by each of its items'
    /// singleton supports.
    #[test]
    fn apriori_support_is_antimonotone(rows in random_rows()) {
        let dataset = mining::DatasetBuilder::new(vec!["A", "B"], "B")
            .build(&build_table(&rows))
            .unwrap();
        let sets = mining::Apriori::new(2, 0.5, 2)
            .frequent_itemsets(&dataset)
            .unwrap();
        let singleton = |item: (usize, usize)| {
            sets.iter()
                .find(|s| s.items == vec![item])
                .map(|s| s.support)
        };
        for set in sets.iter().filter(|s| s.items.len() == 2) {
            for &item in &set.items {
                let single = singleton(item)
                    .expect("Apriori property: subsets of frequent sets are frequent");
                prop_assert!(set.support <= single);
            }
        }
    }

    /// Markov transition rows are probability distributions for any
    /// trajectory corpus.
    #[test]
    fn markov_rows_are_stochastic(
        seqs in proptest::collection::vec(
            proptest::collection::vec(0u8..4, 1..8),
            1..20,
        )
    ) {
        let trajectories: Vec<predict::Trajectory> = seqs
            .iter()
            .enumerate()
            .map(|(i, states)| predict::Trajectory {
                patient_id: i as i64,
                states: states.iter().map(|s| format!("s{s}")).collect(),
            })
            .collect();
        let model = predict::MarkovModel::fit(&trajectories).unwrap();
        for from in model.states() {
            let total: f64 = model
                .states()
                .iter()
                .map(|to| model.transition_probability(from, to).unwrap())
                .sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "row {} sums to {}", from, total);
        }
        // predict_next always returns a known state.
        for from in model.states() {
            let next = model.predict_next(from);
            prop_assert!(model.states().contains(&next));
        }
    }

    /// Cleaning never increases row count and never leaves a value
    /// outside its declared plausible range.
    #[test]
    fn cleaning_enforces_ranges(rows in random_rows()) {
        let table = build_table(&rows);
        let rules = etl::CleaningRules::new().range("M", -10.0, 10.0);
        let (clean, report) = etl::Cleaner::new(rules).clean(&table).unwrap();
        prop_assert_eq!(clean.len(), table.len());
        prop_assert_eq!(report.rows_in, table.len());
        for v in clean.column("M").unwrap() {
            if let Some(x) = v.as_f64() {
                prop_assert!((-10.0..=10.0).contains(&x));
            }
        }
    }
}
