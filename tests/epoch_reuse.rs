//! Cross-epoch result reuse and incremental cube maintenance.
//!
//! The serving layer no longer discards cached results when the
//! warehouse epoch advances. These tests pin the three revalidation
//! outcomes end to end:
//!
//! 1. a mutation *outside* a query's dimension footprint leaves its
//!    cached result byte-identical and provably reusable,
//! 2. appended fact rows are folded into a retained cube, producing
//!    cells bit-identical to a from-scratch rebuild, and
//! 3. shapes that cannot be patched (DISTINCT aggregates) fall back
//!    to re-execution — correctness is never traded for reuse.

use clinical_types::{DataType, FieldDef, Record, Schema, Table, Value};
use obs::test_support::tracing_lock;
use obs::RingCollector;
use olap::{Aggregate, CubeSpec};
use serve::{QueryRequest, QueryService, ReportSpec, ServeConfig, ServedSource};
use std::sync::Arc;
use warehouse::{DimensionDef, FactDef, LoadPlan, StarSchema, Warehouse};

fn schema() -> Schema {
    Schema::new(vec![
        FieldDef::nullable("FBG", DataType::Float),
        FieldDef::nullable("FBG_Band", DataType::Text),
        FieldDef::nullable("Gender", DataType::Text),
    ])
    .unwrap()
}

fn rows_table(rows: Vec<Vec<Value>>) -> Table {
    Table::from_rows(schema(), rows.into_iter().map(Record::new).collect()).unwrap()
}

fn small_warehouse() -> Warehouse {
    let star = StarSchema::new(
        FactDef::new("Facts", vec!["FBG"], vec![]),
        vec![DimensionDef::new("Bloods", vec!["FBG_Band", "Gender"])],
    )
    .unwrap();
    let table = rows_table(vec![
        vec![5.0.into(), "very good".into(), "F".into()],
        vec![6.5.into(), "preDiabetic".into(), "M".into()],
        vec![8.0.into(), "Diabetic".into(), "F".into()],
        vec![7.2.into(), "Diabetic".into(), "M".into()],
    ]);
    Warehouse::load(&LoadPlan::from_star(star), &table).unwrap()
}

fn feedback_labels(svc: &QueryService) -> Vec<Value> {
    let n = svc.with_warehouse(|wh| wh.n_facts());
    vec![Value::from("unreviewed"); n]
}

#[test]
fn out_of_footprint_mutation_serves_identical_bytes_at_the_new_epoch() {
    let _guard = tracing_lock();
    let collector = Arc::new(RingCollector::new(1024));
    obs::install(collector.clone());

    let svc = QueryService::new(small_warehouse(), ServeConfig::default()).unwrap();
    let request = QueryRequest::Report(ReportSpec::new().on_rows("FBG_Band").count());
    let before = svc.execute(&request).unwrap();
    assert_eq!(before.source, ServedSource::Executed);

    // The feedback dimension "Review" is not read by the query: the
    // delta log proves the cached result still holds.
    svc.add_feedback_dimension("Review", "Flag", feedback_labels(&svc))
        .unwrap();
    let after = svc.execute(&request).unwrap();
    obs::uninstall();

    assert_eq!(after.source, ServedSource::Cache);
    assert!(
        Arc::ptr_eq(&before.value, &after.value),
        "reuse must serve the identical allocation, not a re-execution"
    );
    assert!(after.epoch > before.epoch, "served at the *new* epoch");
    let m = svc.metrics();
    assert_eq!(m.reused_cross_epoch, 1, "reuse is counted: {m}");
    assert_eq!(m.executed, 1, "nothing re-executed: {m}");

    // The decision is observable: a cache.revalidate span recorded the
    // epoch gap and its outcome.
    let revalidations: Vec<_> = collector
        .spans()
        .into_iter()
        .filter(|s| s.name == "cache.revalidate")
        .collect();
    assert_eq!(revalidations.len(), 1, "one revalidation span");
    assert_eq!(revalidations[0].field("outcome"), Some("reused"));
}

#[test]
fn appended_rows_patch_retained_cubes_identically_to_a_rebuild() {
    let appended = vec![
        vec![9.9.into(), "Diabetic".into(), "F".into()],
        vec![4.1.into(), "very good".into(), "M".into()],
    ];
    let specs = vec![
        CubeSpec::count(vec!["FBG_Band"]),
        CubeSpec::measure(vec!["FBG_Band", "Gender"], Aggregate::Sum, "FBG"),
        CubeSpec::measure(vec!["Gender"], Aggregate::Avg, "FBG"),
    ];
    for spec in specs {
        let svc = QueryService::new(small_warehouse(), ServeConfig::default()).unwrap();
        let cold = svc.cube(spec.clone()).unwrap();
        assert_eq!(cold.source, ServedSource::Executed);

        svc.append(&rows_table(appended.clone())).unwrap();
        let patched = svc.cube(spec.clone()).unwrap();
        assert_eq!(
            patched.source,
            ServedSource::Cache,
            "append must patch, not rebuild: {spec:?}"
        );
        assert_eq!(svc.metrics().patched_incremental, 1);

        // Ground truth: clear the cache and execute from scratch over
        // the full (appended) warehouse.
        svc.clear_cache();
        let rebuilt = svc.cube(spec.clone()).unwrap();
        assert_eq!(rebuilt.source, ServedSource::Executed);
        assert_eq!(
            patched.value.as_cube().unwrap(),
            rebuilt.value.as_cube().unwrap(),
            "patched cells must be bit-identical to a rebuild: {spec:?}"
        );
    }
}

#[test]
fn aged_out_delta_log_is_counted_and_traced() {
    let _guard = tracing_lock();
    let collector = Arc::new(RingCollector::new(4096));
    obs::install(collector.clone());

    let svc = QueryService::new(small_warehouse(), ServeConfig::default()).unwrap();
    let request = QueryRequest::Report(ReportSpec::new().on_rows("FBG_Band").count());
    let before = svc.execute(&request).unwrap();
    assert_eq!(before.source, ServedSource::Executed);

    // Push the cached entry's epoch past the bounded delta log: one
    // more append than the log retains, so revalidation can prove
    // nothing about the gap.
    for _ in 0..warehouse::DELTA_LOG_CAPACITY + 1 {
        svc.append(&rows_table(vec![vec![
            5.1.into(),
            "very good".into(),
            "F".into(),
        ]]))
        .unwrap();
    }
    let after = svc.execute(&request).unwrap();
    obs::uninstall();

    assert_eq!(
        after.source,
        ServedSource::Executed,
        "an unprovable entry must re-execute"
    );
    let m = svc.metrics();
    assert_eq!(m.delta_log_aged_out, 1, "aged-out drop is counted: {m}");
    assert_eq!(m.reused_cross_epoch, 0);
    assert_eq!(m.patched_incremental, 0);

    // The drop is observable: the cache.revalidate span records the
    // unknown-epoch outcome and a companion event carries the gap.
    let revalidations: Vec<_> = collector
        .spans()
        .into_iter()
        .filter(|s| s.name == "cache.revalidate")
        .collect();
    assert_eq!(revalidations.len(), 1);
    assert_eq!(revalidations[0].field("outcome"), Some("unknown_epoch"));
    assert!(
        collector
            .events()
            .iter()
            .any(|e| e.name == "serve.delta_log_aged_out"),
        "aged-out drops emit a trace event"
    );
}

#[test]
fn distinct_aggregates_rebuild_instead_of_patching() {
    let star = StarSchema::new(
        FactDef::new("Facts", vec!["FBG"], vec!["PatientId"]),
        vec![DimensionDef::new("Bloods", vec!["FBG_Band"])],
    )
    .unwrap();
    let schema = Schema::new(vec![
        FieldDef::nullable("FBG", DataType::Float),
        FieldDef::nullable("FBG_Band", DataType::Text),
        FieldDef::nullable("PatientId", DataType::Text),
    ])
    .unwrap();
    let rows = |rows: Vec<Vec<Value>>| {
        Table::from_rows(schema.clone(), rows.into_iter().map(Record::new).collect()).unwrap()
    };
    let wh = Warehouse::load(
        &LoadPlan::from_star(star),
        &rows(vec![
            vec![5.0.into(), "very good".into(), "p1".into()],
            vec![5.5.into(), "very good".into(), "p1".into()],
            vec![8.0.into(), "Diabetic".into(), "p2".into()],
        ]),
    )
    .unwrap();
    let svc = QueryService::new(wh, ServeConfig::default()).unwrap();

    let spec = CubeSpec::distinct(vec!["FBG_Band"], "PatientId");
    assert_eq!(
        svc.cube(spec.clone()).unwrap().source,
        ServedSource::Executed
    );

    // p1 reappearing must not double-count; only a rebuild can know.
    svc.append(&rows(vec![vec![
        6.0.into(),
        "Diabetic".into(),
        "p1".into(),
    ]]))
    .unwrap();
    let after = svc.cube(spec).unwrap();
    assert_eq!(
        after.source,
        ServedSource::Executed,
        "DISTINCT must rebuild"
    );
    assert_eq!(svc.metrics().patched_incremental, 0);
    assert_eq!(svc.metrics().reused_cross_epoch, 0);
    let cube = after.value.as_cube().unwrap();
    assert_eq!(cube.value(&["Diabetic".into()]), Some(2.0));
    assert_eq!(cube.value(&["very good".into()]), Some(1.0));
}
