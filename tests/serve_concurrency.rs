//! Concurrency behaviour of the serving subsystem: single-flight
//! coalescing, epoch-driven cache invalidation, and admission-control
//! backpressure. All tests drive a real multi-threaded
//! `QueryService`; `execution_delay` makes executions overlap
//! deterministically without relying on query cost.

use clinical_types::{DataType, FieldDef, Record, Schema, Table};
use serve::{QueryRequest, QueryService, ReportSpec, ServeConfig, ServeError, ServedSource};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};
use warehouse::{DimensionDef, FactDef, LoadPlan, StarSchema, Warehouse};

fn schema() -> Schema {
    Schema::new(vec![
        FieldDef::nullable("FBG", DataType::Float),
        FieldDef::nullable("FBG_Band", DataType::Text),
        FieldDef::nullable("Gender", DataType::Text),
    ])
    .unwrap()
}

fn rows_table(rows: Vec<Vec<clinical_types::Value>>) -> Table {
    Table::from_rows(schema(), rows.into_iter().map(Record::new).collect()).unwrap()
}

fn small_warehouse() -> Warehouse {
    let star = StarSchema::new(
        FactDef::new("Facts", vec!["FBG"], vec![]),
        vec![DimensionDef::new("Bloods", vec!["FBG_Band", "Gender"])],
    )
    .unwrap();
    let table = rows_table(vec![
        vec![5.0.into(), "very good".into(), "F".into()],
        vec![6.5.into(), "preDiabetic".into(), "M".into()],
        vec![8.0.into(), "Diabetic".into(), "F".into()],
        vec![7.2.into(), "Diabetic".into(), "M".into()],
    ]);
    Warehouse::load(&LoadPlan::from_star(star), &table).unwrap()
}

fn count_by_band() -> QueryRequest {
    QueryRequest::Report(ReportSpec::new().on_rows("FBG_Band").count())
}

#[test]
fn identical_concurrent_queries_coalesce_into_one_execution() {
    const CALLERS: usize = 8;
    let svc = QueryService::new(
        small_warehouse(),
        ServeConfig {
            workers: 4,
            execution_delay: Some(Duration::from_millis(80)),
            ..ServeConfig::default()
        },
    )
    .unwrap();

    let barrier = Arc::new(Barrier::new(CALLERS));
    let sources = thread::scope(|s| {
        let handles: Vec<_> = (0..CALLERS)
            .map(|_| {
                let svc = &svc;
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    barrier.wait();
                    svc.execute(&count_by_band()).unwrap().source
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    });

    // Exactly one caller led; everyone else coalesced onto its flight
    // (the 80ms execution delay keeps the flight open until all eight
    // callers have arrived).
    let executed = sources
        .iter()
        .filter(|s| **s == ServedSource::Executed)
        .count();
    let coalesced = sources
        .iter()
        .filter(|s| **s == ServedSource::Coalesced)
        .count();
    assert_eq!(executed, 1, "sources: {sources:?}");
    assert_eq!(coalesced, CALLERS - 1, "sources: {sources:?}");

    let m = svc.shutdown();
    assert_eq!(m.executed, 1, "one worker execution for {CALLERS} callers");
    assert_eq!(m.coalesced as usize, CALLERS - 1);
    assert_eq!(m.misses, 1);
}

#[test]
fn warm_hit_is_identical_to_fresh_execution() {
    let svc = QueryService::new(small_warehouse(), ServeConfig::default()).unwrap();
    let cold = svc.execute(&count_by_band()).unwrap();
    let warm = svc.execute(&count_by_band()).unwrap();
    assert_eq!(cold.source, ServedSource::Executed);
    assert_eq!(warm.source, ServedSource::Cache);
    // Same allocation, therefore byte-identical content.
    assert!(Arc::ptr_eq(&cold.value, &warm.value));
    assert_eq!(cold.value, warm.value);

    // And a forced re-execution (cache cleared) reproduces the same
    // result value, so the cache never changes an answer.
    svc.clear_cache();
    let fresh = svc.execute(&count_by_band()).unwrap();
    assert_eq!(fresh.source, ServedSource::Executed);
    assert_eq!(fresh.value, warm.value);
}

#[test]
fn append_bumps_epoch_and_invalidates_cached_results() {
    let svc = QueryService::new(small_warehouse(), ServeConfig::default()).unwrap();
    let before = svc.execute(&count_by_band()).unwrap();
    let diabetic_before = before
        .value
        .as_pivot()
        .unwrap()
        .get(&"Diabetic".into(), &"all".into())
        .unwrap();

    // New attendances arrive: the epoch advances and the cached pivot
    // must not be served again.
    svc.append(&rows_table(vec![vec![
        9.1.into(),
        "Diabetic".into(),
        "F".into(),
    ]]))
    .unwrap();

    let after = svc.execute(&count_by_band()).unwrap();
    assert!(after.epoch > before.epoch);
    assert_eq!(after.source, ServedSource::Executed);
    let diabetic_after = after
        .value
        .as_pivot()
        .unwrap()
        .get(&"Diabetic".into(), &"all".into())
        .unwrap();
    assert_eq!(diabetic_after, diabetic_before + 1.0);

    // The stale entry was purged, not merely shadowed.
    assert_eq!(svc.cache_len(), 1);
}

#[test]
fn full_queue_rejects_with_overloaded_and_never_blocks() {
    const CALLERS: usize = 12;
    // One worker stuck 200ms per job, queue of one: most callers must
    // be turned away immediately.
    let svc = QueryService::new(
        small_warehouse(),
        ServeConfig {
            workers: 1,
            queue_depth: 1,
            execution_delay: Some(Duration::from_millis(200)),
            ..ServeConfig::default()
        },
    )
    .unwrap();

    let barrier = Arc::new(Barrier::new(CALLERS));
    let started = Instant::now();
    let results = thread::scope(|s| {
        let handles: Vec<_> = (0..CALLERS)
            .map(|i| {
                let svc = &svc;
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    barrier.wait();
                    // Distinct fingerprints, so no coalescing: every
                    // caller needs its own queue slot.
                    let spec = ReportSpec::new()
                        .on_rows("FBG_Band")
                        .where_measure_between("FBG", 0.0, 100.0 + i as f64)
                        .count();
                    svc.execute(&QueryRequest::Report(spec))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    });

    let rejected = results
        .iter()
        .filter(|r| matches!(r, Err(ServeError::Overloaded { queue_depth: 1, .. })))
        .count();
    let served = results.iter().filter(|r| r.is_ok()).count();
    assert!(rejected > 0, "no caller was rejected: {results:?}");
    assert!(served > 0, "no caller was served: {results:?}");
    assert_eq!(rejected + served, CALLERS, "unexpected error: {results:?}");
    // Rejection is immediate: even with a 200ms execution, all calls
    // return well before CALLERS × 200ms of serialised work.
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "admission control blocked: {:?}",
        started.elapsed()
    );

    let m = svc.shutdown();
    assert_eq!(m.rejected as usize, rejected);
    assert_eq!(m.executed as usize, served);
}

#[test]
fn deadline_expires_but_execution_still_warms_the_cache() {
    let svc = QueryService::new(
        small_warehouse(),
        ServeConfig {
            workers: 1,
            execution_delay: Some(Duration::from_millis(150)),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let err = svc
        .execute_with_deadline(&count_by_band(), Duration::from_millis(20))
        .unwrap_err();
    assert!(matches!(err, ServeError::DeadlineExceeded { .. }));

    // The abandoned execution completes on the worker and later
    // callers hit its cached result.
    let served = svc.execute(&count_by_band()).unwrap();
    assert_ne!(served.source, ServedSource::Executed);
    let m = svc.shutdown();
    assert_eq!(m.deadline_exceeded, 1);
    assert_eq!(m.executed, 1);
}

#[test]
fn invalid_queries_are_rejected_before_admission() {
    let svc = QueryService::new(small_warehouse(), ServeConfig::default()).unwrap();

    // One invalid request of every kind, with the code the analyzer
    // must assign. None of them may reach the queue, the cache or a
    // worker.
    let corpus: Vec<(QueryRequest, &str)> = vec![
        (
            QueryRequest::Mdx(
                "SELECT [Gendr].MEMBERS ON COLUMNS, [FBG_Band].MEMBERS ON ROWS \
                 FROM [Facts] MEASURE COUNT(*)"
                    .into(),
            ),
            "A002",
        ),
        (
            QueryRequest::Mdx(
                "SELECT [Gender].MEMBERS ON COLUMNS, [FBG_Band].MEMBERS ON ROWS \
                 FROM [Wrong Cube] MEASURE COUNT(*)"
                    .into(),
            ),
            "A001",
        ),
        (
            QueryRequest::Mdx(
                "SELECT [Gender].MEMBERS ON COLUMNS, [FBG_Band].MEMBERS ON ROWS \
                 FROM [Facts] WHERE [FBG] = 'high' MEASURE COUNT(*)"
                    .into(),
            ),
            "A100",
        ),
        (
            QueryRequest::Cube(olap::CubeSpec::count(vec!["FBG_Band", "NoSuchAttr"])),
            "A002",
        ),
        (
            QueryRequest::Report(
                ReportSpec::new()
                    .on_rows("FBG_Band")
                    .where_measure_between("Gender", 0.0, 1.0)
                    .count(),
            ),
            "A101",
        ),
        (
            QueryRequest::Report(ReportSpec::new().on_rows("FBG_Band").count_distinct("FBG")),
            "A201",
        ),
    ];
    let n = corpus.len();

    for (request, code) in corpus {
        match svc.execute(&request).unwrap_err() {
            ServeError::Invalid { diagnostics, .. } => {
                assert!(
                    diagnostics.codes().contains(&code),
                    "expected {code} for {request:?}, got {:?}",
                    diagnostics.codes()
                );
            }
            other => panic!("expected Invalid for {request:?}, got {other:?}"),
        }
    }

    // A rejected request is free: no execution, no cache entry, no
    // miss recorded — and rejections are counted apart from load
    // shedding.
    let m = svc.metrics();
    assert_eq!(m.rejected_invalid as usize, n);
    assert_eq!(m.rejected, 0);
    assert_eq!(m.executed, 0);
    assert_eq!(m.misses, 0);
    assert_eq!(svc.cache_len(), 0);

    // Valid work still flows afterwards.
    let served = svc.execute(&count_by_band()).unwrap();
    assert_eq!(served.source, ServedSource::Executed);
    let m = svc.shutdown();
    assert_eq!(m.executed, 1);
    assert_eq!(m.rejected_invalid as usize, n);
}

#[test]
fn mixed_request_kinds_hammered_from_many_threads() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 20;
    let svc = QueryService::new(small_warehouse(), ServeConfig::default()).unwrap();

    let requests = [
        QueryRequest::Mdx(
            "SELECT [Gender].MEMBERS ON COLUMNS, [FBG_Band].MEMBERS ON ROWS \
             FROM [Facts] MEASURE COUNT(*)"
                .into(),
        ),
        QueryRequest::Cube(olap::CubeSpec::count(vec!["FBG_Band", "Gender"])),
        QueryRequest::Report(ReportSpec::new().on_rows("Gender").count()),
    ];

    thread::scope(|s| {
        for t in 0..THREADS {
            let svc = &svc;
            let requests = &requests;
            s.spawn(move || {
                for r in 0..ROUNDS {
                    let request = &requests[(t + r) % requests.len()];
                    let served = svc.execute(request).unwrap();
                    match request {
                        QueryRequest::Cube(_) => assert!(served.value.as_cube().is_some()),
                        _ => assert!(served.value.as_pivot().is_some()),
                    }
                }
            });
        }
    });

    let m = svc.shutdown();
    assert_eq!(m.served() as usize, THREADS * ROUNDS);
    assert_eq!(m.rejected, 0);
    assert_eq!(m.failed, 0);
    // Three distinct fingerprints → at most three executions per
    // epoch; everything else came from the cache or a shared flight.
    assert!(
        m.executed <= 3,
        "executed {} of 3 distinct queries",
        m.executed
    );
    assert!(m.hits + m.coalesced >= (THREADS * ROUNDS - 3) as u64);
}
