//! End-to-end observability: span trees across the serving worker
//! pool, coalesced-request trace links, profile phase accounting and
//! JSONL export round-trips.
//!
//! Tests that install the process-global subscriber serialise on
//! `obs::test_support::tracing_lock()`.

use clinical_types::{DataType, FieldDef, Record, Schema, Table};
use obs::test_support::tracing_lock;
use obs::{parse_jsonl, render_trace, RingCollector, SpanRecord};
use serve::{QueryRequest, QueryService, ReportSpec, ServeConfig, ServedSource};
use std::sync::Arc;
use std::thread;
use std::time::Duration;
use warehouse::{DimensionDef, FactDef, LoadPlan, StarSchema, Warehouse};

fn small_warehouse() -> Warehouse {
    let star = StarSchema::new(
        FactDef::new("Facts", vec!["FBG"], vec![]),
        vec![DimensionDef::new("Bloods", vec!["FBG_Band", "Gender"])],
    )
    .unwrap();
    let schema = Schema::new(vec![
        FieldDef::nullable("FBG", DataType::Float),
        FieldDef::nullable("FBG_Band", DataType::Text),
        FieldDef::nullable("Gender", DataType::Text),
    ])
    .unwrap();
    let rows = vec![
        vec![5.0.into(), "very good".into(), "F".into()],
        vec![6.5.into(), "preDiabetic".into(), "M".into()],
        vec![8.0.into(), "Diabetic".into(), "F".into()],
    ];
    let table = Table::from_rows(schema, rows.into_iter().map(Record::new).collect()).unwrap();
    Warehouse::load(&LoadPlan::from_star(star), &table).unwrap()
}

fn fbg_by_band() -> QueryRequest {
    QueryRequest::Report(ReportSpec::new().on_rows("FBG_Band").count())
}

fn slow_service(workers: usize, delay_ms: u64) -> QueryService {
    QueryService::new(
        small_warehouse(),
        ServeConfig {
            workers,
            execution_delay: Some(Duration::from_millis(delay_ms)),
            ..ServeConfig::default()
        },
    )
    .unwrap()
}

fn request_spans(spans: &[SpanRecord]) -> Vec<&SpanRecord> {
    spans.iter().filter(|s| s.name == "serve.request").collect()
}

#[test]
fn execution_span_joins_the_leaders_trace_across_threads() {
    let _guard = tracing_lock();
    let collector = Arc::new(RingCollector::new(1024));
    obs::install(collector.clone());

    // One worker + a deliberate execution delay: concurrent identical
    // requests deterministically coalesce onto one in-flight leader.
    let svc = slow_service(1, 60);
    let sources: Vec<ServedSource> = thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| s.spawn(|| svc.execute(&fbg_by_band()).unwrap().source))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    svc.shutdown();
    obs::uninstall();

    assert_eq!(
        sources
            .iter()
            .filter(|s| **s == ServedSource::Executed)
            .count(),
        1,
        "single-flight must elect exactly one leader: {sources:?}"
    );

    let spans = collector.spans();
    let requests = request_spans(&spans);
    assert_eq!(requests.len(), 4, "every caller opens a request span");

    let leader = requests
        .iter()
        .find(|s| s.field("source") == Some("executed"))
        .expect("leader request span");
    let execs: Vec<&SpanRecord> = spans.iter().filter(|s| s.name == "serve.execute").collect();
    assert_eq!(execs.len(), 1, "one execution for four requests");
    let exec = execs[0];

    // The worker's execution span carries the leader's trace id and
    // parents onto the leader's request span, across the thread hop.
    assert_eq!(exec.trace, leader.trace);
    assert_eq!(exec.parent, Some(leader.id));
    assert_ne!(
        exec.thread, leader.thread,
        "execution must run on a worker thread"
    );

    // Coalesced followers are distinct traces that link to the leader.
    let followers: Vec<&&SpanRecord> = requests
        .iter()
        .filter(|s| s.field("source") == Some("coalesced"))
        .collect();
    assert!(
        !followers.is_empty(),
        "with a 60ms execution delay at least one request coalesces"
    );
    for f in &followers {
        assert_ne!(f.trace, leader.trace, "followers are their own trace");
        assert_eq!(
            f.field("link_trace"),
            Some(leader.trace.0.to_string().as_str())
        );
        assert_eq!(f.field("link_span"), Some(leader.id.0.to_string().as_str()));
    }

    // The leader's trace renders as a connected two-level tree.
    let tree = render_trace(&spans, leader.trace);
    assert!(tree.contains("serve.request"), "{tree}");
    assert!(tree.contains("\n  serve.execute"), "{tree}");

    // The cube-build span inside execution also belongs to the trace.
    assert!(
        spans
            .iter()
            .filter(|s| s.trace == leader.trace)
            .any(|s| s.name == "olap.cube_build"),
        "cube build must join the request trace"
    );
}

#[test]
fn served_profiles_account_for_the_full_latency() {
    let svc = slow_service(2, 40);
    let served = svc.execute(&fbg_by_band()).unwrap();
    svc.shutdown();

    let profile = &served.value.profile;
    assert!(!profile.is_empty());
    assert!(profile.rows_scanned > 0, "{profile}");
    assert!(profile.cells_emitted > 0, "{profile}");

    // The artificial 40ms stall is attributed to queueing, not to the
    // execution phases.
    assert!(
        profile.phase_us(obs::Phase::Queue) >= 35_000,
        "queue phase must absorb the execution delay: {profile}"
    );

    // Phase timings cover the end-to-end execution within 10%.
    let total = profile.total_us;
    let phases = profile.phases_total_us();
    assert!(phases <= total, "phases {phases}µs exceed total {total}µs");
    assert!(
        (total - phases) * 10 <= total,
        "unattributed time over 10%: phases {phases}µs of {total}µs\n{profile}"
    );
}

#[test]
fn traces_round_trip_through_jsonl() {
    let _guard = tracing_lock();
    let collector = Arc::new(RingCollector::new(1024));
    obs::install(collector.clone());

    let svc = slow_service(2, 5);
    svc.execute(&fbg_by_band()).unwrap();
    svc.execute(&fbg_by_band()).unwrap(); // warm: fires serve.cache_hit
    svc.shutdown();
    obs::uninstall();

    let records = collector.records();
    assert!(!records.is_empty());
    let parsed = parse_jsonl(&collector.to_jsonl());
    assert_eq!(parsed, records, "JSONL export must round-trip losslessly");
    assert!(
        collector
            .events()
            .iter()
            .any(|e| e.name == "serve.cache_hit"),
        "warm request must fire a cache-hit event"
    );
}

#[test]
fn disabled_subscriber_records_zero_events() {
    let _guard = tracing_lock();
    obs::uninstall();

    // No subscriber: the service runs untraced.
    let collector = Arc::new(RingCollector::new(64));
    let svc = slow_service(1, 0);
    svc.execute(&fbg_by_band()).unwrap();
    svc.shutdown();
    assert!(!obs::enabled());
    assert!(obs::current_context().is_none());
    assert!(collector.is_empty());

    // Installed but paused: still nothing recorded.
    obs::install(collector.clone());
    obs::set_enabled(false);
    let svc = slow_service(1, 0);
    svc.execute(&fbg_by_band()).unwrap();
    svc.shutdown();
    obs::uninstall();
    assert!(
        collector.is_empty(),
        "paused tracing must record nothing, got {} records",
        collector.len()
    );
}
