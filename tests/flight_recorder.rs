//! Incident-observability drills: the flight recorder's black box,
//! the stall watchdog, and the SLO surface, exercised end-to-end
//! through the serving layer.
//!
//! The acceptance drill of record: trip the circuit breaker with
//! injected execution faults and assert the recorder produced a
//! self-contained black-box dump carrying the triggering query's
//! trace id, every worker's span path, and the failpoint evaluations
//! that caused the trip — then render it with `analyze`'s reader.
//!
//! Recorder and subscriber state is process-global, so every test
//! holds `obs::test_support::tracing_lock()` (and the fault lock when
//! failpoints are armed, in that order).

use clinical_types::{DataType, FieldDef, Record, Schema, Table};
use fault::{FaultKind, Trigger};
use obs::{FlightRecord, FlightRecorder, LockRank, RankedMutex, RecorderConfig};
use serve::{QueryRequest, QueryService, ReportSpec, RetryPolicy, ServeConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};
use warehouse::{DimensionDef, FactDef, LoadPlan, StarSchema, Warehouse};

// ---------------------------------------------------------------- helpers

fn small_warehouse() -> Warehouse {
    let star = StarSchema::new(
        FactDef::new("Facts", vec!["FBG"], vec![]),
        vec![DimensionDef::new("Bloods", vec!["FBG_Band", "Gender"])],
    )
    .unwrap();
    let schema = Schema::new(vec![
        FieldDef::nullable("FBG", DataType::Float),
        FieldDef::nullable("FBG_Band", DataType::Text),
        FieldDef::nullable("Gender", DataType::Text),
    ])
    .unwrap();
    let rows = vec![
        vec![5.0.into(), "very good".into(), "F".into()],
        vec![6.5.into(), "preDiabetic".into(), "M".into()],
        vec![8.0.into(), "Diabetic".into(), "F".into()],
    ];
    let table = Table::from_rows(schema, rows.into_iter().map(Record::new).collect()).unwrap();
    Warehouse::load(&LoadPlan::from_star(star), &table).unwrap()
}

fn count_by_band() -> QueryRequest {
    QueryRequest::Report(ReportSpec::new().on_rows("FBG_Band").count())
}

/// Poll `cond` every 5ms until it holds or `deadline` passes.
fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

/// Install a recorder with the stock (head-sampled) config — drills
/// using this one prove that failure promotion, not luck, gets the
/// incident trace into the ring.
fn install_fresh_recorder() -> Arc<FlightRecorder> {
    let recorder = Arc::new(FlightRecorder::new(RecorderConfig::default()));
    obs::install_recorder(Arc::clone(&recorder));
    recorder
}

/// Install a capture-everything recorder (sampling off) for drills
/// about dump mechanics rather than sampling policy.
fn install_capture_all_recorder() -> Arc<FlightRecorder> {
    let recorder = Arc::new(FlightRecorder::new(RecorderConfig {
        span_sample_every: 1,
        ..RecorderConfig::default()
    }));
    obs::install_recorder(Arc::clone(&recorder));
    recorder
}

// ------------------------------------------- breaker-open black box drill

/// The acceptance criterion: a breaker trip in the degraded-mode drill
/// produces a black box whose header carries the triggering query's
/// trace id, whose thread table shows the worker pool's span paths,
/// and which `analyze::render_black_box` renders without error.
#[test]
fn breaker_open_dumps_a_black_box_with_the_triggering_trace() {
    let _tracing = obs::test_support::tracing_lock();
    let _faults = fault::test_support::fault_lock();
    let recorder = install_fresh_recorder();

    let svc = QueryService::new(
        small_warehouse(),
        ServeConfig {
            workers: 2,
            breaker_threshold: 2,
            retry: RetryPolicy::none(),
            ..ServeConfig::default()
        },
    )
    .unwrap();

    // Every execution now fails internally, counting toward the
    // breaker; the second failure trips it open.
    let _execute = fault::arm("serve.execute", Trigger::Always, FaultKind::Error);
    for _ in 0..2 {
        svc.execute(&count_by_band()).expect_err("broken execution");
    }
    assert_eq!(svc.breaker_state(), serve::BreakerState::Open);

    let dump = recorder.last_dump().expect("breaker trip dumped");
    assert_eq!(dump.trigger, "serve.breaker_open");
    let trace = dump.trace.expect("dump carries the triggering trace id");

    // The worker pool is visible in the thread table.
    assert!(
        dump.threads
            .iter()
            .any(|t| t.worker.starts_with("serve-worker-")),
        "threads: {:?}",
        dump.threads
    );
    // The failpoint evaluations that caused the trip are in the ring.
    assert!(
        dump.records.iter().any(|r| matches!(
            r,
            FlightRecord::Failpoint { name, fired: true, .. } if name == "serve.execute"
        )),
        "failpoint hits must be captured"
    );
    // The triggering request is still in flight when the trip dumps,
    // so its spans are open — the trace shows up as the executing
    // worker's published state, not as closed span records.
    assert!(
        dump.threads
            .iter()
            .any(|t| t.trace == Some(trace) && t.path.contains("serve.execute")),
        "a worker must be executing the triggering trace: {:?}",
        dump.threads
    );
    // Earlier (completed) failing requests left closed spans behind:
    // their traces were promoted past head sampling at failure time.
    assert!(
        dump.spans().iter().any(|s| s.name == "serve.execute"),
        "the first failed request's promoted execution span must be in \
         the window: {:?}",
        dump.spans()
    );

    // Round-trip through JSONL and render with the analyze reader.
    let jsonl = dump.to_jsonl();
    let reparsed = obs::BlackBox::parse(&jsonl).expect("black box reparses");
    assert_eq!(reparsed.trigger, dump.trigger);
    assert_eq!(reparsed.trace, dump.trace);
    let report = analyze::render_black_box(&jsonl).expect("renders without error");
    assert!(report.contains("trigger : serve.breaker_open"));
    assert!(report.contains(&format!("trace   : {}", trace.0)));
    assert!(report.contains("serve-worker-"));
    assert!(report.contains("serve.execute: FIRED"));

    svc.shutdown();
    obs::uninstall_recorder();
}

// ----------------------------------------------- held ranks in the dump

/// A dump taken while a ranked lock is held shows the holder's rank in
/// the thread table and the acquisition in the lock timeline.
#[test]
fn manual_dump_captures_held_lock_ranks() {
    let _tracing = obs::test_support::tracing_lock();
    let _recorder = install_fresh_recorder();
    obs::set_rank_checks(true);

    let _worker = obs::register_worker("bb-manual-worker", Duration::ZERO);
    let lock = RankedMutex::new(LockRank::Cache, "bb.test_cache", ());
    {
        let _guard = lock.lock();
        let dump = obs::trigger_dump("manual", None).expect("recorder installed");
        let me = dump
            .threads
            .iter()
            .find(|t| t.worker == "bb-manual-worker")
            .expect("registered worker in dump");
        assert_eq!(me.held, vec!["Cache".to_string()]);
        assert!(
            dump.records.iter().any(|r| matches!(
                r,
                FlightRecord::Lock { name, acquired: true, .. } if name == "bb.test_cache"
            )),
            "lock acquisition must be in the ring"
        );
        let report = analyze::render_black_box(&dump.to_jsonl()).expect("renders");
        assert!(report.contains("holds [Cache]"));
        assert!(report.contains("acquire bb.test_cache [Cache]"));
    }

    obs::set_rank_checks(false);
    obs::uninstall_recorder();
}

// ------------------------------------------------- watchdog stall drill

/// A worker sleeping past its stall budget with a query in flight is
/// caught by the sampling watchdog: one `obs.stall` event and one
/// `watchdog.stall` black box per episode.
#[test]
fn stalled_worker_trips_the_watchdog_and_dumps() {
    let _tracing = obs::test_support::tracing_lock();
    let recorder = install_fresh_recorder();

    let svc = QueryService::new(
        small_warehouse(),
        ServeConfig {
            workers: 1,
            // The artificial delay stalls execution well past the
            // (deliberately tiny) budget while the watchdog samples.
            execution_delay: Some(Duration::from_millis(120)),
            worker_stall_budget: Duration::from_millis(10),
            watchdog_interval: Duration::from_millis(5),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    svc.execute(&count_by_band()).unwrap();

    assert!(
        wait_until(Duration::from_secs(5), || {
            recorder
                .dumps()
                .iter()
                .any(|d| d.trigger == "watchdog.stall")
        }),
        "watchdog never dumped a stall black box"
    );
    let dump = recorder
        .dumps()
        .into_iter()
        .find(|d| d.trigger == "watchdog.stall")
        .unwrap();
    assert!(
        dump.records
            .iter()
            .any(|r| matches!(r, FlightRecord::Event(e) if e.name == "obs.stall")),
        "the stall event itself must be in the ring"
    );

    // The scrape surface shows the stall and the folded profile.
    let text = svc.metrics_text();
    assert!(text.contains("obs_watchdog_samples_total"));
    assert!(text.contains("obs_watchdog_stalls_total"));

    svc.shutdown();
    obs::uninstall_recorder();
}

// ------------------------------------------------------- SLO + surfaces

/// The service's metrics text carries the SLO burn-rate gauges, and a
/// hard-failing service pages (fast and slow windows both burning).
#[test]
fn slo_surface_reports_burn_and_pages_on_sustained_errors() {
    let _tracing = obs::test_support::tracing_lock();
    let _faults = fault::test_support::fault_lock();
    let recorder = install_fresh_recorder();

    let svc = QueryService::new(
        small_warehouse(),
        ServeConfig {
            workers: 2,
            breaker_threshold: 1_000_000, // keep the breaker out of the way
            retry: RetryPolicy::none(),
            ..ServeConfig::default()
        },
    )
    .unwrap();

    // Healthy first evaluation: nothing firing.
    svc.execute(&count_by_band()).unwrap();
    let healthy = svc.slo_status();
    assert!(healthy.iter().all(|s| !s.firing), "healthy must not page");

    // Sustained execution failures: the error-rate objective burns in
    // both windows (all history still fits inside them) and fires.
    let _execute = fault::arm("serve.execute", Trigger::Always, FaultKind::Error);
    for _ in 0..8 {
        svc.clear_cache();
        svc.execute(&count_by_band()).expect_err("broken execution");
    }
    let burning = svc.slo_status();
    let errors = burning
        .iter()
        .find(|s| s.name == "serve_errors")
        .expect("stock error SLO present");
    assert!(errors.firing, "sustained failures must page: {errors:?}");

    let text = svc.metrics_text();
    assert!(text.contains("slo_burn_rate{slo=\"serve_errors\",window=\"fast\"}"));
    assert!(text.contains("slo_firing{slo=\"serve_errors\"} 1"));
    assert!(text.contains("ALERTS{alertname=\"SloBurn_serve_errors\""));

    // The newly-firing objective also left a black box behind.
    assert!(
        recorder
            .dumps()
            .iter()
            .any(|d| d.trigger == "slo.serve_errors"),
        "SLO page must trigger a dump"
    );

    svc.shutdown();
    obs::uninstall_recorder();
}

// --------------------------------------------------- operator escape hatch

/// `flight_dump` works as the manual lever on both the service and the
/// system facade, and returns `None` with no recorder installed.
#[test]
fn manual_flight_dump_levers() {
    let _tracing = obs::test_support::tracing_lock();
    let svc = QueryService::new(small_warehouse(), ServeConfig::default()).unwrap();

    assert!(
        svc.flight_dump("operator.manual").is_none(),
        "no recorder installed yet"
    );

    let recorder = install_capture_all_recorder();
    svc.execute(&count_by_band()).unwrap();
    let dump = svc.flight_dump("operator.manual").expect("recorder live");
    assert_eq!(dump.trigger, "operator.manual");
    // The service's registry was attached at construction time only if
    // a recorder existed then; this one was installed after, so metric
    // sources may be empty — but records must flow regardless.
    assert!(
        !dump.records.is_empty(),
        "executed request must have left spans in the ring"
    );
    assert_eq!(recorder.last_dump().map(|d| d.seq), Some(dump.seq));

    svc.shutdown();
    obs::uninstall_recorder();
}
