//! Differential test: the OLAP cube and the flat OLTP group-by are two
//! independent implementations of the same aggregation semantics. On
//! identical data they must produce identical numbers — this is the
//! correctness backbone behind the `olap_vs_oltp` performance claim
//! (a fast warehouse that disagrees with the transactional truth would
//! be worthless).

use clinical_types::Value;
use discri::{generate, CohortConfig};
use etl::TransformPipeline;
use olap::{Aggregate, Cube, CubeSpec};
use oltp::{AggFn, Predicate, QueryEngine, RowStore};
use warehouse::{LoadPlan, Warehouse};

struct Fixture {
    warehouse: Warehouse,
    engine: QueryEngine,
}

fn fixture() -> Fixture {
    let cohort = generate(&CohortConfig::small(101));
    let (table, _) = TransformPipeline::discri_default()
        .run(&cohort.attendances)
        .unwrap();
    let warehouse = Warehouse::load(&LoadPlan::discri_default(), &table).unwrap();
    let store = RowStore::new(table.schema().clone());
    store.load_table(&table).unwrap();
    Fixture {
        warehouse,
        engine: QueryEngine::new(store),
    }
}

#[test]
fn counts_agree_across_engines() {
    let f = fixture();
    let cube = Cube::build(&f.warehouse, &CubeSpec::count(vec!["Gender", "Age_Band"])).unwrap();
    let flat = f
        .engine
        .group_by(
            &Predicate::True,
            &["Gender", "Age_Band"],
            AggFn::Count,
            None,
        )
        .unwrap();
    assert_eq!(cube.n_cells(), flat.rows.len());
    for (key, value) in &flat.rows {
        let cube_value = cube.value(key);
        assert_eq!(
            cube_value,
            Some(*value),
            "count mismatch at {key:?}: cube {cube_value:?} vs flat {value}"
        );
    }
}

#[test]
fn filtered_counts_agree() {
    let f = fixture();
    let spec = CubeSpec::count(vec!["Age_Band"])
        .with_filter(olap::CubeFilter::all().equals("DiabetesStatus", "yes"));
    let cube = Cube::build(&f.warehouse, &spec).unwrap();
    let flat = f
        .engine
        .group_by(
            &Predicate::eq("DiabetesStatus", "yes"),
            &["Age_Band"],
            AggFn::Count,
            None,
        )
        .unwrap();
    for (key, value) in &flat.rows {
        assert_eq!(cube.value(key), Some(*value), "mismatch at {key:?}");
    }
}

#[test]
fn averages_agree_with_null_skipping() {
    let f = fixture();
    let cube = Cube::build(
        &f.warehouse,
        &CubeSpec::measure(vec!["DiabetesStatus"], Aggregate::Avg, "FBG"),
    )
    .unwrap();
    let flat = f
        .engine
        .group_by(
            &Predicate::True,
            &["DiabetesStatus"],
            AggFn::Avg,
            Some("FBG"),
        )
        .unwrap();
    for (key, value) in &flat.rows {
        if value.is_nan() {
            assert_eq!(cube.value(key), None);
            continue;
        }
        let cube_value = cube.value(key).expect("cube has the group");
        assert!(
            (cube_value - value).abs() < 1e-9,
            "avg mismatch at {key:?}: {cube_value} vs {value}"
        );
    }
}

#[test]
fn min_max_sum_agree() {
    let f = fixture();
    for (olap_agg, oltp_agg) in [
        (Aggregate::Min, AggFn::Min),
        (Aggregate::Max, AggFn::Max),
        (Aggregate::Sum, AggFn::Sum),
    ] {
        let cube = Cube::build(
            &f.warehouse,
            &CubeSpec::measure(vec!["Gender"], olap_agg, "BMI"),
        )
        .unwrap();
        let flat = f
            .engine
            .group_by(&Predicate::True, &["Gender"], oltp_agg, Some("BMI"))
            .unwrap();
        for (key, value) in &flat.rows {
            if value.is_nan() {
                continue;
            }
            let cube_value = cube.value(key).expect("group present");
            assert!(
                (cube_value - value).abs() < 1e-6,
                "{olap_agg:?} mismatch at {key:?}: {cube_value} vs {value}"
            );
        }
    }
}

#[test]
fn slice_equals_flat_predicate() {
    let f = fixture();
    let cube = Cube::build(&f.warehouse, &CubeSpec::count(vec!["Gender", "VisitKind"])).unwrap();
    let sliced = cube.slice("VisitKind", &Value::from("first")).unwrap();
    let flat = f
        .engine
        .group_by(
            &Predicate::eq("VisitKind", "first"),
            &["Gender"],
            AggFn::Count,
            None,
        )
        .unwrap();
    for (key, value) in &flat.rows {
        assert_eq!(sliced.value(key), Some(*value));
    }
}
