//! Umbrella crate for the DD-DGMS reproduction workspace.
//!
//! This package exists so that workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`) can exercise every
//! subsystem crate through one dependency set. The actual library code
//! lives in the `crates/` members; see [`dd_dgms`] for the facade that
//! wires them together.

pub use analyze;
pub use clinical_types;
pub use dd_dgms;
pub use discri;
pub use etl;
pub use kb;
pub use mining;
pub use obs;
pub use olap;
pub use oltp;
pub use optimize;
pub use predict;
pub use serve;
pub use viz;
pub use warehouse;
