//! Offline stand-in for `proptest`.
//!
//! A deterministic random-testing harness implementing the subset of
//! proptest this workspace uses: the [`proptest!`] macro, range and
//! tuple strategies, [`collection::vec`], [`option::of`], [`any`],
//! `prop_filter`, and a miniature regex string strategy (`".*"` and
//! `"[^X]*"` character-class patterns). No shrinking: a failing case
//! panics with the generating seed so it can be replayed.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Runner configuration (subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Keep only values satisfying `pred`; panics if 1000 consecutive
    /// draws are rejected (mirrors proptest's rejection limit).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 1000 consecutive cases",
            self.reason
        );
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.random_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

/// `&str` strategies are miniature regexes. Supported syntax: a single
/// atom — `.` (any char but newline), `[...]` / `[^...]` with `\r`,
/// `\n`, `\t`, `\\` escapes — followed by `*`, or a literal string.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        generate_pattern(self, rng)
    }
}

fn parse_class(pattern: &str) -> Option<(bool, Vec<char>)> {
    let body = pattern.strip_prefix('[')?.strip_suffix(']')?;
    let (negated, body) = match body.strip_prefix('^') {
        Some(rest) => (true, rest),
        None => (false, body),
    };
    let mut chars = Vec::new();
    let mut it = body.chars();
    while let Some(c) = it.next() {
        if c == '\\' {
            match it.next() {
                Some('r') => chars.push('\r'),
                Some('n') => chars.push('\n'),
                Some('t') => chars.push('\t'),
                Some(other) => chars.push(other),
                None => return None,
            }
        } else {
            chars.push(c);
        }
    }
    Some((negated, chars))
}

/// Character pool deliberately rich in CSV/encoding hazards: quotes,
/// commas, newlines, non-ASCII.
const POOL: &[char] = &[
    'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', ',', ';', '"', '\'', '\\', '/', '.', '-', '_', '|',
    '\n', '\t', '\r', 'é', 'µ', '→', '∅', '字',
];

fn generate_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let (accept, star): (Box<dyn Fn(char) -> bool>, bool) = if pattern == ".*" {
        (Box::new(|c| c != '\n'), true)
    } else if let Some(class) = pattern.strip_suffix('*').and_then(parse_class) {
        let (negated, chars) = class;
        (Box::new(move |c| chars.contains(&c) != negated), true)
    } else {
        // Literal fallback.
        return pattern.to_string();
    };
    debug_assert!(star);
    let len = rng.random_range(0..12usize);
    let mut out = String::new();
    while out.chars().count() < len {
        let c = POOL[rng.random_range(0..POOL.len())];
        if accept(c) {
            out.push(c);
        }
    }
    out
}

/// Full-domain strategies, keyed by type.
pub fn any<T: AnyStrategy>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with an [`any`] strategy.
pub trait AnyStrategy: Sized + std::fmt::Debug {
    /// Draw from the type's full domain.
    fn any_value(rng: &mut StdRng) -> Self;
}

impl<T: AnyStrategy> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::any_value(rng)
    }
}

impl AnyStrategy for f64 {
    /// Mixes ordinary magnitudes with raw-bit patterns and the special
    /// values (NaN, infinities, signed zero) so ordering and
    /// finiteness edge cases get exercised.
    fn any_value(rng: &mut StdRng) -> f64 {
        match rng.random_range(0..10u32) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => -0.0,
            4 => 0.0,
            5 | 6 => f64::from_bits(rng.random::<u64>()),
            _ => (rng.random::<f64>() - 0.5) * 2e9,
        }
    }
}

impl AnyStrategy for i64 {
    fn any_value(rng: &mut StdRng) -> i64 {
        match rng.random_range(0..4u32) {
            0 => rng.random_range(-100i64..100),
            1 => i64::MIN,
            2 => i64::MAX,
            _ => rng.random::<u64>() as i64,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy};

    /// A `Vec` of values from `element`, with length drawn from
    /// `size` (a range or an exact length).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut rand::rngs::StdRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Length specification for [`collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn draw(self, rng: &mut StdRng) -> usize {
        rand::RngExt::random_range(rng, self.lo..self.hi.max(self.lo + 1))
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// `Option` strategies.
pub mod option {
    use super::Strategy;

    /// `Some` with probability 0.8, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut rand::rngs::StdRng) -> Option<S::Value> {
            if rand::RngExt::random_bool(rng, 0.8) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Everything a property-test module typically imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        ProptestConfig, Strategy,
    };
}

/// Deterministic per-test seed base. Fixed so failures replay; the
/// case index is mixed in per iteration.
#[doc(hidden)]
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case))
}

/// Property assertion (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when an assumption fails. The shim simply
/// returns from the case closure, counting the case as passed.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// The property-test entry macro. Each `fn name(pat in strategy, …)`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::case_rng(stringify!($name), case);
                    // Zero-argument closure so `prop_assume!`'s early
                    // `return` skips only this case, not the whole test.
                    let mut one_case = || {
                        $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                        $body
                    };
                    one_case();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 0u8..4, y in -10i64..10, f in -1.5f64..1.5) {
            prop_assert!(x < 4);
            prop_assert!((-10..10).contains(&y));
            prop_assert!((-1.5..1.5).contains(&f));
        }

        #[test]
        fn vec_sizes_and_option(v in crate::collection::vec((0u8..3, crate::option::of(0.0f64..1.0)), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
        }

        #[test]
        fn filtered_any_is_finite(v in any::<f64>().prop_filter("finite", |x| x.is_finite())) {
            prop_assert!(v.is_finite());
        }

        #[test]
        fn string_pattern_excludes_class(s in "[^\r]*") {
            prop_assert!(!s.contains('\r'));
        }
    }

    #[test]
    fn exact_vec_size() {
        let mut rng = crate::case_rng("exact", 0);
        let v = crate::Strategy::generate(&crate::collection::vec(0usize..50, 9), &mut rng);
        assert_eq!(v.len(), 9);
    }
}
