//! Offline stand-in for `serde`'s derive macros.
//!
//! The build environment has no registry access, and this workspace
//! only ever uses `#[derive(Serialize, Deserialize)]` as inert markers
//! (no serializer is ever instantiated — there is no `serde_json` or
//! similar in the dependency tree). These derives therefore expand to
//! nothing; the `serde` helper attribute (`#[serde(skip)]` etc.) is
//! registered so annotated fields keep compiling.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
