//! Offline stand-in for `parking_lot`.
//!
//! Wraps [`std::sync::Mutex`] and [`std::sync::RwLock`], discarding
//! poison (parking_lot's locks have no poisoning, and every caller in
//! this workspace relies on `lock()` / `read()` / `write()` returning
//! a guard directly). Fairness and footprint of the real crate are
//! not reproduced — semantics are what matter here.

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire, blocking; a panic in another holder does not poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire only if free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive access through `&mut self` without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Readers–writer lock whose `read`/`write` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive access, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive access through `&mut self` without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_allows_parallel_readers() {
        let l = Arc::new(RwLock::new(7u32));
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 14);
        drop((r1, r2));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
