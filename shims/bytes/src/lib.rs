//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is an immutable, cheaply cloneable view into shared
//! storage (`Arc<[u8]>` plus a window); [`BytesMut`] is an owned
//! growable buffer that freezes into a `Bytes`. The [`Buf`] /
//! [`BufMut`] traits carry the cursor-style little-endian accessors
//! the OLTP row encoding and WAL use. Zero-copy `slice`/`clone`
//! semantics match the real crate; vectored I/O and reference-counted
//! tail-splitting do not exist here because nothing uses them.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Immutable shared byte view. Cloning and slicing are O(1) and share
/// the underlying allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty view.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Number of visible bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes are visible.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-view of the current view (panics if out of bounds).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", &self[..])
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing was written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Cursor-style reading (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skip `n` bytes (panics if `n > remaining`).
    fn advance(&mut self, n: usize);

    /// Detach the next `n` bytes as an owned view.
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;

    /// True while at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_to_bytes(1)[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.copy_to_bytes(2)[..].try_into().unwrap())
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.copy_to_bytes(4)[..].try_into().unwrap())
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.copy_to_bytes(8)[..].try_into().unwrap())
    }

    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.copy_to_bytes(8)[..].try_into().unwrap())
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        let out = self.slice(0..n);
        self.start += n;
        out
    }
}

/// Cursor-style writing (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16_le(300);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_i64_le(-9);
        buf.put_f64_le(2.5);
        buf.put_slice(b"xy");
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 300);
        assert_eq!(b.get_u32_le(), 70_000);
        assert_eq!(b.get_u64_le(), 1 << 40);
        assert_eq!(b.get_i64_le(), -9);
        assert_eq!(b.get_f64_le(), 2.5);
        assert_eq!(&b.copy_to_bytes(2)[..], b"xy");
        assert!(!b.has_remaining());
    }

    #[test]
    fn slice_is_a_window_and_clone_shares() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        let mut c = b.clone();
        c.advance(4);
        assert_eq!(&c[..], &[4, 5]);
        assert_eq!(
            &b[..],
            &[0, 1, 2, 3, 4, 5],
            "clone must not consume the original"
        );
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_past_end_panics() {
        Bytes::from(vec![1u8]).slice(0..2);
    }
}
