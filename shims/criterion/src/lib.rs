//! Offline stand-in for `criterion`.
//!
//! Keeps the macro and builder shape (`criterion_group!`,
//! `criterion_main!`, [`Criterion::bench_function`], benchmark
//! groups, [`BenchmarkId`]) but replaces the statistical engine with
//! a straightforward timing loop: a short warm-up, then `sample_size`
//! timed samples, reporting min / median / mean per benchmark on
//! stdout. Good enough to compare alternatives and spot order-of-
//! magnitude effects, which is what this workspace's benches do.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, &mut f);
        self
    }

    /// Run one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&id.label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare the per-iteration throughput (recorded for API
    /// compatibility; the shim reports raw times only).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Run one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_bench(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Finish the group (boundary marker on stdout).
    pub fn finish(self) {
        println!();
    }
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Declared throughput of one benchmark iteration.
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to each benchmark closure; `iter` times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample: u32,
}

impl Bencher {
    /// Time `routine`, storing one sample per outer run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed() / self.per_sample.max(1));
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    // Calibration pass: one un-recorded run, also sizing the inner
    // repeat count so very fast routines are timed over ≥ ~1ms.
    let mut calib = Bencher {
        samples: Vec::new(),
        per_sample: 1,
    };
    let t0 = Instant::now();
    f(&mut calib);
    let once = t0.elapsed();
    let per_sample = if once < Duration::from_micros(100) {
        1000
    } else if once < Duration::from_millis(2) {
        20
    } else {
        1
    };

    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        per_sample,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{name}: no samples (bencher.iter never called)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name}: min {min:?}  median {median:?}  mean {mean:?}  ({} samples)",
        samples.len()
    );
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
