//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the API surface this workspace uses — seeded
//! [`rngs::StdRng`], [`RngExt::random`] / [`RngExt::random_range`],
//! and [`seq::SliceRandom::shuffle`] — over a xoshiro256++ core seeded
//! through SplitMix64. Deterministic for a given seed, which is all
//! the cohort generator and the tests require; it makes no
//! cryptographic claims.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seedable constructors (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a reproducible generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types [`RngExt::random`] can produce.
pub trait Random {
    /// Draw one value from `rng`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges [`RngExt::random_range`] can sample from. Parameterised over
/// the output type (like `rand::distr::uniform::SampleRange`), with a
/// single blanket impl per range shape so that integer literals in a
/// range unify with the expected result type.
pub trait RangeSample<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over an interval.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Uniform integer in `[0, bound)` via Lemire-style widening multiply
/// on a 64-bit draw (bias is negligible for the bounds used here).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + bounded_u64(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                lo + <$t>::random(rng) * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                lo + <$t>::random(rng) * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f64, f32);

impl<T: SampleUniform> RangeSample<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty random_range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> RangeSample<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty random_range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// High-level sampling methods (subset of `rand::Rng`).
pub trait RngExt: RngCore {
    /// Draw a value of type `T` (uniform over its natural domain;
    /// `[0, 1)` for floats).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draw uniformly from `range`.
    fn random_range<T, S: RangeSample<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Sequence-level helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 12];
        for _ in 0..1_000 {
            let m = rng.random_range(1..=12u32);
            assert!((1..=12).contains(&m));
            seen[(m - 1) as usize] = true;
            let x = rng.random_range(-5.0f64..5.0);
            assert!((-5.0..5.0).contains(&x));
            let n = rng.random_range(0..7i32);
            assert!((0..7).contains(&n));
        }
        assert!(seen.iter().all(|&s| s), "inclusive range missed a value");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice ordered");
    }
}
