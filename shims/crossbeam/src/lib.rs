//! Offline stand-in for `crossbeam`.
//!
//! Two pieces, covering what this workspace uses:
//!
//! * [`scope`] — crossbeam-style scoped threads, delegating to
//!   [`std::thread::scope`] (stable since Rust 1.63, so the shim is a
//!   thin adapter keeping crossbeam's `Result`-returning shape and
//!   the `|_|` spawn-closure convention).
//! * [`channel`] — a Mutex + Condvar MPMC channel with `bounded` /
//!   `unbounded` constructors, cloneable senders and receivers,
//!   non-blocking `try_send`, and timeout-aware receives. This is the
//!   backbone of the `serve` crate's worker pool; throughput is far
//!   below real crossbeam's lock-free queues but semantics match.

pub mod channel;

use std::thread;

/// Scoped-thread handle mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

/// Join handle for a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread inside the scope. The closure receives a unit
    /// placeholder where crossbeam passes the scope handle (every call
    /// site in this workspace ignores it as `|_|`).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(())),
        }
    }
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the thread; `Err` carries the panic payload.
    pub fn join(self) -> thread::Result<T> {
        self.inner.join()
    }
}

/// Create a scope for spawning borrowing threads; all threads are
/// joined before `scope` returns. The `Result` mirrors crossbeam's
/// signature — with the std backend, a panicking child that is not
/// joined propagates its panic instead of surfacing as `Err`, which
/// is strictly stricter and fine for the call sites here.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total = super::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .sum::<u64>()
        })
        .expect("scope failed");
        assert_eq!(total, 100);
    }
}
