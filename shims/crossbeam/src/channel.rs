//! MPMC channel: `bounded` / `unbounded`, cloneable endpoints,
//! disconnect detection, and timeout receives.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: Option<usize>,
    /// Signalled when an item arrives or all senders disconnect.
    readable: Condvar,
    /// Signalled when space frees up or all receivers disconnect.
    writable: Condvar,
}

/// Sending half; cloneable (MPMC).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half; cloneable (MPMC).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error for [`Sender::send`]: every receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error for [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

/// Error for [`Receiver::recv`]: empty and every sender is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error for [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now.
    Empty,
    /// Empty and every sender is gone.
    Disconnected,
}

/// Error for [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived within the window.
    Timeout,
    /// Empty and every sender is gone.
    Disconnected,
}

macro_rules! fmt_display {
    ($msg:literal) => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str($msg)
        }
    };
}

impl<T> fmt::Display for SendError<T> {
    fmt_display!("sending on a disconnected channel");
}
impl<T> fmt::Display for TrySendError<T> {
    fmt_display!("sending on a full or disconnected channel");
}
impl fmt::Display for RecvError {
    fmt_display!("receiving on an empty, disconnected channel");
}
impl fmt::Display for TryRecvError {
    fmt_display!("receiving on an empty channel");
}
impl fmt::Display for RecvTimeoutError {
    fmt_display!("timed out receiving on an empty channel");
}

/// Channel holding at most `capacity` queued items.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    make(Some(capacity))
}

/// Channel with no capacity bound.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    make(None)
}

fn make<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        capacity,
        readable: Condvar::new(),
        writable: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> Sender<T> {
    /// Queue `value`, blocking while the channel is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            match self.shared.capacity {
                Some(cap) if state.queue.len() >= cap => {
                    state = self
                        .shared
                        .writable
                        .wait(state)
                        .unwrap_or_else(|e| e.into_inner());
                }
                _ => break,
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.readable.notify_one();
        Ok(())
    }

    /// Queue `value` only if there is room right now.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.lock();
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = self.shared.capacity {
            if state.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.readable.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Number of items currently queued (a load signal, racy by
    /// nature — the real crossbeam exposes the same).
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Whether the queue is empty right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dequeue, blocking until an item arrives or all senders leave.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.writable.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .shared
                .readable
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Dequeue only if an item is already queued.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.lock();
        if let Some(value) = state.queue.pop_front() {
            drop(state);
            self.shared.writable.notify_one();
            return Ok(value);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Dequeue, waiting at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.writable.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .readable
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            self.shared.readable.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.receivers -= 1;
        let last = state.receivers == 0;
        drop(state);
        if last {
            self.shared.writable.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(matches!(tx.try_send(9), Err(TrySendError::Disconnected(9))));
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn recv_timeout_expires() {
        let (tx, rx) = bounded::<u8>(1);
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
        drop(tx);
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Disconnected);
    }

    #[test]
    fn mpmc_drains_everything_once() {
        let (tx, rx) = bounded(4);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<i32> = (0..4)
            .flat_map(|p| (0..100).map(move |i| p * 100 + i))
            .collect();
        assert_eq!(all, expected);
    }
}
